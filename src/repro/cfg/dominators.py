"""Dominator and postdominator analysis.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm") over the CFG and its reverse. The paper's heuristics
use both relations:

* *v dominates w* — every path from the entry to *w* includes *v*;
* *w postdominates v* — every path from *v* to any exit includes *w*.

Postdominance is computed against a virtual exit vertex that every block with
no successors feeds into. Blocks from which no exit is reachable (e.g. bodies
of infinite loops) postdominate nothing and are postdominated by nothing
except themselves; the heuristics treat their successors as
non-postdominating, which is the conservative reading of the paper.
"""

from __future__ import annotations

from repro.cfg.graph import BasicBlock, ControlFlowGraph

__all__ = ["DominatorInfo", "compute_dominators", "compute_postdominators"]


class DominatorInfo:
    """Immediate-dominator tree plus O(tree-depth) dominance queries.

    ``idom[b]`` is ``None`` for the root. Blocks absent from ``idom`` are not
    connected to the root (only possible for postdominators when no exit is
    reachable from them).
    """

    def __init__(self, root: BasicBlock | None,
                 idom: dict[BasicBlock, BasicBlock | None]) -> None:
        self.root = root
        self.idom = idom
        self._depth: dict[BasicBlock, int] = {}
        for block in idom:
            self._compute_depth(block)

    def _compute_depth(self, block: BasicBlock) -> int:
        if block in self._depth:
            return self._depth[block]
        parent = self.idom.get(block)
        depth = 0 if parent is None else self._compute_depth(parent) + 1
        self._depth[block] = depth
        return depth

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if *a* dominates *b* (reflexive: a block dominates itself)."""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth.get(b, -1) > self._depth[a]:
            b = self.idom[b]
        return a is b

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, b: BasicBlock) -> list[BasicBlock]:
        """All dominators of *b*, from *b* up to the root."""
        out = []
        cur: BasicBlock | None = b
        while cur is not None:
            out.append(cur)
            cur = self.idom.get(cur)
        return out


def _iterative_idoms(
    root: BasicBlock,
    succs: dict[BasicBlock, list[BasicBlock]],
    preds: dict[BasicBlock, list[BasicBlock]],
) -> dict[BasicBlock, BasicBlock | None]:
    """Cooper-Harvey-Kennedy over an arbitrary (possibly reversed) graph."""
    # reverse postorder from root
    order: list[BasicBlock] = []
    seen: set[int] = set()
    stack: list[tuple[BasicBlock, int]] = [(root, 0)]
    seen.add(id(root))
    while stack:
        node, si = stack[-1]
        children = succs.get(node, [])
        if si < len(children):
            stack[-1] = (node, si + 1)
            child = children[si]
            if id(child) not in seen:
                seen.add(id(child))
                stack.append((child, 0))
        else:
            order.append(node)
            stack.pop()
    order.reverse()
    rpo_num = {id(b): i for i, b in enumerate(order)}

    idom: dict[BasicBlock, BasicBlock | None] = {root: None}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while rpo_num[id(a)] > rpo_num[id(b)]:
                a = idom[a]
            while rpo_num[id(b)] > rpo_num[id(a)]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node is root:
                continue
            new_idom: BasicBlock | None = None
            for p in preds.get(node, []):
                if id(p) not in rpo_num or (p is not root and p not in idom):
                    continue
                new_idom = p if new_idom is None else intersect(p, new_idom)
            if new_idom is not None and idom.get(node) is not new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def compute_dominators(cfg: ControlFlowGraph) -> DominatorInfo:
    """Dominator tree of *cfg*, rooted at the entry block."""
    succs = {b: b.successors for b in cfg.blocks}
    preds = {b: b.predecessors for b in cfg.blocks}
    return DominatorInfo(cfg.entry, _iterative_idoms(cfg.entry, succs, preds))


class _VirtualExit(BasicBlock):
    """Sentinel exit vertex used only inside postdominator computation."""

    def __init__(self) -> None:  # noqa: D107 - sentinel
        self.index = -1
        self.instructions = []
        self.out_edges = []
        self.in_edges = []

    def __repr__(self) -> str:  # pragma: no cover
        return "<EXIT>"


def compute_postdominators(cfg: ControlFlowGraph) -> DominatorInfo:
    """Postdominator tree of *cfg*, rooted at a virtual exit.

    The virtual exit is kept internal: queries through the returned
    :class:`DominatorInfo` involve only real blocks. Blocks that cannot reach
    any exit have no entry in the tree, and ``dominates`` returns False for
    them (conservative for the heuristics' "does not postdominate" tests).
    """
    exit_node = _VirtualExit()
    exits = cfg.exit_blocks()
    # reversed graph: edges dst->src, with the virtual exit as the root whose
    # successors are the real exit blocks
    rev_succs: dict[BasicBlock, list[BasicBlock]] = {exit_node: list(exits)}
    rev_preds: dict[BasicBlock, list[BasicBlock]] = {exit_node: []}
    for b in cfg.blocks:
        rev_succs[b] = b.predecessors
        rev_preds[b] = list(b.successors) + ([exit_node] if not b.out_edges else [])

    idom = _iterative_idoms(exit_node, rev_succs, rev_preds)
    # hide the sentinel: blocks immediately postdominated by the virtual exit
    # get idom None (they are roots of the visible forest)
    cleaned: dict[BasicBlock, BasicBlock | None] = {}
    for block, parent in idom.items():
        if isinstance(block, _VirtualExit):
            continue
        cleaned[block] = None if isinstance(parent, _VirtualExit) else parent
    return DominatorInfo(None, cleaned)
