"""Registered CFG analyses (dominators, postdominators, natural loops).

The per-procedure analyses the classifier and heuristics share are
registered on :data:`CFG_ANALYSES`, a
:class:`~repro.passes.manager.AnalysisRegistry` over one
:class:`~repro.cfg.graph.ControlFlowGraph`.  A per-procedure
:class:`~repro.passes.manager.AnalysisManager` makes them lazy and
memoized: ``natural-loops`` pulls ``domtree`` through the same cache (for
preheader identification), so one dominator computation serves loop
analysis, the Loop/Call/Guard heuristics, and anything else that asks.

Branch-free procedures never touch any of this — the classifier only
requests ``natural-loops`` when it meets a conditional branch, and the
postdominator tree is only built the first time a property-based
heuristic queries it (``analysis.postdomtree.compute`` /
``analysis.postdomtree.reuse`` counters make the laziness observable).
"""

from __future__ import annotations

from repro.cfg.dominators import (
    DominatorInfo, compute_dominators, compute_postdominators,
)
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopInfo, analyze_loops
from repro.passes import AnalysisManager, AnalysisRegistry

__all__ = ["CFG_ANALYSES", "cfg_analysis_manager"]

#: Analyses over one :class:`ControlFlowGraph`.
CFG_ANALYSES = AnalysisRegistry("cfg")


@CFG_ANALYSES.register("domtree",
                       description="dominator tree (Cooper-Harvey-Kennedy)")
def _domtree(cfg: ControlFlowGraph, am: AnalysisManager) -> DominatorInfo:
    return compute_dominators(cfg)


@CFG_ANALYSES.register("postdomtree",
                       description="postdominator tree over a virtual exit")
def _postdomtree(cfg: ControlFlowGraph,
                 am: AnalysisManager) -> DominatorInfo:
    return compute_postdominators(cfg)


@CFG_ANALYSES.register("natural-loops",
                       description="back edges, nat_loop bodies, exit "
                                   "edges, preheaders (Section 3)")
def _natural_loops(cfg: ControlFlowGraph, am: AnalysisManager) -> LoopInfo:
    return analyze_loops(cfg, am.get("domtree"))


def cfg_analysis_manager(cfg: ControlFlowGraph) -> AnalysisManager:
    """A fresh lazy analysis manager over *cfg*."""
    return CFG_ANALYSES.manager(cfg)
