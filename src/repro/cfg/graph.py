"""Control-flow graph data model.

Each vertex is a :class:`BasicBlock` of instructions; a block ending with a
conditional branch has exactly two outgoing edges — the *target* (taken) edge
listed first and the *fall-through* edge second — mirroring the paper's
target/fall-thru successor vocabulary. The root vertex is the procedure entry;
blocks containing a return have no successors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.program import Procedure

__all__ = ["EdgeKind", "Edge", "BasicBlock", "ControlFlowGraph"]


class EdgeKind(enum.Enum):
    """How control reaches a successor block."""

    TARGET = "target"        #: taken direction of a conditional branch
    FALLTHRU = "fallthru"    #: not-taken direction of a conditional branch
    JUMP = "jump"            #: unconditional jump (j)
    FALL = "fall"            #: implicit fall-through into the next block


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge."""

    src: "BasicBlock"
    dst: "BasicBlock"
    kind: EdgeKind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge(B{self.src.index}->B{self.dst.index}, {self.kind.value})"


@dataclass(eq=False)
class BasicBlock:
    """A maximal straight-line run of instructions."""

    index: int
    instructions: list[Instruction]
    out_edges: list[Edge] = field(default_factory=list)
    in_edges: list[Edge] = field(default_factory=list)

    @property
    def start_address(self) -> int:
        return self.instructions[0].address

    @property
    def end_address(self) -> int:
        return self.instructions[-1].address

    @property
    def last(self) -> Instruction:
        return self.instructions[-1]

    @property
    def is_branch_block(self) -> bool:
        """True if this block ends with a two-way conditional branch."""
        return self.last.is_conditional_branch

    @property
    def successors(self) -> list["BasicBlock"]:
        return [e.dst for e in self.out_edges]

    @property
    def predecessors(self) -> list["BasicBlock"]:
        return [e.src for e in self.in_edges]

    def target_edge(self) -> Edge:
        """The taken edge of this block's terminating conditional branch."""
        for e in self.out_edges:
            if e.kind is EdgeKind.TARGET:
                return e
        raise ValueError(f"block B{self.index} has no target edge")

    def fallthru_edge(self) -> Edge:
        """The not-taken edge of this block's terminating conditional branch."""
        for e in self.out_edges:
            if e.kind is EdgeKind.FALLTHRU:
                return e
        raise ValueError(f"block B{self.index} has no fall-through edge")

    def contains_call(self) -> bool:
        """True if any instruction in the block is a (direct or indirect) call."""
        return any(inst.is_call for inst in self.instructions)

    def contains_return(self) -> bool:
        """True if any instruction in the block is a procedure return, or the
        block exits the program (``exit`` syscalls terminate like returns)."""
        return any(inst.is_return for inst in self.instructions)

    def contains_store(self) -> bool:
        """True if any instruction in the block is a store."""
        return any(inst.is_store for inst in self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<B{self.index} 0x{self.start_address:x}..0x{self.end_address:x}>"


class ControlFlowGraph:
    """The CFG of one procedure.

    ``blocks`` are ordered by address; ``entry`` is the procedure's entry
    block. Only blocks reachable from the entry are retained (QPT likewise
    only instruments reachable code).
    """

    def __init__(self, procedure: Procedure, blocks: list[BasicBlock]) -> None:
        self.procedure = procedure
        self.blocks = blocks
        self.entry = blocks[0]
        self._by_start = {b.start_address: b for b in blocks}

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    def block_at(self, addr: int) -> BasicBlock:
        """Return the block starting at text address *addr*."""
        return self._by_start[addr]

    def block_containing(self, addr: int) -> BasicBlock:
        """Return the block whose address range contains *addr*."""
        for b in self.blocks:
            if b.start_address <= addr <= b.end_address:
                return b
        raise KeyError(f"no block containing 0x{addr:x}")

    def edges(self) -> list[Edge]:
        """All edges in block order."""
        return [e for b in self.blocks for e in b.out_edges]

    def branch_blocks(self) -> list[BasicBlock]:
        """Blocks terminated by a two-way conditional branch."""
        return [b for b in self.blocks if b.is_branch_block]

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks with no successors (returns, exits, indirect jumps)."""
        return [b for b in self.blocks if not b.out_edges]

    def to_dot(self) -> str:
        """Render as Graphviz dot (debugging/docs aid)."""
        lines = [f'digraph "{self.procedure.name}" {{']
        for b in self.blocks:
            label = f"B{b.index}\\n" + "\\n".join(
                i.render() for i in b.instructions[:6])
            if len(b.instructions) > 6:
                label += "\\n..."
            lines.append(f'  B{b.index} [shape=box,label="{label}"];')
        for e in self.edges():
            style = {"target": "bold", "fallthru": "solid",
                     "jump": "dashed", "fall": "dotted"}[e.kind.value]
            lines.append(f"  B{e.src.index} -> B{e.dst.index} [style={style}];")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CFG {self.procedure.name}: {len(self.blocks)} blocks>"
