"""Natural-loop and dominator analysis over the *mid-level IR* CFG.

:mod:`repro.cfg.loops` analyzes the machine-level CFG that QPT rebuilds
from an executable; the scalar-evolution analysis and the loop-shape
passes need the same structure *before* code generation, over
``repro.bcc.ir`` functions.  This module provides it without importing
the compiler: it duck-types over any block object exposing a ``label``
string and a ``successor_labels()`` iterable, so the dependency points
the same way as the rest of :mod:`repro.cfg` (compiler imports cfg,
never the reverse).

Everything is computed on the subgraph *reachable from the entry block*
(the first block).  Unreachable blocks legitimately exist mid-pipeline —
``simplify-cfg`` sweeps them later — and must not perturb dominators or
loop membership.

The analysis also reports *reducibility*: a retreating DFS edge whose
target does not dominate its source means a multi-entry cycle, which no
output of the structured BLC front end (or any shape-preserving pass)
should ever contain.  The IR verifier's V016 rule is built on
:attr:`IRLoopNest.retreating_violations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.cfg.dominators import _iterative_idoms

__all__ = ["IRLoop", "IRLoopNest", "compute_ir_loops"]


class SupportsIRBlock(Protocol):
    """Structural type for the blocks this module analyzes."""

    label: str

    def successor_labels(self) -> Iterable[str]: ...


class _Node:
    """Per-block wrapper giving each label a unique identity.

    :func:`repro.cfg.dominators._iterative_idoms` compares vertices with
    ``is`` and keys them by ``id``; label strings are unsafe there (two
    equal labels from different terminators need not be the same
    object), and ``repro.bcc.ir.IRBlock`` is an eq-comparable dataclass
    and therefore unhashable.  One wrapper per reachable block restores
    the identity semantics the algorithm needs.
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<node {self.label}>"


@dataclass(frozen=True)
class IRLoop:
    """One natural loop of an IR function."""

    #: the loop head (target of the back edges)
    head: str
    #: every block label in ``nat_loop(head)`` (includes the head)
    body: frozenset[str]
    #: back-edge sources, in block order
    latches: tuple[str, ...]
    #: edges ``(src, dst)`` with ``src`` in the body and ``dst`` outside
    exit_edges: tuple[tuple[str, str], ...]


class IRLoopNest:
    """Dominators, back edges, and natural loops of one IR function."""

    def __init__(self, entry: str, labels: tuple[str, ...],
                 idom: dict[str, str | None],
                 preds: dict[str, tuple[str, ...]],
                 back_edges: tuple[tuple[str, str], ...],
                 retreating_violations: tuple[tuple[str, str], ...],
                 loops: dict[str, IRLoop]) -> None:
        self.entry = entry
        #: reachable block labels, in function block order
        self.labels = labels
        #: immediate dominator of each reachable label (entry maps to None)
        self.idom = idom
        #: predecessor labels of each reachable label
        self.preds = preds
        #: DFS retreating edges ``(src, dst)``
        self.back_edges = back_edges
        #: retreating edges whose target does not dominate their source
        self.retreating_violations = retreating_violations
        #: loop head label -> natural loop
        self.loops = loops
        self._depth: dict[str, int] = {}
        for label in idom:
            self._dom_depth(label)

    @property
    def reducible(self) -> bool:
        """True when every retreating edge is a proper back edge."""
        return not self.retreating_violations

    def _dom_depth(self, label: str) -> int:
        depth = self._depth.get(label)
        if depth is not None:
            return depth
        parent = self.idom.get(label)
        depth = 0 if parent is None else self._dom_depth(parent) + 1
        self._depth[label] = depth
        return depth

    def dominates(self, a: str, b: str) -> bool:
        """True if block *a* dominates block *b* (reflexively)."""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth[b] > self._depth[a]:
            parent = self.idom[b]
            assert parent is not None
            b = parent
        return a == b

    def loop_depth(self, label: str) -> int:
        """Number of natural loops whose body contains *label*."""
        return sum(1 for loop in self.loops.values() if label in loop.body)

    def loops_containing(self, label: str) -> list[IRLoop]:
        """Loops whose body contains *label*, outermost first."""
        inside = [lp for lp in self.loops.values() if label in lp.body]
        inside.sort(key=lambda lp: len(lp.body), reverse=True)
        return inside


def compute_ir_loops(blocks: list[SupportsIRBlock]) -> IRLoopNest:
    """Analyze the reachable CFG of an IR function's block list.

    The first block is the entry.  Successor labels that resolve to no
    block are ignored (the IR verifier reports those separately).
    """
    if not blocks:
        raise ValueError("cannot analyze a function with no blocks")
    by_label = {b.label: b for b in blocks}
    entry = blocks[0].label

    # Reachable subgraph, preserving block order for determinism.
    nodes: dict[str, _Node] = {entry: _Node(entry)}
    succs: dict[_Node, list[_Node]] = {}
    preds: dict[_Node, list[_Node]] = {}
    work = [entry]
    while work:
        label = work.pop()
        node = nodes[label]
        succ_nodes: list[_Node] = []
        for target in by_label[label].successor_labels():
            if target not in by_label:
                continue
            succ = nodes.get(target)
            if succ is None:
                succ = nodes[target] = _Node(target)
                work.append(target)
            succ_nodes.append(succ)
            preds.setdefault(succ, []).append(node)
        succs[node] = succ_nodes

    labels = tuple(b.label for b in blocks if b.label in nodes)

    idom_nodes = _iterative_idoms(nodes[entry], succs, preds)
    idom: dict[str, str | None] = {}
    for label in labels:
        parent = idom_nodes.get(nodes[label])
        idom[label] = None if parent is None else parent.label

    pred_labels = {
        label: tuple(p.label for p in preds.get(nodes[label], ()))
        for label in labels
    }

    back_edges = _dfs_retreating_edges(nodes[entry], succs)

    nest = IRLoopNest(entry, labels, idom, pred_labels, back_edges, (), {})
    violations = tuple((src, dst) for src, dst in back_edges
                       if not nest.dominates(dst, src))
    nest.retreating_violations = violations

    bad = set(violations)
    tails_by_head: dict[str, list[str]] = {}
    for src, dst in back_edges:
        if (src, dst) not in bad:
            tails_by_head.setdefault(dst, []).append(src)
    order = {label: i for i, label in enumerate(labels)}
    for head, tails in tails_by_head.items():
        body = _natural_loop(head, tails, pred_labels)
        exits: list[tuple[str, str]] = []
        for label in sorted(body, key=order.__getitem__):
            for target in by_label[label].successor_labels():
                if target in by_label and target not in body:
                    exits.append((label, target))
        nest.loops[head] = IRLoop(
            head=head, body=frozenset(body),
            latches=tuple(sorted(tails, key=order.__getitem__)),
            exit_edges=tuple(exits))
    return nest


def _dfs_retreating_edges(
    entry: _Node, succs: dict[_Node, list[_Node]],
) -> tuple[tuple[str, str], ...]:
    """Retreating edges via iterative DFS (edge to a GRAY ancestor)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {id(entry): GRAY}
    out: list[tuple[str, str]] = []
    stack: list[tuple[_Node, int]] = [(entry, 0)]
    while stack:
        node, si = stack[-1]
        children = succs.get(node, [])
        if si < len(children):
            stack[-1] = (node, si + 1)
            child = children[si]
            c = color.get(id(child), WHITE)
            if c == GRAY:
                out.append((node.label, child.label))
            elif c == WHITE:
                color[id(child)] = GRAY
                stack.append((child, 0))
        else:
            color[id(node)] = BLACK
            stack.pop()
    return tuple(out)


def _natural_loop(head: str, tails: list[str],
                  preds: dict[str, tuple[str, ...]]) -> set[str]:
    """Union of ``nat_loop`` bodies for all back edges ``tail -> head``."""
    body = {head}
    work = [t for t in tails if t not in body]
    body.update(work)
    while work:
        label = work.pop()
        for pred in preds.get(label, ()):
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body
