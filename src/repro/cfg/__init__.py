"""Control-flow-graph substrate: block partitioning, dominators, loops.

This is the per-procedure analysis layer QPT provided in the paper: CFG
construction from an executable's instruction stream
(:mod:`repro.cfg.builder`), dominator/postdominator trees
(:mod:`repro.cfg.dominators`), and natural-loop analysis
(:mod:`repro.cfg.loops`).  :mod:`repro.cfg.analysis` registers all three
as lazily computed, memoized analyses on the :mod:`repro.passes`
framework so one computation serves every consumer.
"""

from repro.cfg.analysis import CFG_ANALYSES, cfg_analysis_manager
from repro.cfg.builder import CFGError, build_all_cfgs, build_cfg
from repro.cfg.dominators import (
    DominatorInfo, compute_dominators, compute_postdominators,
)
from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge, EdgeKind
from repro.cfg.loops import LoopInfo, analyze_loops

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Edge",
    "EdgeKind",
    "CFGError",
    "build_cfg",
    "build_all_cfgs",
    "DominatorInfo",
    "compute_dominators",
    "compute_postdominators",
    "LoopInfo",
    "analyze_loops",
    "CFG_ANALYSES",
    "cfg_analysis_manager",
]
