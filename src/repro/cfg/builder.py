"""Build a control-flow graph from a procedure's instruction stream.

Mirrors QPT: block leaders are the procedure entry, every branch/jump target,
and every instruction following a block-terminating instruction. Calls do
*not* terminate blocks (control returns to the next instruction), which is
what lets the Call heuristic ask whether a *successor block contains a call*.

Blocks unreachable from the entry are dropped.
"""

from __future__ import annotations

from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge, EdgeKind
from repro.isa.program import Executable, Procedure, WORD_SIZE

__all__ = ["build_cfg", "build_all_cfgs", "CFGError"]


class CFGError(Exception):
    """Raised when a procedure's instructions cannot form a well-formed CFG."""


def build_cfg(procedure: Procedure) -> ControlFlowGraph:
    """Construct the CFG of *procedure*."""
    insts = procedure.instructions
    if not insts:
        raise CFGError(f"procedure {procedure.name} is empty")
    start = procedure.start_address
    end = procedure.end_address

    # -- find leaders --------------------------------------------------------
    leaders = {start}
    for inst in insts:
        if inst.is_conditional_branch or inst.is_jump:
            target = inst.target_address
            if not start <= target < end:
                raise CFGError(
                    f"{procedure.name}: branch at 0x{inst.address:x} targets "
                    f"0x{target:x} outside the procedure")
            leaders.add(target)
        if inst.ends_basic_block and inst.address + WORD_SIZE < end:
            leaders.add(inst.address + WORD_SIZE)

    ordered_leaders = sorted(leaders)

    # -- carve blocks ---------------------------------------------------------
    blocks: list[BasicBlock] = []
    by_start: dict[int, BasicBlock] = {}
    for bi, lead in enumerate(ordered_leaders):
        next_lead = (ordered_leaders[bi + 1] if bi + 1 < len(ordered_leaders)
                     else end)
        lo = (lead - start) // WORD_SIZE
        hi = (next_lead - start) // WORD_SIZE
        block = BasicBlock(index=bi, instructions=insts[lo:hi])
        blocks.append(block)
        by_start[lead] = block

    # -- wire edges -------------------------------------------------------------
    def connect(src: BasicBlock, dst_addr: int, kind: EdgeKind) -> None:
        edge = Edge(src, by_start[dst_addr], kind)
        src.out_edges.append(edge)
        edge.dst.in_edges.append(edge)

    for bi, block in enumerate(blocks):
        last = block.last
        after = block.end_address + WORD_SIZE
        if last.is_conditional_branch:
            connect(block, last.target_address, EdgeKind.TARGET)
            if after >= end:
                raise CFGError(
                    f"{procedure.name}: conditional branch at 0x{last.address:x} "
                    "has no fall-through instruction")
            connect(block, after, EdgeKind.FALLTHRU)
        elif last.is_jump:
            connect(block, last.target_address, EdgeKind.JUMP)
        elif last.op.kind.name == "JUMP_REG":
            pass  # return or indirect jump: no static successors
        elif after < end:
            connect(block, after, EdgeKind.FALL)
        # else: block falls off the end of the procedure; treated as exit
        # (the BLC compiler always ends procedures with a return).

    # -- drop unreachable blocks ---------------------------------------------
    reachable: set[int] = set()
    stack = [blocks[0]]
    while stack:
        b = stack.pop()
        if b.index in reachable:
            continue
        reachable.add(b.index)
        stack.extend(b.successors)

    if len(reachable) != len(blocks):
        kept = [b for b in blocks if b.index in reachable]
        kept_ids = {id(b) for b in kept}
        for new_index, b in enumerate(kept):
            b.index = new_index
            b.in_edges = [e for e in b.in_edges if id(e.src) in kept_ids]
        blocks = kept

    return ControlFlowGraph(procedure, blocks)


def build_all_cfgs(executable: Executable) -> dict[str, ControlFlowGraph]:
    """Build CFGs for every procedure in *executable*, keyed by name."""
    return {proc.name: build_cfg(proc) for proc in executable.procedures}
