"""Natural-loop analysis, exactly as Section 3 of the paper defines it.

* **Back edges** are identified by a depth-first search of the CFG from the
  root vertex (edge ``u -> v`` is a back edge iff ``v`` is an ancestor of
  ``u`` on the DFS stack). For the reducible CFGs our compiler produces this
  coincides with the dominance-based definition.
* Each target of one or more back edges is a **loop head** ``y``, and::

      nat_loop(y) = {y} ∪ {w | ∃ back edge x->y and a y-free path from w to x}

* An edge ``v -> w`` is an **exit edge** if ``v ∈ nat_loop(y)`` and
  ``w ∉ nat_loop(y)`` for some loop head ``y``.
* A **preheader** is a block that unconditionally passes control to a loop
  head that it dominates (used by the non-loop Loop heuristic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.dominators import DominatorInfo, compute_dominators
from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge

__all__ = ["LoopInfo", "analyze_loops"]


@dataclass
class LoopInfo:
    """Results of natural-loop analysis over one CFG."""

    cfg: ControlFlowGraph
    #: back edges, as (src, dst) block pairs
    back_edges: set[tuple[BasicBlock, BasicBlock]] = field(default_factory=set)
    #: loop head -> set of blocks in nat_loop(head)
    loops: dict[BasicBlock, set[BasicBlock]] = field(default_factory=dict)
    #: exit edges, as (src, dst) block pairs
    exit_edges: set[tuple[BasicBlock, BasicBlock]] = field(default_factory=set)
    #: blocks that unconditionally enter a loop head they dominate
    preheaders: set[BasicBlock] = field(default_factory=set)

    @property
    def heads(self) -> set[BasicBlock]:
        """Loop-head blocks."""
        return set(self.loops)

    def is_back_edge(self, edge: Edge) -> bool:
        return (edge.src, edge.dst) in self.back_edges

    def is_exit_edge(self, edge: Edge) -> bool:
        return (edge.src, edge.dst) in self.exit_edges

    def is_loop_head(self, block: BasicBlock) -> bool:
        return block in self.loops

    def is_preheader(self, block: BasicBlock) -> bool:
        return block in self.preheaders

    def loop_depth(self, block: BasicBlock) -> int:
        """Number of natural loops containing *block*."""
        return sum(1 for body in self.loops.values() if block in body)

    def is_backward_branch_edge(self, edge: Edge) -> bool:
        """True if the edge transfers control to a lower address — the naive
        'backwards branch' definition the paper improves upon."""
        return edge.dst.start_address <= edge.src.end_address


def _dfs_back_edges(cfg: ControlFlowGraph) -> set[tuple[BasicBlock, BasicBlock]]:
    """Back edges via iterative DFS from the entry (paper's definition)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {id(b): WHITE for b in cfg.blocks}
    back: set[tuple[BasicBlock, BasicBlock]] = set()
    stack: list[tuple[BasicBlock, int]] = [(cfg.entry, 0)]
    color[id(cfg.entry)] = GRAY
    while stack:
        node, si = stack[-1]
        succs = node.successors
        if si < len(succs):
            stack[-1] = (node, si + 1)
            child = succs[si]
            c = color[id(child)]
            if c == GRAY:
                back.add((node, child))
            elif c == WHITE:
                color[id(child)] = GRAY
                stack.append((child, 0))
        else:
            color[id(node)] = BLACK
            stack.pop()
    return back


def _natural_loop(head: BasicBlock, tails: list[BasicBlock]) -> set[BasicBlock]:
    """Union of nat_loop bodies for all back edges ``tail -> head``."""
    body = {head}
    work = [t for t in tails if t not in body]
    body.update(work)
    while work:
        node = work.pop()
        for pred in node.predecessors:
            if pred not in body:
                body.add(pred)
                work.append(pred)
    return body


def analyze_loops(
    cfg: ControlFlowGraph, dom: DominatorInfo | None = None
) -> LoopInfo:
    """Run natural-loop analysis on *cfg*.

    *dom* may be supplied to avoid recomputing dominators (needed for
    preheader identification); it is computed on demand otherwise.
    """
    info = LoopInfo(cfg)
    info.back_edges = _dfs_back_edges(cfg)

    tails_by_head: dict[BasicBlock, list[BasicBlock]] = {}
    for src, dst in info.back_edges:
        tails_by_head.setdefault(dst, []).append(src)

    for head, tails in tails_by_head.items():
        info.loops[head] = _natural_loop(head, tails)

    for head, body in info.loops.items():
        for block in body:
            for edge in block.out_edges:
                if edge.dst not in body:
                    info.exit_edges.add((edge.src, edge.dst))

    if dom is None:
        dom = compute_dominators(cfg)
    for block in cfg.blocks:
        if len(block.out_edges) == 1:
            succ = block.out_edges[0].dst
            if succ in info.loops and dom.dominates(block, succ):
                info.preheaders.add(block)

    return info
