"""Static branch predictors.

Every predictor produces, for each conditional branch in the program, a
fixed :class:`~repro.core.classify.Prediction` that never changes during
execution. Predictors share the :class:`StaticPredictor` interface:
``predictions()`` (address -> Prediction) and ``prediction_map()`` (address
-> bool, the simulator-facing form used by the sequence analyzer).

* :class:`PerfectPredictor` — the paper's upper bound: predicts each
  branch's more frequently executed edge (requires an edge profile, so it is
  dataset-dependent).
* :class:`TakenPredictor` / :class:`NotTakenPredictor` — the naive Tgt /
  fall-through baselines of Table 2.
* :class:`RandomPredictor` — deterministic pseudo-random per branch (the
  paper's Rnd baseline and the Default of the combined heuristic; using the
  same seed makes "the same prediction as in Table 2" literal).
* :class:`BTFNTPredictor` — backward-taken/forward-not-taken, the
  architectural convention the paper improves on.
* :class:`LoopRandomPredictor` — loop predictor on loop branches, random on
  non-loop branches (the Loop+Rand comparator of Section 6).
* :class:`HeuristicPredictor` — the paper's full predictor: loop predictor
  on loop branches, prioritized heuristics on non-loop branches, random
  default. Records which heuristic predicted each branch.
"""

from __future__ import annotations

from repro.core.classify import (
    BranchInfo, Prediction, ProgramAnalysis, classify_branches,
)
from repro.core.registry import HEURISTIC_REGISTRY
from repro.isa.program import Executable
from repro.sim.profile import EdgeProfile

__all__ = [
    "StaticPredictor", "PerfectPredictor", "TakenPredictor",
    "NotTakenPredictor", "RandomPredictor", "BTFNTPredictor",
    "LoopRandomPredictor", "HeuristicPredictor", "VotingPredictor",
    "branch_random",
]


def branch_random(address: int, seed: int = 0) -> Prediction:
    """Deterministic pseudo-random prediction keyed on branch identity.

    A fixed multiplicative hash so that the Rnd baseline and the combined
    heuristic's Default make identical choices for the same branch, across
    runs and datasets.
    """
    h = (address * 2654435761 + seed * 40503 + 0x9E3779B9) & 0xFFFFFFFF
    h ^= h >> 13
    return Prediction.TAKEN if h & 0x10000 else Prediction.NOT_TAKEN


class StaticPredictor:
    """Base: a fixed per-branch prediction over a classified program."""

    name = "static"

    def __init__(self, analysis: ProgramAnalysis | Executable) -> None:
        if isinstance(analysis, Executable):
            analysis = classify_branches(analysis)
        self.analysis = analysis
        self._predictions: dict[int, Prediction] | None = None

    def _predict(self, branch: BranchInfo) -> Prediction:
        raise NotImplementedError

    def predictions(self) -> dict[int, Prediction]:
        """Prediction for every conditional branch in the program."""
        if self._predictions is None:
            self._predictions = {
                addr: self._predict(branch)
                for addr, branch in self.analysis.branches.items()
            }
        return self._predictions

    def prediction_map(self) -> dict[int, bool]:
        """address -> predict-taken, as the sequence analyzer consumes it."""
        return {addr: p.as_bool for addr, p in self.predictions().items()}


class TakenPredictor(StaticPredictor):
    """Always predict the target successor (Table 2's Tgt)."""

    name = "taken"

    def _predict(self, branch: BranchInfo) -> Prediction:
        return Prediction.TAKEN


class NotTakenPredictor(StaticPredictor):
    """Always predict the fall-through successor."""

    name = "not_taken"

    def _predict(self, branch: BranchInfo) -> Prediction:
        return Prediction.NOT_TAKEN


class RandomPredictor(StaticPredictor):
    """Deterministic per-branch coin flip (Table 2's Rnd)."""

    name = "random"

    def __init__(self, analysis, seed: int = 0) -> None:
        super().__init__(analysis)
        self.seed = seed

    def _predict(self, branch: BranchInfo) -> Prediction:
        return branch_random(branch.address, self.seed)


class BTFNTPredictor(StaticPredictor):
    """Backward taken, forward not taken — the hardware convention the DEC
    Alpha and MIPS R4000 bake in."""

    name = "btfnt"

    def _predict(self, branch: BranchInfo) -> Prediction:
        return (Prediction.TAKEN if branch.is_backward
                else Prediction.NOT_TAKEN)


class PerfectPredictor(StaticPredictor):
    """The perfect *static* predictor: the more frequent edge per branch.

    Only branches that executed in the profile get a meaningful choice;
    never-executed branches default to taken (they contribute no misses).
    """

    name = "perfect"

    def __init__(self, analysis, profile: EdgeProfile) -> None:
        super().__init__(analysis)
        self.profile = profile

    def _predict(self, branch: BranchInfo) -> Prediction:
        taken = self.profile.taken_count(branch.address)
        not_taken = self.profile.not_taken_count(branch.address)
        return (Prediction.TAKEN if taken >= not_taken
                else Prediction.NOT_TAKEN)


class LoopRandomPredictor(StaticPredictor):
    """Loop predictor on loop branches, random on non-loop branches — the
    Loop+Rand comparator used throughout Sections 3 and 6."""

    name = "loop+rand"

    def __init__(self, analysis, seed: int = 0) -> None:
        super().__init__(analysis)
        self.seed = seed

    def _predict(self, branch: BranchInfo) -> Prediction:
        if branch.is_loop_branch:
            return branch.loop_prediction
        return branch_random(branch.address, self.seed)


class HeuristicPredictor(StaticPredictor):
    """The paper's program-based predictor.

    Loop branches use the loop predictor. Non-loop branches march through
    *order* (default: the registry's paper chain, Point -> Call -> Opcode ->
    Return -> Store -> Loop -> Guard) and take the first applicable
    heuristic's prediction; branches no heuristic covers fall back to the
    random Default.

    *order* accepts any registered heuristic names (case-insensitive),
    including non-measured extensions; names are canonicalised through
    :data:`~repro.core.registry.HEURISTIC_REGISTRY`, and unknown names
    raise :class:`~repro.core.registry.HeuristicSpecError` (a
    ``ValueError``). Ablation studies pass registry-resolved orders here —
    see :func:`~repro.core.registry.resolve_order`.

    ``attribution`` records, per branch address, which rule decided it:
    a heuristic name, ``"LoopPredictor"``, or ``"Default"``.
    """

    name = "heuristic"

    _DEFAULT_POLICIES = ("random", "taken", "not_taken")

    def __init__(self, analysis, order: tuple[str, ...] | None = None,
                 seed: int = 0, default: str = "random") -> None:
        super().__init__(analysis)
        if order is None:
            order = HEURISTIC_REGISTRY.paper_order()
        # canonicalise and validate through the registry
        entries = [HEURISTIC_REGISTRY.get(name) for name in order]
        if default not in self._DEFAULT_POLICIES:
            raise ValueError(f"unknown default policy {default!r}")
        self.order = tuple(e.name for e in entries)
        self._chain = tuple(e.fn for e in entries)
        self.seed = seed
        self.default = default
        self.attribution: dict[int, str] = {}

    def _default_prediction(self, branch: BranchInfo) -> Prediction:
        if self.default == "taken":
            return Prediction.TAKEN
        if self.default == "not_taken":
            return Prediction.NOT_TAKEN
        return branch_random(branch.address, self.seed)

    def _predict(self, branch: BranchInfo) -> Prediction:
        if branch.is_loop_branch:
            self.attribution[branch.address] = "LoopPredictor"
            return branch.loop_prediction
        pa = self.analysis.analysis_of(branch)
        for name, fn in zip(self.order, self._chain):
            prediction = fn(branch, pa)
            if prediction is not None:
                self.attribution[branch.address] = name
                return prediction
        self.attribution[branch.address] = "Default"
        return self._default_prediction(branch)


class VotingPredictor(StaticPredictor):
    """The combination alternative the paper mentions but does not evaluate:
    "a voting protocol with weighings" (Section 5).

    Every applicable heuristic votes for its predicted successor with a
    per-heuristic weight; the heavier side wins. With uniform weights this
    is majority voting. Ties (including the no-heuristic case) fall back to
    the same random Default stream as :class:`HeuristicPredictor`, keeping
    the comparison between the two combiners fair. Loop branches use the
    loop predictor, exactly as in the priority-order combination.
    """

    name = "voting"

    def __init__(self, analysis, weights: dict[str, float] | None = None,
                 seed: int = 0) -> None:
        super().__init__(analysis)
        if weights:
            # canonicalise + validate names through the registry
            self.weights = {HEURISTIC_REGISTRY.get(name).name: weight
                            for name, weight in weights.items()}
        else:
            self.weights = {name: 1.0
                            for name in HEURISTIC_REGISTRY.names()}
        self.seed = seed
        self.attribution: dict[int, str] = {}

    def _predict(self, branch: BranchInfo) -> Prediction:
        if branch.is_loop_branch:
            self.attribution[branch.address] = "LoopPredictor"
            return branch.loop_prediction
        pa = self.analysis.analysis_of(branch)
        taken_weight = 0.0
        not_taken_weight = 0.0
        for name, weight in self.weights.items():
            prediction = HEURISTIC_REGISTRY.fn(name)(branch, pa)
            if prediction is None:
                continue
            if prediction is Prediction.TAKEN:
                taken_weight += weight
            else:
                not_taken_weight += weight
        if taken_weight > not_taken_weight:
            self.attribution[branch.address] = "Vote"
            return Prediction.TAKEN
        if not_taken_weight > taken_weight:
            self.attribution[branch.address] = "Vote"
            return Prediction.NOT_TAKEN
        self.attribution[branch.address] = "Default"
        return branch_random(branch.address, self.seed)
