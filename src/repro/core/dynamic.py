"""Dynamic (hardware-style) branch predictors, for context.

The paper's related work compares static prediction against the dynamic
schemes of Lee & A. J. Smith (2-bit counters in a branch target buffer) and
notes McFarling & Hennessy's result that profile-based *static* prediction
rivals dynamic hardware. These simple models let the reproduction make the
same three-way comparison: program-based static vs profile-based static vs
dynamic hardware.

Dynamic predictors are :class:`~repro.sim.machine.Observer`\\ s: attach one
to a :class:`~repro.sim.machine.Machine` and it predicts each branch
*before* updating its state, counting its own misses online.

* :class:`LastDirectionPredictor` — 1-bit: predict the branch's previous
  outcome.
* :class:`BimodalPredictor` — 2-bit saturating counters indexed by branch
  address (optionally aliased into a finite table, like real hardware).
* :class:`StaticAsDynamic` — wraps a static prediction map in the same
  interface so all three kinds can run in one execution.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.sim.machine import Observer

__all__ = ["DynamicPredictor", "LastDirectionPredictor", "BimodalPredictor",
           "StaticAsDynamic"]


class DynamicPredictor(Observer):
    """Base: counts predictions and misses over one execution."""

    name = "dynamic"

    def __init__(self) -> None:
        self.n_branches = 0
        self.n_mispredicts = 0

    @property
    def miss_rate(self) -> float:
        if self.n_branches == 0:
            return 0.0
        return self.n_mispredicts / self.n_branches

    def predict(self, addr: int) -> bool:
        """Predicted direction (True = taken) for the branch at *addr*."""
        raise NotImplementedError

    def update(self, addr: int, taken: bool) -> None:
        """Learn the actual outcome."""
        raise NotImplementedError

    def on_branch(self, inst: Instruction, taken: bool,
                  instr_count: int) -> None:
        self.n_branches += 1
        if self.predict(inst.address) != taken:
            self.n_mispredicts += 1
        self.update(inst.address, taken)


class LastDirectionPredictor(DynamicPredictor):
    """1-bit history: predict whatever the branch did last time.

    Cold branches predict *not taken* (the classic hardware default).
    """

    name = "last-direction"

    def __init__(self) -> None:
        super().__init__()
        self._last: dict[int, bool] = {}

    def predict(self, addr: int) -> bool:
        return self._last.get(addr, False)

    def update(self, addr: int, taken: bool) -> None:
        self._last[addr] = taken


class BimodalPredictor(DynamicPredictor):
    """2-bit saturating counters (0-3; >=2 predicts taken).

    *table_bits* — if given, counters live in a ``2**table_bits``-entry
    direct-mapped table indexed by ``(addr >> 2) & mask`` so distinct
    branches can alias, as in real hardware; if None, every branch gets a
    private counter (infinite table).
    Counters initialize to weakly-not-taken (1).
    """

    name = "bimodal"

    def __init__(self, table_bits: int | None = None) -> None:
        super().__init__()
        self.table_bits = table_bits
        if table_bits is not None:
            if not 1 <= table_bits <= 24:
                raise ValueError(f"table_bits out of range: {table_bits}")
            self._mask = (1 << table_bits) - 1
            self._table = [1] * (1 << table_bits)
        else:
            self._counters: dict[int, int] = {}

    def _index(self, addr: int) -> int:
        return (addr >> 2) & self._mask

    def predict(self, addr: int) -> bool:
        if self.table_bits is not None:
            return self._table[self._index(addr)] >= 2
        return self._counters.get(addr, 1) >= 2

    def update(self, addr: int, taken: bool) -> None:
        if self.table_bits is not None:
            i = self._index(addr)
            value = self._table[i]
            self._table[i] = min(value + 1, 3) if taken else max(value - 1, 0)
        else:
            value = self._counters.get(addr, 1)
            self._counters[addr] = (min(value + 1, 3) if taken
                                    else max(value - 1, 0))


class StaticAsDynamic(DynamicPredictor):
    """A static prediction map in the dynamic-predictor interface, so a
    static predictor can be raced against dynamic ones in one execution."""

    name = "static"

    def __init__(self, predictions: dict[int, bool]) -> None:
        super().__init__()
        self.predictions = predictions

    def predict(self, addr: int) -> bool:
        return self.predictions[addr]

    def update(self, addr: int, taken: bool) -> None:
        pass
