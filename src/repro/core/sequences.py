"""Trace-based sequence-length experiments (Section 6, Graphs 4-11).

Glue between the predictors and the simulator's online
:class:`~repro.sim.trace.SequenceAnalyzer`: build the three prediction maps
the paper compares (Perfect, Heuristic, Loop+Rand), run the program once
with all three analyzers attached, and return their distributions.
"""

from __future__ import annotations

from repro.core.classify import ProgramAnalysis, classify_branches
from repro.core.predictors import (
    HeuristicPredictor, LoopRandomPredictor, PerfectPredictor,
)
from repro.isa.program import Executable
from repro.sim import run_with_sequences
from repro.sim.profile import EdgeProfile
from repro.sim.trace import SequenceAnalyzer

__all__ = ["sequence_experiment", "PAPER_SEQUENCE_PREDICTORS"]

PAPER_SEQUENCE_PREDICTORS = ("Loop+Rand", "Heuristic", "Perfect")


def sequence_experiment(
    executable: Executable,
    profile: EdgeProfile,
    inputs: list | None = None,
    analysis: ProgramAnalysis | None = None,
    max_instructions: int = 200_000_000,
    engine: str | None = None,
) -> dict[str, SequenceAnalyzer]:
    """Run one execution measuring the sequence-length distributions of the
    paper's three predictors simultaneously.

    *profile* must come from an identical prior run (same inputs); it
    defines the perfect predictor. Returns analyzers keyed
    ``"Loop+Rand" | "Heuristic" | "Perfect"``.
    """
    if analysis is None:
        analysis = classify_branches(executable)
    predictions = {
        "Loop+Rand": LoopRandomPredictor(analysis).prediction_map(),
        "Heuristic": HeuristicPredictor(analysis).prediction_map(),
        "Perfect": PerfectPredictor(analysis, profile).prediction_map(),
    }
    return run_with_sequences(executable, predictions, inputs=inputs,
                              max_instructions=max_instructions,
                              engine=engine)
