"""The analytic sequence-length model (Section 6, Graph 12).

Assume unit-length basic blocks each ending in a conditional branch,
independent branches, and a uniform per-branch miss rate *m*. Then the
fraction of executed instructions accounted for by sequences of length at
most *s* is::

    f(m, s) = m * sum_{i=0..s-1} (1-m)^i = 1 - (1-m)^s

The paper's takeaway: the payoff in sequence length comes from pushing the
miss rate *below* ~15%, not from improving 30% to 15%.
"""

from __future__ import annotations

import numpy as np

__all__ = ["model_fraction", "model_series", "model_family",
           "expected_sequence_length", "dividing_length"]


def model_fraction(miss_rate: float, length: int) -> float:
    """f(m, s) = 1 - (1-m)^s — fraction of instructions in sequences of
    length <= *length* under miss rate *miss_rate*."""
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError(f"miss rate out of range: {miss_rate}")
    if length < 0:
        raise ValueError(f"negative sequence length: {length}")
    return 1.0 - (1.0 - miss_rate) ** length


def model_series(miss_rate: float, lengths) -> np.ndarray:
    """Vectorized :func:`model_fraction` over an array of lengths."""
    lengths = np.asarray(lengths, dtype=np.float64)
    return 1.0 - (1.0 - miss_rate) ** lengths


def model_family(miss_rates=None, max_length: int = 101) -> dict[float, np.ndarray]:
    """Graph 12's plotted family: miss rates 0.025..0.30 step 0.025 by
    default, each mapped to its cumulative curve over 1..max_length."""
    if miss_rates is None:
        miss_rates = [round(0.025 * i, 3) for i in range(1, 13)]
    lengths = np.arange(1, max_length + 1)
    return {m: model_series(m, lengths) for m in miss_rates}


def expected_sequence_length(miss_rate: float) -> float:
    """Mean sequence length under the model (geometric mean 1/m)."""
    if miss_rate <= 0.0:
        raise ValueError("miss rate must be positive")
    return 1.0 / miss_rate


def dividing_length(miss_rate: float) -> float:
    """The model's dividing length: the s with f(m, s) = 0.5."""
    if not 0.0 < miss_rate < 1.0:
        raise ValueError(f"miss rate out of range: {miss_rate}")
    return float(np.log(0.5) / np.log(1.0 - miss_rate))
