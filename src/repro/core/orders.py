"""Heuristic-ordering experiments (Section 5, Graphs 1-3, Table 4).

The combined predictor totally orders the heuristics and uses the first that
applies. These experiments quantify how much the order matters and whether
an order picked on half the benchmarks generalizes:

* :func:`all_orders_curve` — the average non-loop miss rate of every one of
  the 7! = 5040 orders, sorted (Graph 1);
* :func:`subset_experiment` — for every size-k subset of the benchmarks,
  find the order minimizing the subset's average miss rate, then score that
  order on *all* benchmarks (Graphs 2-3, Table 4);
* :func:`pairwise_order` — the cheaper pairwise-comparison ordering the
  paper reports as "generally inferior ... but in the top quarter".

Everything is precomputed into per-benchmark numpy tables (one row per
executed non-loop branch) so that evaluating an order is a couple of
vectorized gathers; the full 5040-order sweep over a 20-benchmark suite
takes well under a second.

The heuristic set is *registry-derived*: every entry point takes an
optional ``names`` tuple (default: the measured set from
:data:`~repro.core.registry.HEURISTIC_REGISTRY`), so ablation and
extension experiments — drop Guard, add a registered extension — reuse
the same vectorized machinery at n! orders for n heuristics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations, permutations

import numpy as np

from repro.core.classify import Prediction, ProgramAnalysis
from repro.core.heuristics import applicable_heuristics
from repro.core.predictors import branch_random
from repro.core.registry import HEURISTIC_REGISTRY
from repro.sim.profile import EdgeProfile

__all__ = [
    "OrderData", "build_order_data", "order_miss_rate", "miss_rate_matrix",
    "all_orders", "all_orders_curve", "best_order", "subset_experiment",
    "SubsetExperimentResult", "pairwise_order",
]


def _default_names() -> tuple[str, ...]:
    """The measured heuristic set, registry-derived at call time."""
    return HEURISTIC_REGISTRY.names()


def _resolve_names(names: tuple[str, ...] | None) -> tuple[str, ...]:
    if names is None:
        return _default_names()
    return tuple(HEURISTIC_REGISTRY.get(n).name for n in names)


@dataclass
class OrderData:
    """Per-benchmark table: one row per *executed non-loop* branch."""

    name: str
    #: (B, H) — heuristic h applies to branch b
    applies: np.ndarray
    #: (B, H) — heuristic h predicts taken for branch b
    predict_taken: np.ndarray
    #: (B,) dynamic taken counts
    taken: np.ndarray
    #: (B,) dynamic fall-through counts
    not_taken: np.ndarray
    #: (B,) the Default (random) prediction, predict-taken
    default_taken: np.ndarray
    #: column labels for ``applies`` / ``predict_taken`` (default: the
    #: registry's measured set at construction time)
    names: tuple[str, ...] = field(default_factory=_default_names)

    @property
    def total(self) -> int:
        return int(self.taken.sum() + self.not_taken.sum())

    @property
    def num_heuristics(self) -> int:
        return len(self.names)


def build_order_data(name: str, analysis: ProgramAnalysis,
                     profile: EdgeProfile, seed: int = 0,
                     names: tuple[str, ...] | None = None) -> OrderData:
    """Evaluate heuristics on every executed non-loop branch of one
    benchmark and pack the results for vectorized order evaluation.

    *names* selects (and orders) the heuristic columns; the default is the
    registry's measured set.
    """
    names = _resolve_names(names)
    num_h = len(names)
    rows = [b for b in analysis.non_loop_branches()
            if profile.execution_count(b.address) > 0]
    n = len(rows)
    applies = np.zeros((n, num_h), dtype=bool)
    predict_taken = np.zeros((n, num_h), dtype=bool)
    taken = np.zeros(n, dtype=np.int64)
    not_taken = np.zeros(n, dtype=np.int64)
    default_taken = np.zeros(n, dtype=bool)
    for i, branch in enumerate(rows):
        pa = analysis.analysis_of(branch)
        table = applicable_heuristics(branch, pa, names)
        for h, hname in enumerate(names):
            if hname in table:
                applies[i, h] = True
                predict_taken[i, h] = table[hname] is Prediction.TAKEN
        taken[i] = profile.taken_count(branch.address)
        not_taken[i] = profile.not_taken_count(branch.address)
        default_taken[i] = branch_random(branch.address, seed).as_bool
    return OrderData(name, applies, predict_taken, taken, not_taken,
                     default_taken, names)


def _no_rank(num_h: int) -> np.int8:
    return np.int8(num_h + 1)


def _rank_array(order: tuple[str, ...],
                names: tuple[str, ...]) -> np.ndarray:
    ranks = np.full(len(names), _no_rank(len(names)), dtype=np.int8)
    for priority, hname in enumerate(order):
        ranks[names.index(hname)] = priority
    return ranks


def _misses_for_ranks(data: OrderData, ranks: np.ndarray) -> np.ndarray:
    """Dynamic miss counts for one or many orders.

    *ranks* is (H,) or (O, H); returns shape () or (O,).
    """
    single = ranks.ndim == 1
    if single:
        ranks = ranks[None, :]
    # (O, B, H): rank where applicable, sentinel where not
    masked = np.where(data.applies[None, :, :], ranks[:, None, :],
                      _no_rank(data.num_heuristics))
    choice = masked.argmin(axis=2)                       # (O, B)
    any_applies = data.applies.any(axis=1)               # (B,)
    b_index = np.arange(data.applies.shape[0])
    ptaken = data.predict_taken[b_index[None, :], choice]  # (O, B)
    ptaken = np.where(any_applies[None, :], ptaken,
                      data.default_taken[None, :])
    misses = np.where(ptaken, data.not_taken[None, :],
                      data.taken[None, :]).sum(axis=1)
    return misses[0] if single else misses


def order_miss_rate(data: OrderData, order: tuple[str, ...]) -> float:
    """Non-loop dynamic miss rate of *order* on one benchmark."""
    if data.total == 0:
        return 0.0
    ranks = _rank_array(order, data.names)
    return float(_misses_for_ranks(data, ranks)) / data.total


def all_orders(names: tuple[str, ...] | None = None
               ) -> list[tuple[str, ...]]:
    """All n! heuristic orders (7! = 5040 at the paper's measured set), in
    a fixed deterministic order."""
    return [tuple(p) for p in permutations(_resolve_names(names))]


def _dataset_names(datasets: list[OrderData]) -> tuple[str, ...]:
    """The common column labels of *datasets* (all must agree)."""
    if not datasets:
        return _default_names()
    names = datasets[0].names
    for data in datasets[1:]:
        if data.names != names:
            raise ValueError(
                f"OrderData column mismatch: {data.name} has {data.names}, "
                f"expected {names}")
    return names


def miss_rate_matrix(datasets: list[OrderData],
                     orders: list[tuple[str, ...]] | None = None
                     ) -> tuple[np.ndarray, list[tuple[str, ...]]]:
    """(O, N) matrix of per-benchmark miss rates for every order."""
    names = _dataset_names(datasets)
    if orders is None:
        orders = all_orders(names)
    ranks = np.stack([_rank_array(o, names) for o in orders])
    matrix = np.zeros((len(orders), len(datasets)), dtype=np.float64)
    for j, data in enumerate(datasets):
        if data.total == 0:
            continue
        matrix[:, j] = _misses_for_ranks(data, ranks) / data.total
    return matrix, orders


def all_orders_curve(datasets: list[OrderData]) -> np.ndarray:
    """Graph 1: sorted average miss rates of all 5040 orders (each benchmark
    weighted equally, as in the paper)."""
    matrix, _ = miss_rate_matrix(datasets)
    return np.sort(matrix.mean(axis=1))


def best_order(datasets: list[OrderData]) -> tuple[tuple[str, ...], float]:
    """The order minimizing the equal-weight average miss rate."""
    matrix, orders = miss_rate_matrix(datasets)
    means = matrix.mean(axis=1)
    index = int(means.argmin())
    return orders[index], float(means[index])


@dataclass
class SubsetExperimentResult:
    """Output of the C(N, k) generalization experiment."""

    #: orders that won at least one trial, most frequent first
    orders: list[tuple[str, ...]]
    #: trials won by each order (parallel to ``orders``)
    frequencies: list[int]
    #: average miss rate of each order over ALL benchmarks (parallel)
    overall_miss_rates: list[float]
    n_trials: int

    def cumulative_trial_share(self) -> np.ndarray:
        """Graph 2: cumulative fraction of trials won by the most common
        orders."""
        freq = np.array(self.frequencies, dtype=np.float64)
        return np.cumsum(freq) / self.n_trials

    def top(self, n: int) -> list[tuple[tuple[str, ...], int, float]]:
        """Table 4: the n most common orders with trial share and overall
        miss rate."""
        return [(self.orders[i], self.frequencies[i],
                 self.overall_miss_rates[i])
                for i in range(min(n, len(self.orders)))]


def subset_experiment(datasets: list[OrderData], k: int | None = None,
                      chunk: int = 2048) -> SubsetExperimentResult:
    """For every size-*k* subset of the benchmarks (default: half), find the
    order that minimizes the subset's average miss rate; tally how often
    each order wins and how it scores on the full suite.

    The paper ran C(22, 11) = 705,432 trials; the computation here is a
    chunked matrix product over the precomputed (orders x benchmarks) miss
    matrix, so the full enumeration is cheap at our suite size.
    """
    n = len(datasets)
    if k is None:
        k = n // 2
    matrix, orders = miss_rate_matrix(datasets)   # (O, N)
    overall = matrix.mean(axis=1)                 # (O,)
    counter: Counter[int] = Counter()
    n_trials = 0
    subset_iter = combinations(range(n), k)
    while True:
        batch = []
        for _ in range(chunk):
            try:
                batch.append(next(subset_iter))
            except StopIteration:
                break
        if not batch:
            break
        mask = np.zeros((len(batch), n), dtype=np.float32)
        for row, subset in enumerate(batch):
            mask[row, list(subset)] = 1.0
        scores = mask @ matrix.T.astype(np.float32)   # (batch, O)
        winners = scores.argmin(axis=1)
        counter.update(winners.tolist())
        n_trials += len(batch)
    ranked = counter.most_common()
    return SubsetExperimentResult(
        orders=[orders[i] for i, _ in ranked],
        frequencies=[c for _, c in ranked],
        overall_miss_rates=[float(overall[i]) for i, _ in ranked],
        n_trials=n_trials,
    )


def pairwise_order(datasets: list[OrderData]) -> tuple[str, ...]:
    """Section 5's cheaper alternative: compare each pair of heuristics on
    the branches where both apply, and order by pairwise wins (total
    dynamic misses on the intersection; Copeland scoring breaks cycles)."""
    names = _dataset_names(datasets)
    num_h = len(names)
    wins = np.zeros(num_h, dtype=np.int64)
    for a in range(num_h):
        for b in range(a + 1, num_h):
            misses_a = 0
            misses_b = 0
            for data in datasets:
                both = data.applies[:, a] & data.applies[:, b]
                if not both.any():
                    continue
                taken = data.taken[both]
                not_taken = data.not_taken[both]
                pa = data.predict_taken[both, a]
                pb = data.predict_taken[both, b]
                misses_a += int(np.where(pa, not_taken, taken).sum())
                misses_b += int(np.where(pb, not_taken, taken).sum())
            if misses_a < misses_b:
                wins[a] += 1
            elif misses_b < misses_a:
                wins[b] += 1
    ranked = sorted(range(num_h), key=lambda h: (-wins[h], h))
    return tuple(names[h] for h in ranked)
