"""The paper's contribution: program-based static branch prediction.

* :mod:`~repro.core.classify` — loop/non-loop branch classification and the
  loop predictor (Section 3);
* :mod:`~repro.core.heuristics` — the seven non-loop heuristics (Section 4);
* :mod:`~repro.core.predictors` — the combined predictor and every baseline;
* :mod:`~repro.core.evaluation` — dynamic miss rates, coverage, C/D;
* :mod:`~repro.core.orders` — ordering experiments (Section 5);
* :mod:`~repro.core.sequences` / :mod:`~repro.core.model` — instructions per
  break in control (Section 6).
"""

from repro.core.classify import (
    BranchClass, BranchInfo, Prediction, ProcedureAnalysis, ProgramAnalysis,
    classify_branches,
)
from repro.core.evaluation import (
    EvalResult, big_branches, cd, coverage, evaluate_predictions,
    evaluate_predictor, perfect_miss_rate,
)
from repro.core.dynamic import (
    BimodalPredictor, DynamicPredictor, LastDirectionPredictor,
    StaticAsDynamic,
)
from repro.core.heuristics import (
    HEURISTIC_NAMES, HEURISTICS, PAPER_ORDER, applicable_heuristics,
    extended_guard_heuristic,
)
from repro.core.profile_guided import (
    CrossDatasetResult, ProfileGuidedPredictor, cross_dataset_experiment,
)
from repro.core.model import (
    dividing_length, expected_sequence_length, model_family, model_fraction,
    model_series,
)
from repro.core.orders import (
    OrderData, SubsetExperimentResult, all_orders, all_orders_curve,
    best_order, build_order_data, miss_rate_matrix, order_miss_rate,
    pairwise_order, subset_experiment,
)
from repro.core.predictors import (
    BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor,
    NotTakenPredictor, PerfectPredictor, RandomPredictor, StaticPredictor,
    TakenPredictor, VotingPredictor, branch_random,
)
from repro.core.registry import (
    HEURISTIC_REGISTRY, HeuristicEntry, HeuristicRegistry,
    HeuristicSpecError, heuristic_names, paper_order, register_heuristic,
    resolve_order,
)
from repro.core.sequences import PAPER_SEQUENCE_PREDICTORS, sequence_experiment

__all__ = [
    "Prediction", "BranchClass", "BranchInfo", "ProcedureAnalysis",
    "ProgramAnalysis", "classify_branches",
    "HEURISTIC_NAMES", "HEURISTICS", "PAPER_ORDER", "applicable_heuristics",
    "StaticPredictor", "PerfectPredictor", "TakenPredictor",
    "NotTakenPredictor", "RandomPredictor", "BTFNTPredictor",
    "LoopRandomPredictor", "HeuristicPredictor", "branch_random",
    "EvalResult", "evaluate_predictions", "evaluate_predictor",
    "perfect_miss_rate", "coverage", "big_branches", "cd",
    "OrderData", "build_order_data", "order_miss_rate", "miss_rate_matrix",
    "all_orders", "all_orders_curve", "best_order", "subset_experiment",
    "SubsetExperimentResult", "pairwise_order",
    "model_fraction", "model_series", "model_family",
    "expected_sequence_length", "dividing_length",
    "sequence_experiment", "PAPER_SEQUENCE_PREDICTORS",
    "extended_guard_heuristic",
    "ProfileGuidedPredictor", "CrossDatasetResult",
    "cross_dataset_experiment",
    "DynamicPredictor", "LastDirectionPredictor", "BimodalPredictor",
    "StaticAsDynamic", "VotingPredictor",
    "HEURISTIC_REGISTRY", "HeuristicEntry", "HeuristicRegistry",
    "HeuristicSpecError", "heuristic_names", "paper_order",
    "register_heuristic", "resolve_order",
]
