"""Miss-rate evaluation against edge profiles.

The paper reports every predictor as ``C/D``: the predictor's dynamic miss
rate over the perfect static predictor's. All rates here are *dynamic*
(weighted by execution counts from an :class:`~repro.sim.profile.EdgeProfile`),
and every function takes an optional address subset so loop and non-loop
branches can be scored separately, as in Tables 2-6.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.classify import Prediction, ProgramAnalysis
from repro.sim.profile import EdgeProfile

__all__ = ["EvalResult", "evaluate_predictions", "evaluate_predictor",
           "perfect_miss_rate", "coverage", "big_branches", "cd"]


@dataclass
class EvalResult:
    """Dynamic prediction accuracy over a set of branches."""

    misses: int
    executed: int
    perfect_misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of dynamic branches mispredicted (the paper's C)."""
        return self.misses / self.executed if self.executed else 0.0

    @property
    def perfect_rate(self) -> float:
        """The perfect static predictor's miss rate (the paper's D)."""
        return self.perfect_misses / self.executed if self.executed else 0.0

    def cd(self) -> str:
        """Render in the paper's C/D percentage notation."""
        return cd(self.miss_rate, self.perfect_rate)


def cd(miss_rate: float, perfect_rate: float) -> str:
    """Format two rates as the paper's ``C/D`` percentages."""
    return f"{100 * miss_rate:.0f}/{100 * perfect_rate:.0f}"


def _miss_count(profile: EdgeProfile, addr: int,
                prediction: Prediction) -> int:
    if prediction is Prediction.TAKEN:
        return profile.not_taken_count(addr)
    return profile.taken_count(addr)


def evaluate_predictions(
    predictions: dict[int, Prediction],
    profile: EdgeProfile,
    addresses: Iterable[int] | None = None,
) -> EvalResult:
    """Score a raw prediction map against *profile*.

    *addresses* restricts scoring to a branch subset (e.g. only non-loop
    branches); by default every branch that executed is scored. A branch
    that executed but has no prediction raises ``KeyError`` — predictors
    always cover every static branch.
    """
    if addresses is None:
        addresses = profile.executed_branches()
    misses = 0
    executed = 0
    perfect = 0
    for addr in addresses:
        count = profile.execution_count(addr)
        if count == 0:
            continue
        executed += count
        misses += _miss_count(profile, addr, predictions[addr])
        perfect += profile.perfect_miss_count(addr)
    return EvalResult(misses, executed, perfect)


def evaluate_predictor(predictor, profile: EdgeProfile,
                       addresses: Iterable[int] | None = None) -> EvalResult:
    """Score a :class:`~repro.core.predictors.StaticPredictor`."""
    return evaluate_predictions(predictor.predictions(), profile, addresses)


def perfect_miss_rate(profile: EdgeProfile,
                      addresses: Iterable[int] | None = None) -> float:
    """The perfect static predictor's miss rate over a branch subset."""
    if addresses is None:
        addresses = profile.executed_branches()
    executed = 0
    misses = 0
    for addr in addresses:
        executed += profile.execution_count(addr)
        misses += profile.perfect_miss_count(addr)
    return misses / executed if executed else 0.0


def coverage(profile: EdgeProfile, covered: Iterable[int],
             universe: Iterable[int]) -> float:
    """Fraction of the dynamic executions of *universe* branches accounted
    for by *covered* branches (e.g. a heuristic's dynamic coverage of
    non-loop branches, the bold numbers of Table 3)."""
    covered = set(covered)
    total = 0
    hit = 0
    for addr in universe:
        count = profile.execution_count(addr)
        total += count
        if addr in covered:
            hit += count
    return hit / total if total else 0.0


@dataclass
class BigBranchReport:
    """Table 2's "Big" column: non-loop branches that each contribute more
    than 5% of all dynamic non-loop branch executions."""

    count: int
    fraction_of_dynamic: float


def big_branches(profile: EdgeProfile, analysis: ProgramAnalysis,
                 threshold: float = 0.05) -> BigBranchReport:
    non_loop = [b.address for b in analysis.non_loop_branches()]
    total = sum(profile.execution_count(a) for a in non_loop)
    if total == 0:
        return BigBranchReport(0, 0.0)
    big_total = 0
    count = 0
    for addr in non_loop:
        c = profile.execution_count(addr)
        if c > threshold * total:
            count += 1
            big_total += c
    return BigBranchReport(count, big_total / total)
