"""Branch classification (Section 3 of the paper).

Using natural-loop analysis of each procedure's CFG:

* a branch is a **loop branch** if either of its outgoing edges is a loop
  back edge or an exit edge;
* otherwise it is a **non-loop branch**.

Loop branches get the paper's loop predictor: *iterate, don't exit* — if an
outgoing edge is a back edge, predict it; otherwise predict the non-exit
edge. This beats the naive "predict backward branches taken" because many
loop branches are not backward branches (bottom-tested loops with multiple
exits, rotated-loop continuation tests, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cfg.analysis import cfg_analysis_manager
from repro.cfg.builder import build_cfg
from repro.cfg.dominators import DominatorInfo
from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge
from repro.cfg.loops import LoopInfo
from repro.isa.instructions import Instruction
from repro.isa.program import Executable, Procedure

__all__ = [
    "Prediction", "BranchClass", "BranchInfo", "ProcedureAnalysis",
    "ProgramAnalysis", "classify_branches",
]


class Prediction(enum.Enum):
    """A static prediction: which successor edge the branch will follow."""

    TAKEN = "taken"          #: the target successor
    NOT_TAKEN = "not_taken"  #: the fall-through successor

    @property
    def as_bool(self) -> bool:
        """True iff the prediction is TAKEN (the simulator's convention)."""
        return self is Prediction.TAKEN

    def inverted(self) -> "Prediction":
        return (Prediction.NOT_TAKEN if self is Prediction.TAKEN
                else Prediction.TAKEN)


class BranchClass(enum.Enum):
    LOOP = "loop"
    NON_LOOP = "non_loop"


@dataclass
class BranchInfo:
    """Everything the heuristics need to know about one conditional branch."""

    address: int
    instruction: Instruction
    procedure: Procedure
    block: BasicBlock
    target_edge: Edge
    fallthru_edge: Edge
    branch_class: BranchClass
    #: the loop predictor's choice (loop branches only)
    loop_prediction: Prediction | None = None
    #: True if the target address precedes the branch (a "backward branch")
    is_backward: bool = False

    @property
    def is_loop_branch(self) -> bool:
        return self.branch_class is BranchClass.LOOP

    def successor_of(self, prediction: Prediction) -> BasicBlock:
        edge = (self.target_edge if prediction is Prediction.TAKEN
                else self.fallthru_edge)
        return edge.dst

    def prediction_of(self, block: BasicBlock) -> Prediction:
        """The prediction that chooses successor *block*."""
        if block is self.target_edge.dst:
            return Prediction.TAKEN
        if block is self.fallthru_edge.dst:
            return Prediction.NOT_TAKEN
        raise ValueError(f"block B{block.index} is not a successor")


class ProcedureAnalysis:
    """Per-procedure CFG analyses shared by all heuristics.

    ``dom`` / ``postdom`` / ``loops`` are *lazy*: each is computed by the
    shared :data:`~repro.cfg.analysis.CFG_ANALYSES` registry through a
    per-procedure :class:`~repro.passes.manager.AnalysisManager` the first
    time it is read, then memoized.  A branch-free procedure that nothing
    queries therefore never pays for a dominator or postdominator tree,
    and the classifier, the heuristics, and the ordering experiments all
    share one computation per procedure.

    Pre-computed results may be passed in (the historical eager
    constructor shape) — they seed the manager's cache.
    """

    __slots__ = ("cfg", "am")

    def __init__(self, cfg: ControlFlowGraph,
                 dom: DominatorInfo | None = None,
                 postdom: DominatorInfo | None = None,
                 loops: LoopInfo | None = None) -> None:
        self.cfg = cfg
        self.am = cfg_analysis_manager(cfg)
        if dom is not None:
            self.am.seed("domtree", dom)
        if postdom is not None:
            self.am.seed("postdomtree", postdom)
        if loops is not None:
            self.am.seed("natural-loops", loops)

    @property
    def dom(self) -> DominatorInfo:
        """The dominator tree (computed on first use)."""
        return self.am.get("domtree")

    @property
    def postdom(self) -> DominatorInfo:
        """The postdominator tree (computed on first use)."""
        return self.am.get("postdomtree")

    @property
    def loops(self) -> LoopInfo:
        """Natural-loop facts (computed on first use; pulls ``dom``)."""
        return self.am.get("natural-loops")


class ProgramAnalysis:
    """Whole-program branch classification and CFG analyses.

    This is the static side of the reproduction: build it once per
    executable, then hand it to predictors. ``branches`` maps each
    conditional branch's text address to its :class:`BranchInfo`.

    Only the CFG is built eagerly per procedure; dominator, postdominator,
    and natural-loop analyses are computed lazily through each
    procedure's analysis manager — classification touches loop facts only
    for procedures that actually contain conditional branches, and the
    postdominator tree is first built when a property-based heuristic
    asks for it.
    """

    def __init__(self, executable: Executable) -> None:
        self.executable = executable
        self.procedures: dict[str, ProcedureAnalysis] = {}
        self.branches: dict[int, BranchInfo] = {}
        for procedure in executable.procedures:
            pa = ProcedureAnalysis(build_cfg(procedure))
            self.procedures[procedure.name] = pa
            self._classify_procedure(procedure, pa)

    def _classify_procedure(self, procedure: Procedure,
                            pa: ProcedureAnalysis) -> None:
        loops: LoopInfo | None = None
        for block in pa.cfg.blocks:
            if not block.is_branch_block:
                continue
            if loops is None:
                # first conditional branch: natural loops (and the
                # dominator tree beneath them) are needed from here on
                loops = pa.loops
            inst = block.last
            target_edge = block.target_edge()
            fallthru_edge = block.fallthru_edge()
            edges = (target_edge, fallthru_edge)
            is_loop = any(loops.is_back_edge(e) or loops.is_exit_edge(e)
                          for e in edges)
            info = BranchInfo(
                address=inst.address,
                instruction=inst,
                procedure=procedure,
                block=block,
                target_edge=target_edge,
                fallthru_edge=fallthru_edge,
                branch_class=(BranchClass.LOOP if is_loop
                              else BranchClass.NON_LOOP),
                is_backward=inst.target_address <= inst.address,
            )
            if is_loop:
                info.loop_prediction = self._loop_prediction(info, loops)
            self.branches[inst.address] = info

    @staticmethod
    def _loop_prediction(info: BranchInfo, loops: LoopInfo) -> Prediction:
        """The loop predictor: back edge if present, else the non-exit edge."""
        target_back = loops.is_back_edge(info.target_edge)
        fallthru_back = loops.is_back_edge(info.fallthru_edge)
        if target_back and fallthru_back:
            # theoretically possible per the paper (never observed); the
            # paper's tie-break is the edge to the innermost loop — the one
            # whose destination sits in more loops
            t_depth = loops.loop_depth(info.target_edge.dst)
            f_depth = loops.loop_depth(info.fallthru_edge.dst)
            return (Prediction.TAKEN if t_depth >= f_depth
                    else Prediction.NOT_TAKEN)
        if target_back:
            return Prediction.TAKEN
        if fallthru_back:
            return Prediction.NOT_TAKEN
        # no back edge: predict the non-exit edge (iterate, don't exit)
        if loops.is_exit_edge(info.target_edge):
            return Prediction.NOT_TAKEN
        return Prediction.TAKEN

    def analysis_of(self, info: BranchInfo) -> ProcedureAnalysis:
        return self.procedures[info.procedure.name]

    def loop_branches(self) -> list[BranchInfo]:
        return [b for b in self.branches.values() if b.is_loop_branch]

    def non_loop_branches(self) -> list[BranchInfo]:
        return [b for b in self.branches.values() if not b.is_loop_branch]


def classify_branches(executable: Executable) -> ProgramAnalysis:
    """Build the whole-program branch classification for *executable*."""
    return ProgramAnalysis(executable)
