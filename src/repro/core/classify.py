"""Branch classification (Section 3 of the paper).

Using natural-loop analysis of each procedure's CFG:

* a branch is a **loop branch** if either of its outgoing edges is a loop
  back edge or an exit edge;
* otherwise it is a **non-loop branch**.

Loop branches get the paper's loop predictor: *iterate, don't exit* — if an
outgoing edge is a back edge, predict it; otherwise predict the non-exit
edge. This beats the naive "predict backward branches taken" because many
loop branches are not backward branches (bottom-tested loops with multiple
exits, rotated-loop continuation tests, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cfg.builder import build_cfg
from repro.cfg.dominators import (
    DominatorInfo, compute_dominators, compute_postdominators,
)
from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge
from repro.cfg.loops import LoopInfo, analyze_loops
from repro.isa.instructions import Instruction
from repro.isa.program import Executable, Procedure

__all__ = [
    "Prediction", "BranchClass", "BranchInfo", "ProcedureAnalysis",
    "ProgramAnalysis", "classify_branches",
]


class Prediction(enum.Enum):
    """A static prediction: which successor edge the branch will follow."""

    TAKEN = "taken"          #: the target successor
    NOT_TAKEN = "not_taken"  #: the fall-through successor

    @property
    def as_bool(self) -> bool:
        """True iff the prediction is TAKEN (the simulator's convention)."""
        return self is Prediction.TAKEN

    def inverted(self) -> "Prediction":
        return (Prediction.NOT_TAKEN if self is Prediction.TAKEN
                else Prediction.TAKEN)


class BranchClass(enum.Enum):
    LOOP = "loop"
    NON_LOOP = "non_loop"


@dataclass
class BranchInfo:
    """Everything the heuristics need to know about one conditional branch."""

    address: int
    instruction: Instruction
    procedure: Procedure
    block: BasicBlock
    target_edge: Edge
    fallthru_edge: Edge
    branch_class: BranchClass
    #: the loop predictor's choice (loop branches only)
    loop_prediction: Prediction | None = None
    #: True if the target address precedes the branch (a "backward branch")
    is_backward: bool = False

    @property
    def is_loop_branch(self) -> bool:
        return self.branch_class is BranchClass.LOOP

    def successor_of(self, prediction: Prediction) -> BasicBlock:
        edge = (self.target_edge if prediction is Prediction.TAKEN
                else self.fallthru_edge)
        return edge.dst

    def prediction_of(self, block: BasicBlock) -> Prediction:
        """The prediction that chooses successor *block*."""
        if block is self.target_edge.dst:
            return Prediction.TAKEN
        if block is self.fallthru_edge.dst:
            return Prediction.NOT_TAKEN
        raise ValueError(f"block B{block.index} is not a successor")


@dataclass
class ProcedureAnalysis:
    """Per-procedure CFG analyses shared by all heuristics."""

    cfg: ControlFlowGraph
    dom: DominatorInfo
    postdom: DominatorInfo
    loops: LoopInfo


class ProgramAnalysis:
    """Whole-program branch classification and CFG analyses.

    This is the static side of the reproduction: build it once per
    executable, then hand it to predictors. ``branches`` maps each
    conditional branch's text address to its :class:`BranchInfo`.
    """

    def __init__(self, executable: Executable) -> None:
        self.executable = executable
        self.procedures: dict[str, ProcedureAnalysis] = {}
        self.branches: dict[int, BranchInfo] = {}
        for procedure in executable.procedures:
            cfg = build_cfg(procedure)
            dom = compute_dominators(cfg)
            postdom = compute_postdominators(cfg)
            loops = analyze_loops(cfg, dom)
            pa = ProcedureAnalysis(cfg, dom, postdom, loops)
            self.procedures[procedure.name] = pa
            self._classify_procedure(procedure, pa)

    def _classify_procedure(self, procedure: Procedure,
                            pa: ProcedureAnalysis) -> None:
        loops = pa.loops
        for block in pa.cfg.blocks:
            if not block.is_branch_block:
                continue
            inst = block.last
            target_edge = block.target_edge()
            fallthru_edge = block.fallthru_edge()
            edges = (target_edge, fallthru_edge)
            is_loop = any(loops.is_back_edge(e) or loops.is_exit_edge(e)
                          for e in edges)
            info = BranchInfo(
                address=inst.address,
                instruction=inst,
                procedure=procedure,
                block=block,
                target_edge=target_edge,
                fallthru_edge=fallthru_edge,
                branch_class=(BranchClass.LOOP if is_loop
                              else BranchClass.NON_LOOP),
                is_backward=inst.target_address <= inst.address,
            )
            if is_loop:
                info.loop_prediction = self._loop_prediction(info, loops)
            self.branches[inst.address] = info

    @staticmethod
    def _loop_prediction(info: BranchInfo, loops: LoopInfo) -> Prediction:
        """The loop predictor: back edge if present, else the non-exit edge."""
        target_back = loops.is_back_edge(info.target_edge)
        fallthru_back = loops.is_back_edge(info.fallthru_edge)
        if target_back and fallthru_back:
            # theoretically possible per the paper (never observed); the
            # paper's tie-break is the edge to the innermost loop — the one
            # whose destination sits in more loops
            t_depth = loops.loop_depth(info.target_edge.dst)
            f_depth = loops.loop_depth(info.fallthru_edge.dst)
            return (Prediction.TAKEN if t_depth >= f_depth
                    else Prediction.NOT_TAKEN)
        if target_back:
            return Prediction.TAKEN
        if fallthru_back:
            return Prediction.NOT_TAKEN
        # no back edge: predict the non-exit edge (iterate, don't exit)
        if loops.is_exit_edge(info.target_edge):
            return Prediction.NOT_TAKEN
        return Prediction.TAKEN

    def analysis_of(self, info: BranchInfo) -> ProcedureAnalysis:
        return self.procedures[info.procedure.name]

    def loop_branches(self) -> list[BranchInfo]:
        return [b for b in self.branches.values() if b.is_loop_branch]

    def non_loop_branches(self) -> list[BranchInfo]:
        return [b for b in self.branches.values() if not b.is_loop_branch]


def classify_branches(executable: Executable) -> ProgramAnalysis:
    """Build the whole-program branch classification for *executable*."""
    return ProgramAnalysis(executable)
