"""Profile-guided static prediction (the paper's comparison point).

The paper positions program-based prediction against the compile-profile-
recompile cycle: "program-based prediction is a factor of two worse, on the
average, than profile-based prediction, [but] we believe it reaches a
sufficiently high level to be useful". Fisher & Freudenberger (ASPLOS 1992)
showed profile-based prediction works across runs because branches keep
their biased direction between datasets.

:class:`ProfileGuidedPredictor` is that comparator: the perfect static
choice *on a training profile*, evaluated on a different execution.
:func:`cross_dataset_experiment` runs the full methodology: train on one
dataset, test on the others, against the program-based predictor that needs
no training run at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import BranchInfo, Prediction
from repro.core.evaluation import EvalResult, evaluate_predictor
from repro.core.predictors import (
    HeuristicPredictor, StaticPredictor, branch_random,
)
from repro.sim.profile import EdgeProfile

__all__ = ["ProfileGuidedPredictor", "CrossDatasetResult",
           "cross_dataset_experiment"]


class ProfileGuidedPredictor(StaticPredictor):
    """Static predictions from a *training* profile.

    Each branch is predicted in its more frequent training direction.
    Branches never executed during training fall back to a deterministic
    random choice (the compiler saw no evidence; same Default stream as the
    program-based predictor so the comparison is fair).
    """

    name = "profile-guided"

    def __init__(self, analysis, training_profile: EdgeProfile,
                 seed: int = 0) -> None:
        super().__init__(analysis)
        self.training_profile = training_profile
        self.seed = seed

    def _predict(self, branch: BranchInfo) -> Prediction:
        taken = self.training_profile.taken_count(branch.address)
        not_taken = self.training_profile.not_taken_count(branch.address)
        if taken == 0 and not_taken == 0:
            return branch_random(branch.address, self.seed)
        return (Prediction.TAKEN if taken >= not_taken
                else Prediction.NOT_TAKEN)


@dataclass
class CrossDatasetResult:
    """One train-on-A / test-on-B measurement."""

    train_dataset: str
    test_dataset: str
    profile_guided: EvalResult
    program_based: EvalResult
    self_profile: EvalResult  #: perfect on the test set (the floor)

    @property
    def program_to_profile_ratio(self) -> float:
        """How many times worse program-based is than profile-based, in
        misses above the floor (the paper says 'a factor of two')."""
        floor = self.self_profile.misses
        profile_excess = max(self.profile_guided.misses - floor, 0)
        program_excess = max(self.program_based.misses - floor, 0)
        if profile_excess == 0:
            return float("inf") if program_excess else 1.0
        return program_excess / profile_excess


def cross_dataset_experiment(
    analysis, profiles: dict[str, EdgeProfile],
    train: str, order=None,
) -> list[CrossDatasetResult]:
    """Train the profile-guided predictor on *train* and evaluate both it
    and the program-based predictor on every other dataset in *profiles*."""
    from repro.core.predictors import PerfectPredictor

    kwargs = {} if order is None else {"order": order}
    program_based = HeuristicPredictor(analysis, **kwargs)
    profile_guided = ProfileGuidedPredictor(analysis, profiles[train])
    results = []
    for name, profile in profiles.items():
        if name == train:
            continue
        results.append(CrossDatasetResult(
            train_dataset=train,
            test_dataset=name,
            profile_guided=evaluate_predictor(profile_guided, profile),
            program_based=evaluate_predictor(program_based, profile),
            self_profile=evaluate_predictor(
                PerfectPredictor(analysis, profile), profile),
        ))
    return results
