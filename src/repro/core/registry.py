"""Pluggable heuristic registry (the third layer of the pass framework).

The paper's seven non-loop heuristics used to live in a frozen module
dict; here they are *registered*, like compiler passes, so experiments can
ablate, reorder, and extend the set from configuration instead of code:

* :func:`register_heuristic` — decorator adding a heuristic under a name
  with a ``default_rank`` (position in the registry's default order) and
  an optional ``paper_rank`` (its slot in the paper's measured priority
  chain; ``None`` for extensions outside the measured set);
* :class:`HeuristicRegistry` — case-insensitive lookup, registry-derived
  orders (:meth:`~HeuristicRegistry.paper_order`,
  :meth:`~HeuristicRegistry.names`), and :meth:`~HeuristicRegistry.
  resolve_order`, the one-stop spec parser behind the harness's
  ``--heuristics`` / ``--order`` ablation flags.

Order/ablation spec grammar (shared by CLI and API)::

    --order paper                 # the paper's Point..Guard chain
    --order registry              # registration (default-rank) order
    --order Guard,Loop,Store,...  # explicit total or partial order
    --heuristics -guard           # drop-one ablation (drop Guard)
    --heuristics -guard,-store    # drop-many
    --heuristics Point,Call       # keep-only (base order preserved)

``HeuristicPredictor``, ``VotingPredictor``, the ordering experiments,
and Tables 3–7 all consume registry-derived orders; the historical
``HEURISTICS`` / ``PAPER_ORDER`` / ``HEURISTIC_NAMES`` module constants
remain as thin views over this registry.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "HeuristicEntry", "HeuristicRegistry", "HeuristicSpecError",
    "HEURISTIC_REGISTRY", "register_heuristic", "heuristic_names",
    "paper_order", "resolve_order",
]


class HeuristicSpecError(ReproError, ValueError):
    """Unknown heuristic name or malformed order/ablation spec.

    Also a :class:`ValueError`: the pre-registry predictors raised plain
    ``ValueError`` for unknown heuristic names, and callers that catch it
    keep working.
    """


@dataclass(frozen=True)
class HeuristicEntry:
    """One registered heuristic."""

    name: str
    fn: Callable                #: (BranchInfo, ProcedureAnalysis) -> Prediction | None
    default_rank: int           #: position in the registry's default order
    paper_rank: int | None      #: slot in the paper's measured chain
    description: str = ""

    @property
    def measured(self) -> bool:
        """Part of the paper's measured seven-heuristic set?"""
        return self.paper_rank is not None


class HeuristicRegistry:
    """Named heuristics with registry-derived orders and spec parsing."""

    def __init__(self) -> None:
        self._entries: dict[str, HeuristicEntry] = {}
        self._by_folded: dict[str, str] = {}   # casefolded -> canonical

    # -- registration ---------------------------------------------------------

    def register(self, name: str, default_rank: int,
                 paper_rank: int | None = None, description: str = ""):
        """Decorator: register the decorated heuristic under *name*."""

        def decorator(fn):
            folded = name.casefold()
            if folded in self._by_folded:
                raise ValueError(f"heuristic {name!r} already registered")
            ranks = {e.default_rank for e in self._entries.values()}
            if default_rank in ranks:
                raise ValueError(
                    f"default_rank {default_rank} already taken "
                    f"(registering {name!r})")
            if paper_rank is not None:
                taken = {e.paper_rank for e in self._entries.values()
                         if e.paper_rank is not None}
                if paper_rank in taken:
                    raise ValueError(
                        f"paper_rank {paper_rank} already taken "
                        f"(registering {name!r})")
            self._entries[name] = HeuristicEntry(
                name=name, fn=fn, default_rank=default_rank,
                paper_rank=paper_rank,
                description=description or (fn.__doc__ or "").split("\n")[0])
            self._by_folded[folded] = name
            return fn

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a heuristic (test/plugin hygiene)."""
        entry = self.get(name)
        del self._entries[entry.name]
        del self._by_folded[entry.name.casefold()]

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> HeuristicEntry:
        """Entry for *name* (case-insensitive)."""
        canonical = self._by_folded.get(str(name).casefold())
        if canonical is None:
            raise HeuristicSpecError(
                f"unknown heuristic {name!r} "
                f"(registered: {', '.join(self.all_names())})",
                phase="heuristics")
        return self._entries[canonical]

    def fn(self, name: str) -> Callable:
        return self.get(name).fn

    def __contains__(self, name: str) -> bool:
        return str(name).casefold() in self._by_folded

    # -- derived orders -------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """The *measured* heuristic names, in default-rank order (what the
        ordering experiments permute: 7! = 5040 at the paper's set)."""
        measured = [e for e in self._entries.values() if e.measured]
        return tuple(e.name for e in
                     sorted(measured, key=lambda e: e.default_rank))

    def all_names(self) -> tuple[str, ...]:
        """Every registered name (measured + extensions), by default rank."""
        return tuple(e.name for e in
                     sorted(self._entries.values(),
                            key=lambda e: e.default_rank))

    def paper_order(self) -> tuple[str, ...]:
        """The paper's final priority chain (Tables 5 and 6), from the
        registered ``paper_rank`` slots."""
        measured = [e for e in self._entries.values() if e.measured]
        return tuple(e.name for e in
                     sorted(measured, key=lambda e: e.paper_rank))

    def mapping(self) -> "Mapping[str, Callable]":
        """A live name -> heuristic view (the ``HEURISTICS`` back-compat
        shape) over the measured set."""
        return _RegistryMapping(self)

    # -- spec parsing ---------------------------------------------------------

    _NAMED_ORDERS = ("paper", "registry", "default", "appearance")

    def resolve_order(self, order: str | Sequence[str] | None = None,
                      heuristics: str | Sequence[str] | None = None,
                      ) -> tuple[str, ...]:
        """Resolve ``--order`` / ``--heuristics`` specs to a canonical
        priority tuple.

        *order* is ``None``/``"paper"`` (the paper chain), ``"registry"``
        (default-rank order), or an explicit name list (string
        comma-separated or sequence).  *heuristics* then filters it:
        ``-name`` entries drop heuristics (drop-one ablations), plain
        entries keep only the named ones; mixing both forms is an error.
        """
        base = self._resolve_base(order)
        if heuristics is None:
            return base
        entries = ([part.strip() for part in heuristics.split(",")
                    if part.strip()]
                   if isinstance(heuristics, str) else
                   [str(part) for part in heuristics])
        if not entries:
            return base
        drops = [e[1:] for e in entries if e.startswith("-")]
        keeps = [e for e in entries if not e.startswith("-")]
        if drops and keeps:
            raise HeuristicSpecError(
                "cannot mix drop (-name) and keep entries in a "
                f"--heuristics spec: {entries}", phase="heuristics")
        if drops:
            dropped = {self.get(d).name for d in drops}
            return tuple(n for n in base if n not in dropped)
        kept = {self.get(k).name for k in keeps}
        return tuple(n for n in base if n in kept)

    def _resolve_base(self, order) -> tuple[str, ...]:
        if order is None:
            return self.paper_order()
        if isinstance(order, str):
            folded = order.strip().casefold()
            if folded == "paper":
                return self.paper_order()
            if folded in ("registry", "default", "appearance"):
                return self.names()
            parts = [p.strip() for p in order.split(",") if p.strip()]
        else:
            parts = [str(p) for p in order]
        resolved = tuple(self.get(p).name for p in parts)
        if len(set(resolved)) != len(resolved):
            raise HeuristicSpecError(
                f"duplicate heuristic in order spec: {parts}",
                phase="heuristics")
        return resolved


class _RegistryMapping(Mapping):
    """Live read-only ``name -> heuristic fn`` view (measured set)."""

    def __init__(self, registry: HeuristicRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> Callable:
        entry = self._registry.get(name)
        if not entry.measured:
            raise KeyError(name)
        return entry.fn

    def __iter__(self):
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry.names())

    def __contains__(self, name) -> bool:
        try:
            return self._registry.get(name).measured
        except HeuristicSpecError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeuristicRegistryMapping({list(self)})"


#: The process-wide registry the paper's heuristics register into.
HEURISTIC_REGISTRY = HeuristicRegistry()


def register_heuristic(name: str, default_rank: int,
                       paper_rank: int | None = None,
                       description: str = ""):
    """``@register_heuristic("Guard", 4, paper_rank=6)`` — add a heuristic
    to the process-wide :data:`HEURISTIC_REGISTRY`."""
    return HEURISTIC_REGISTRY.register(name, default_rank,
                                       paper_rank=paper_rank,
                                       description=description)


def heuristic_names() -> tuple[str, ...]:
    """Measured heuristic names, default-rank order (registry-derived)."""
    return HEURISTIC_REGISTRY.names()


def paper_order() -> tuple[str, ...]:
    """The paper's priority chain, registry-derived."""
    return HEURISTIC_REGISTRY.paper_order()


def resolve_order(order: str | Sequence[str] | None = None,
                  heuristics: str | Sequence[str] | None = None,
                  ) -> tuple[str, ...]:
    """Module-level convenience over
    :meth:`HeuristicRegistry.resolve_order`."""
    return HEURISTIC_REGISTRY.resolve_order(order, heuristics)
