"""The seven non-loop branch heuristics (Section 4 of the paper).

Each heuristic is a function ``(BranchInfo, ProcedureAnalysis) -> Prediction
| None`` returning ``None`` when it does not apply. The property-based
heuristics (Loop, Call, Return, Guard, Store) follow the paper's selection
rule exactly: *if neither successor has the selection property or both have
it, no prediction is made*; otherwise the heuristic predicts either the
successor with the property or the one without, per its fixed direction.

All of them are local: they inspect only the branch's block, its two
successor blocks (plus unconditional-chain lookahead for Call/Return), and
the dominator/postdominator/natural-loop facts computed once per procedure
(lazily, through the procedure's analysis manager).

Every heuristic is registered on the pluggable
:data:`~repro.core.registry.HEURISTIC_REGISTRY` via
:func:`~repro.core.registry.register_heuristic` with its default rank
(appearance order in Section 4) and its slot in the paper's measured
priority chain; ``HEURISTIC_NAMES`` / ``HEURISTICS`` / ``PAPER_ORDER``
below are registry-derived views kept for backwards compatibility — new
code should consume the registry (see docs/passes.md).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.cfg.graph import BasicBlock
from repro.core.classify import BranchInfo, Prediction, ProcedureAnalysis
from repro.core.registry import HEURISTIC_REGISTRY, register_heuristic
from repro.isa.instructions import Instruction, Kind
from repro.isa.registers import GP, ZERO

__all__ = [
    "HEURISTIC_NAMES", "PAPER_ORDER", "HEURISTICS",
    "opcode_heuristic", "loop_heuristic", "call_heuristic",
    "return_heuristic", "guard_heuristic", "store_heuristic",
    "pointer_heuristic", "extended_guard_heuristic", "range_heuristic",
    "applicable_heuristics",
]

Heuristic = Callable[[BranchInfo, ProcedureAnalysis], "Prediction | None"]


# -- Opcode -------------------------------------------------------------------

@register_heuristic("Opcode", 0, paper_rank=2)
def opcode_heuristic(branch: BranchInfo,
                     pa: ProcedureAnalysis) -> Prediction | None:
    """Predict from the branch opcode: comparisons against zero that test for
    negative values are predicted false (programs use negative integers for
    errors), non-negative tests true, and floating-point *equality* tests
    false (two computed doubles are rarely equal)."""
    inst = branch.instruction
    name = inst.op.name
    if name in ("bltz", "blez"):
        return Prediction.NOT_TAKEN
    if name in ("bgtz", "bgez"):
        return Prediction.TAKEN
    if name in ("bc1t", "bc1f"):
        cmp_inst = _fp_compare_feeding(branch)
        if cmp_inst is not None and cmp_inst.op.name == "c.eq.d":
            # "equal" is the unlikely outcome
            return (Prediction.NOT_TAKEN if name == "bc1t"
                    else Prediction.TAKEN)
    return None


def _fp_compare_feeding(branch: BranchInfo) -> Instruction | None:
    """The most recent FP compare before the branch in its block."""
    for inst in reversed(branch.block.instructions[:-1]):
        if inst.op.kind is Kind.FP_CMP:
            return inst
    return None


# -- property-based heuristics -----------------------------------------------

def _select(branch: BranchInfo, pa: ProcedureAnalysis,
            has_property: Callable[[BasicBlock], bool],
            predict_with_property: bool) -> Prediction | None:
    """The paper's selection rule: apply iff exactly one successor has the
    property; predict the one with it (or without it)."""
    target = branch.target_edge.dst
    fallthru = branch.fallthru_edge.dst
    t = has_property(target)
    f = has_property(fallthru)
    if t == f:
        return None
    has_it = target if t else fallthru
    chosen = has_it if predict_with_property else (
        fallthru if t else target)
    return branch.prediction_of(chosen)


@register_heuristic("Loop", 1, paper_rank=5)
def loop_heuristic(branch: BranchInfo,
                   pa: ProcedureAnalysis) -> Prediction | None:
    """The successor does not postdominate the branch and is a loop head or
    a loop preheader -> predict that successor (loops execute, they are not
    avoided; compilers replicate while-loop tests into a guarding if)."""
    loops = pa.loops
    postdom = pa.postdom
    block = branch.block

    def prop(succ: BasicBlock) -> bool:
        if postdom.dominates(succ, block):
            return False
        return loops.is_loop_head(succ) or loops.is_preheader(succ)

    return _select(branch, pa, prop, predict_with_property=True)


_CHAIN_LIMIT = 8


def _unconditional_chain(block: BasicBlock) -> list[BasicBlock]:
    """*block* followed by the blocks it unconditionally passes control to."""
    chain = [block]
    seen = {id(block)}
    current = block
    while len(chain) < _CHAIN_LIMIT and len(current.out_edges) == 1:
        current = current.out_edges[0].dst
        if id(current) in seen:
            break
        seen.add(id(current))
        chain.append(current)
    return chain


@register_heuristic("Call", 2, paper_rank=1)
def call_heuristic(branch: BranchInfo,
                   pa: ProcedureAnalysis) -> Prediction | None:
    """The successor contains a call (or unconditionally reaches a block with
    a call that it dominates) and does not postdominate the branch ->
    predict the *other* successor: conditional calls are dominated by
    error/exception handling (the paper's printing example)."""
    postdom = pa.postdom
    dom = pa.dom
    block = branch.block

    def prop(succ: BasicBlock) -> bool:
        if postdom.dominates(succ, block):
            return False
        if succ.contains_call():
            return True
        for later in _unconditional_chain(succ)[1:]:
            if later.contains_call() and dom.dominates(succ, later):
                return True
        return False

    return _select(branch, pa, prop, predict_with_property=False)


@register_heuristic("Return", 3, paper_rank=3)
def return_heuristic(branch: BranchInfo,
                     pa: ProcedureAnalysis) -> Prediction | None:
    """The successor contains a return (or unconditionally reaches one) ->
    predict the other successor: returns are recursion base cases and
    error/boundary exits."""

    def prop(succ: BasicBlock) -> bool:
        return any(b.contains_return() for b in _unconditional_chain(succ))

    return _select(branch, pa, prop, predict_with_property=False)


@register_heuristic("Guard", 4, paper_rank=6)
def guard_heuristic(branch: BranchInfo,
                    pa: ProcedureAnalysis) -> Prediction | None:
    """A register operand of the branch is used in the successor before
    being defined, and the successor does not postdominate the branch ->
    predict that successor: branches guard uses of a value, and the common
    case is the value flowing to its use (e.g. non-null pointers)."""
    postdom = pa.postdom
    block = branch.block
    int_regs, fp_regs = _branch_operands(branch)
    if not int_regs and not fp_regs:
        return None

    def prop(succ: BasicBlock) -> bool:
        if postdom.dominates(succ, block):
            return False
        return _uses_before_def(succ, int_regs, fp_regs)

    return _select(branch, pa, prop, predict_with_property=True)


def _branch_operands(branch: BranchInfo) -> tuple[set[int], set[int]]:
    """Registers the branch tests: integer operands of the branch itself, or
    the FP operands of the compare feeding a bc1t/bc1f."""
    inst = branch.instruction
    if inst.op.kind is Kind.FP_BRANCH:
        cmp_inst = _fp_compare_feeding(branch)
        if cmp_inst is None:
            return set(), set()
        return set(), {r for r in cmp_inst.fp_uses()}
    return {r for r in inst.int_uses() if r != ZERO}, set()


def _uses_before_def(block: BasicBlock, int_regs: set[int],
                     fp_regs: set[int]) -> bool:
    """True if any watched register is read in *block* before being written.
    Calls end the analysis (no interprocedural use/def info, per the paper)."""
    pending_int = set(int_regs)
    pending_fp = set(fp_regs)
    for inst in block.instructions:
        if pending_int.intersection(inst.int_uses()):
            return True
        if pending_fp.intersection(inst.fp_uses()):
            return True
        if inst.is_call:
            return False
        pending_int.difference_update(inst.int_defs())
        pending_fp.difference_update(inst.fp_defs())
        if not pending_int and not pending_fp:
            return False
    return False


@register_heuristic("Store", 5, paper_rank=4)
def store_heuristic(branch: BranchInfo,
                    pa: ProcedureAnalysis) -> Prediction | None:
    """The successor contains a store and does not postdominate the branch ->
    predict the other successor (tried "more out of curiosity": poor on
    integer codes, good on FP codes — it fixes the tomcatv max-update
    branch the Guard heuristic gets exactly wrong)."""
    postdom = pa.postdom
    block = branch.block

    def prop(succ: BasicBlock) -> bool:
        if postdom.dominates(succ, block):
            return False
        return succ.contains_store()

    return _select(branch, pa, prop, predict_with_property=False)


@register_heuristic("Point", 6, paper_rank=0)
def pointer_heuristic(branch: BranchInfo, pa: ProcedureAnalysis,
                      exclude_gp: bool = True,
                      exclude_calls: bool = True) -> Prediction | None:
    """Pointer comparisons: ``load rM; beq rM, $zero`` (null test) or
    ``load rM; load rN; beq rM, rN`` (pointer equality) within the branch's
    block. Predict the comparison false: pointers are rarely null and two
    pointers are rarely equal. Loads off ``$gp`` disqualify the branch, as
    does a call between the load and the branch.

    *exclude_gp* / *exclude_calls* switch off the paper's two restrictions
    (used by the ablation benchmarks only).
    """
    inst = branch.instruction
    if inst.op.name not in ("beq", "bne"):
        return None
    operands = [r for r in (inst.rs, inst.rt) if r != ZERO]
    if not operands:
        return None
    block = branch.block
    # scan the block up to the branch: last definition of each register,
    # whether it was a pointer-style load, and whether a call intervened
    last_load: dict[int, Instruction | None] = {}
    for i in block.instructions[:-1]:
        if i.is_call and exclude_calls:
            # a call invalidates everything loaded so far
            last_load = {reg: None for reg in last_load}
            continue
        defs = i.int_defs()
        for reg in defs:
            if i.op.name == "lw" and (i.rs != GP or not exclude_gp):
                last_load[reg] = i
            else:
                last_load[reg] = None
    for reg in operands:
        if last_load.get(reg) is None:
            return None
    # matched: predict "not equal" — fall-thru for beq, taken for bne
    return Prediction.NOT_TAKEN if inst.op.name == "beq" else Prediction.TAKEN


@register_heuristic("ExtGuard", 7, description="extended Guard (Section "
                    "4.4 generalization; outside the measured set)")
def extended_guard_heuristic(branch: BranchInfo, pa: ProcedureAnalysis,
                             depth: int = 3) -> Prediction | None:
    """The paper's proposed generalization of Guard (Section 4.4): "look
    farther away from the branch to see if the branch value is reused by an
    instruction whose execution is controlled by the branch".

    Like :func:`guard_heuristic`, but the use-before-def search extends
    beyond the immediate successor into blocks *dominated by that
    successor* (execution controlled by taking that side), up to *depth*
    blocks per side. Calls still terminate a path, and the one-successor
    selection rule is unchanged. Not part of the paper's measured registry
    — used by the extension/ablation experiments.
    """
    postdom = pa.postdom
    dom = pa.dom
    block = branch.block
    int_regs, fp_regs = _branch_operands(branch)
    if not int_regs and not fp_regs:
        return None

    def prop(succ: BasicBlock) -> bool:
        if postdom.dominates(succ, block):
            return False
        # BFS through succ-dominated blocks, tracking not-yet-killed regs
        work = [(succ, frozenset(int_regs), frozenset(fp_regs))]
        visited: set[int] = set()
        explored = 0
        while work and explored < depth:
            current, pending_int, pending_fp = work.pop(0)
            if id(current) in visited:
                continue
            visited.add(id(current))
            explored += 1
            ints = set(pending_int)
            fps = set(pending_fp)
            killed = False
            for inst in current.instructions:
                if ints.intersection(inst.int_uses()) or \
                        fps.intersection(inst.fp_uses()):
                    return True
                if inst.is_call:
                    killed = True
                    break
                ints.difference_update(inst.int_defs())
                fps.difference_update(inst.fp_defs())
                if not ints and not fps:
                    killed = True
                    break
            if killed:
                continue
            for edge in current.out_edges:
                nxt = edge.dst
                if nxt is not succ and dom.dominates(succ, nxt):
                    work.append((nxt, frozenset(ints), frozenset(fps)))
        return False

    return _select(branch, pa, prop, predict_with_property=True)


@register_heuristic("Range", 8, description="semantic always/never-taken "
                    "facts from SCCP + interval range analysis (outside "
                    "the measured set)")
def range_heuristic(branch: BranchInfo,
                    pa: ProcedureAnalysis) -> Prediction | None:
    """Predict from compiler-exported static branch evidence.

    When the executable was linked with ``attach_evidence=True`` (see
    :func:`repro.bcc.compile_and_link`), every conditional branch that
    SCCP or the interval range analysis *proved* always- or never-taken
    carries its machine direction in ``executable.branch_evidence``.
    This heuristic simply reads that fact — it is the semantic
    counterpart of the paper's local syntactic heuristics, measuring how
    much of the perfect-static gap whole-function analysis closes (the
    harness's range-evidence table).  Like ExtGuard it is registered
    outside the measured set, so the paper's 7-heuristic experiments are
    unaffected.

    The evidence is duck-typed (``taken_at(address) -> bool | None``) so
    :mod:`repro.core` keeps no import edge onto :mod:`repro.analysis`.
    """
    executable = branch.procedure.executable
    evidence = getattr(executable, "branch_evidence", None)
    if evidence is None:
        return None
    taken = evidence.taken_at(branch.address)
    if taken is None:
        return None
    return Prediction.TAKEN if taken else Prediction.NOT_TAKEN


#: Measured heuristic names in Section-4 appearance order — a registry-
#: derived view kept for backwards compatibility.
HEURISTIC_NAMES: tuple[str, ...] = HEURISTIC_REGISTRY.names()

#: Live ``name -> heuristic`` mapping over the measured set.  Historically
#: a frozen dict; now a read-only view of :data:`HEURISTIC_REGISTRY` so
#: registered extensions and test-time unregistration stay coherent.
HEURISTICS: "Mapping[str, Heuristic]" = HEURISTIC_REGISTRY.mapping()

#: The priority order used for the paper's final results (Tables 5 and 6),
#: derived from the registered ``paper_rank`` slots.
PAPER_ORDER: tuple[str, ...] = HEURISTIC_REGISTRY.paper_order()


def applicable_heuristics(branch: BranchInfo, pa: ProcedureAnalysis,
                          names: "Sequence[str] | None" = None,
                          ) -> dict[str, Prediction]:
    """Evaluate heuristics on *branch*; returns name -> prediction for
    those that apply. This is the per-branch table the ordering experiments
    (Section 5) are computed from.  *names* restricts (and canonicalises)
    the evaluated set; the default is the registry's measured set."""
    out: dict[str, Prediction] = {}
    if names is None:
        names = HEURISTIC_REGISTRY.names()
    for name in names:
        entry = HEURISTIC_REGISTRY.get(name)
        prediction = entry.fn(branch, pa)
        if prediction is not None:
            out[entry.name] = prediction
    return out
