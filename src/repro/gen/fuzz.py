"""Fuzz gates: every generated program must clear the whole stack.

:func:`check_program` runs one program through four independent gates —
any failure is a generator bug or a compiler/analysis bug, and either
way it must fail loudly with the seed/index needed to reproduce it:

1. **lint** — zero non-suppressed findings from the BLC linter;
2. **verify** — compiles at -O0 and -O1 with the IR verifier enabled
   after generation and after every pass that changed a function;
3. **differential run** — every dataset terminates within its paired
   fuel budget at both optimization levels, with byte-identical output
   (the generated corpus doubles as a compiler differential substrate);
4. **scev** — every SCEV-predicted trip count is consistent with the
   observed back-edge profile, via the same
   :func:`repro.harness.scev_report.trip_checks` library the harness's
   ``--scev-table`` uses (the program is registered as a benchmark so
   the checker resolves it by name; zero mismatches allowed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.suite import registered as _registered_benchmarks
from repro.gen.grammar import GenProgram

__all__ = ["CheckFailure", "check_program", "check_corpus"]


@dataclass(frozen=True)
class CheckFailure:
    """One failed gate, with enough context to reproduce."""

    program: str
    stage: str      #: "lint" | "verify" | "run" | "scev"
    detail: str

    def format(self) -> str:
        return f"{self.program} [{self.stage}]: {self.detail}"


def check_program(gp: GenProgram, scev: bool = True,
                  engine: str | None = None) -> list[CheckFailure]:
    """All gate failures for one generated program (empty = clean)."""
    from repro.analysis.lint import lint_source
    from repro.bcc import compile_and_link
    from repro.sim import Machine

    failures: list[CheckFailure] = []
    filename = f"{gp.name}.blc"

    diagnostics = lint_source(gp.source, filename)
    for diag in diagnostics:
        failures.append(CheckFailure(gp.name, "lint", diag.format()))

    executables = {}
    for optimize in (False, True):
        level = "-O1" if optimize else "-O0"
        try:
            executables[optimize] = compile_and_link(
                gp.source, filename=filename, optimize=optimize,
                verify_each=True)
        except Exception as exc:  # CompileError / VerifierError alike
            failures.append(CheckFailure(
                gp.name, "verify", f"{level}: {exc}"))
    if len(executables) < 2:
        return failures

    for ds in gp.datasets:
        outputs = {}
        for optimize, executable in sorted(executables.items()):
            level = "-O1" if optimize else "-O0"
            machine = Machine(executable, inputs=list(ds.inputs),
                              max_instructions=ds.fuel, engine=engine)
            try:
                machine.run()
            except Exception as exc:
                failures.append(CheckFailure(
                    gp.name, "run",
                    f"{level} dataset {ds.name} (fuel {ds.fuel}): {exc}"))
                continue
            outputs[level] = machine.output
        if len(outputs) == 2 and outputs["-O0"] != outputs["-O1"]:
            failures.append(CheckFailure(
                gp.name, "run",
                f"dataset {ds.name}: -O0 and -O1 outputs differ"))

    if scev and not failures:
        from repro.harness.scev_report import trip_checks
        with _registered_benchmarks([gp.benchmark()], replace=True):
            for ds in gp.datasets:
                # fold-free builds run more instructions than the
                # optimized fuel pricing assumed; scale the budget
                checks = trip_checks(gp.name,
                                     max_instructions=ds.fuel * 4,
                                     dataset=ds.name)
                for check in checks:
                    if not check.ok:
                        failures.append(CheckFailure(
                            gp.name, "scev",
                            f"dataset {ds.name}: {check.function}/"
                            f"{check.test_block} predicted "
                            f"{check.trip.min_trips}"
                            f"..{check.trip.max_trips} trips, observed "
                            f"{check.continues} continues / "
                            f"{check.exits} exits"))
    return failures


def check_corpus(programs: list[GenProgram], scev: bool = True,
                 engine: str | None = None) -> list[CheckFailure]:
    """Gate failures over a whole corpus, in program order."""
    failures: list[CheckFailure] = []
    for gp in programs:
        failures.extend(check_program(gp, scev=scev, engine=engine))
    return failures
