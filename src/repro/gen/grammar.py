"""Seeded, grammar-driven BLC program generation.

Each generated program is a deterministic function of ``(seed, index,
knobs)``: a :class:`random.Random` seeded with the string
``"repro.gen/v1/<seed>/<index>"`` (string seeding hashes with SHA-512,
so the stream is independent of ``PYTHONHASHSEED``) drives every choice,
and no other source of entropy exists.  Same seed means byte-identical
source, datasets, and fuel budgets — the property the corpus regression
tests pin.

The grammar is a *template catalog*, not free-form expression synthesis:
every program is a fixed scaffold (global ``DATA``/``FDATA`` arrays, a
deterministic LCG fill, clamped ``read_int`` inputs, a bounded driver
loop) plus N instantiated construct templates, one BLC function (or
function group) per construct.  That shape buys three guarantees that
random expression soup cannot:

* **ground-truth labels** — each branch lives in the function its
  template emitted, so mapping branch -> containing procedure ->
  template label is *exact*, surviving every compiler transform that
  preserves procedure boundaries.  Characterization clusters are known,
  not inferred.
* **termination within fuel** — every loop has a structural termination
  argument (literal trip counts, clamped non-negative parameter bounds,
  halving/decrementing induction, bounded recursion depth), so each
  template reports a conservative per-call instruction bound and the
  generator prices a fuel budget per dataset that the program provably
  stays under.
* **lint/verifier cleanliness** — templates are written against the
  linter's rules (always-initialized locals, conditions that reference
  variables, no FP equality, no straight-line dead stores, no constant
  zero-trip loops), so every emitted program lints with zero findings
  and verifies under ``--verify-each`` at every pass boundary.

The knobs span the workload axes of the related work (Vikas/Gratz/
Jiménez's characterization axes; Lin & Tarsa's hard-branch taxonomy):
loop nest depth and trip-count shape (exact / interval / data-dependent,
exercising the SCEV analysis), branch bias, pointer/guard density,
call-graph depth, and input-dependent vs static control flow.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.bench.suite import Benchmark, Dataset

__all__ = [
    "GEN_SCHEMA", "TEMPLATE_LABELS", "GenKnobs", "GenDataset",
    "GenProgram", "generate_program", "program_name",
]

#: versioned seed-stream namespace: bump on ANY grammar change, or old
#: seeds silently stop reproducing committed corpora
GEN_SCHEMA = "repro.gen/v1"

#: upper bound on any driver-supplied construct argument (inputs clamp to
#: ``% 24``, reps to 1..4, literals to <= 20 — see ``_ARG_FORMS``)
_ARG_MAX = 32

#: every template key == the characterization cluster label it emits
TEMPLATE_LABELS = (
    "loop.exact", "loop.interval", "loop.data",
    "branch.bias", "branch.balanced",
    "guard.pointer", "call.rec", "call.chain",
    "fp.compare", "store.guard", "mixed",
)

_LOOP_KEYS = ("loop.exact", "loop.interval", "loop.data")
_CALL_KEYS = ("call.rec", "call.chain")
_BODY_KEYS = ("branch.bias", "branch.balanced", "guard.pointer",
              "fp.compare", "store.guard", "mixed")


@dataclass(frozen=True)
class GenKnobs:
    """Tunable generation axes (all defaults are corpus defaults).

    ``constructs`` is the number of template instantiations per program;
    ``max_loops``/``max_calls`` bound how many of them come from the
    loop/call families; ``branch_bias`` sets the taken-probability of
    biased branches; ``pointer_density`` weights pointer-guard templates
    in the catalog draw; ``input_dependence`` is the probability a
    construct's driver argument derives from ``read_int`` input rather
    than static literals; ``templates`` restricts the catalog.
    """

    constructs: int = 8
    max_loop_depth: int = 3
    max_loops: int = 3
    max_calls: int = 2
    branch_bias: float = 0.85
    pointer_density: float = 0.5
    input_dependence: float = 0.5
    templates: tuple[str, ...] | None = None

    def catalog(self) -> tuple[str, ...]:
        """The template keys this knob set draws from."""
        if self.templates is None:
            return TEMPLATE_LABELS
        unknown = sorted(set(self.templates) - set(TEMPLATE_LABELS))
        if unknown:
            raise ValueError(f"unknown template keys: {', '.join(unknown)}")
        return tuple(t for t in TEMPLATE_LABELS if t in self.templates)


@dataclass(frozen=True)
class GenDataset:
    """One input vector plus the fuel budget the generator priced for it.

    ``fuel`` is a conservative structural bound (4x the estimated
    worst-case instruction count plus a fixed margin), *not* a measured
    count — the pairing guarantees termination within fuel, and differs
    per dataset because the first input drives the driver's rep count.
    """

    name: str
    inputs: tuple[int, ...]
    fuel: int

    def as_dataset(self) -> Dataset:
        return Dataset(self.name, self.inputs)


@dataclass(frozen=True)
class GenProgram:
    """A generated program with its ground truth attached."""

    name: str
    seed: int
    index: int
    source: str
    datasets: tuple[GenDataset, ...]
    #: (procedure name, cluster label) for every generated procedure
    labels: tuple[tuple[str, str], ...]
    #: template keys in instantiation order (repeats allowed)
    templates: tuple[str, ...]
    _label_map: dict = field(default=None, repr=False, compare=False)

    def label_of(self, procedure: str) -> str:
        """Cluster label for *procedure*: a template label for generated
        construct functions, ``"driver"`` for main, ``"runtime"`` for
        the linked-in library procedures."""
        mapping = object.__getattribute__(self, "_label_map")
        if mapping is None:
            mapping = dict(self.labels)
            mapping["main"] = "driver"
            object.__setattr__(self, "_label_map", mapping)
        return mapping.get(procedure, "runtime")

    def benchmark(self) -> Benchmark:
        """Wrap as a registrable suite :class:`Benchmark` (inline source)."""
        return Benchmark(
            name=self.name, group="gen",
            description=f"generated corpus program "
                        f"(seed {self.seed}, index {self.index})",
            paper_analogue="repro.gen corpus",
            datasets=tuple(ds.as_dataset() for ds in self.datasets),
            source_text=self.source)

    def sha256(self) -> str:
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()


def program_name(seed: int, index: int) -> str:
    """Canonical benchmark name (``gen_`` prefix keeps the suite's
    namespace collision-free)."""
    return f"gen_s{seed}_{index:04d}"


# ---------------------------------------------------------------------------
# construct templates
#
# Each builder returns a _Construct: BLC function text, the entry function
# the driver calls (always ``int entry(int)``), the procedures it defined
# (all carrying the template's label), and a conservative per-call
# instruction bound at _ARG_MAX.  Safety rules every template obeys:
#
# * array subscripts combine only loop variables, literals, and known
#   non-negative values, always reduced ``% 64`` / ``% 32``;
# * every local is initialized at declaration (L001) and read before any
#   straight-line reassignment (L004);
# * conditions always reference a variable or array element (L003) and
#   never compare doubles with == or != (L005);
# * loop bounds are literals >= 2 or parameters (L006), and every loop
#   strictly decreases a termination measure.


@dataclass(frozen=True)
class _Construct:
    key: str
    entry: str
    procs: tuple[str, ...]
    lines: tuple[str, ...]
    cost: int               #: per-call instruction upper bound at _ARG_MAX


def _loop_exact(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Literal-bound counted nest: SCEV proves exact trip counts."""
    name = f"gx{uid}_loop_exact"
    depth = 1 + rng.randrange(max(1, knobs.max_loop_depth))
    trips = [2 + rng.randrange(7) for _ in range(depth)]
    lines = [f"int {name}(int n) {{", "    int acc = n;"]
    indent = "    "
    vars_in_scope = []
    for level, trip in enumerate(trips):
        v = f"i{level}"
        lines.append(f"{indent}for (int {v} = 0; {v} < {trip}; {v}++) {{")
        indent += "    "
        vars_in_scope.append(v)
    idx = " + ".join(vars_in_scope)
    lines.append(f"{indent}acc = acc + DATA[({idx}) % 64];")
    for _ in trips:
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines += ["    return acc;", "}"]
    iters = 1
    for trip in trips:
        iters *= trip
    return _Construct("loop.exact", name, (name,), tuple(lines),
                      cost=iters * 60 + 200)


def _loop_interval(rng: random.Random, uid: int,
                   knobs: GenKnobs) -> _Construct:
    """Parameter-bound counted loop: SCEV sees an interval trip count
    through the interprocedural range of the call-site arguments."""
    name = f"gx{uid}_loop_interval"
    stride = rng.choice((1, 1, 2, 3))
    lines = [
        f"int {name}(int n) {{",
        "    int acc = 1;",
        f"    for (int i = 0; i < n; i = i + {stride}) {{",
        "        acc = acc + (i ^ DATA[i % 64]);",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("loop.interval", name, (name,), tuple(lines),
                      cost=(_ARG_MAX // stride + 2) * 60 + 200)


def _loop_data(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Data-dependent trip count: halving induction, data-stepped
    decrement, or a sentinel scan with break — shapes SCEV cannot count."""
    name = f"gx{uid}_loop_data"
    variant = rng.randrange(3)
    if variant == 0:
        start = 2 + rng.randrange(30)
        lines = [
            f"int {name}(int n) {{",
            f"    int x = n + {start};",
            "    int acc = 0;",
            "    while (x > 1) {",
            "        x = x / 2;",
            "        acc = acc + x;",
            "    }",
            "    return acc;",
            "}",
        ]
        cost = 8 * 50 + 200
    elif variant == 1:
        lines = [
            f"int {name}(int n) {{",
            "    int x = n + 9;",
            "    int acc = 0;",
            "    while (x > 0) {",
            "        acc = acc + DATA[x % 64];",
            "        x = x - 1 - DATA[x % 64] % 3;",
            "    }",
            "    return acc;",
            "}",
        ]
        cost = (_ARG_MAX + 10) * 70 + 200
    else:
        sentinel = 88 + rng.randrange(8)
        lines = [
            f"int {name}(int n) {{",
            "    int acc = 0;",
            "    for (int i = 0; i < 64; i++) {",
            f"        if (DATA[(i + n) % 64] > {sentinel}) {{",
            "            break;",
            "        }",
            "        acc = acc + DATA[i];",
            "    }",
            "    return acc;",
            "}",
        ]
        cost = 64 * 70 + 200
    return _Construct("loop.data", name, (name,), tuple(lines), cost=cost)


def _branch_bias(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """A branch biased to the knob's taken probability (DATA is uniform
    in [0, 97), so ``< t`` is taken with probability ~t/97)."""
    name = f"gx{uid}_branch_bias"
    threshold = min(92, max(5, int(knobs.branch_bias * 97)))
    trip = 32 + 8 * rng.randrange(3)
    lines = [
        f"int {name}(int n) {{",
        "    int acc = 0;",
        f"    for (int i = 0; i < {trip}; i++) {{",
        f"        if (DATA[(i + n) % 64] < {threshold}) {{",
        "            acc = acc + 3;",
        "        } else {",
        "            acc = acc - 1;",
        "        }",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("branch.bias", name, (name,), tuple(lines),
                      cost=trip * 60 + 200)


def _branch_balanced(rng: random.Random, uid: int,
                     knobs: GenKnobs) -> _Construct:
    """~50/50 parity branch on LCG-filled data: the hard-to-predict
    cluster no static heuristic should beat a coin flip on."""
    name = f"gx{uid}_branch_balanced"
    mult = rng.choice((3, 5, 7))
    trip = 32 + 8 * rng.randrange(3)
    lines = [
        f"int {name}(int n) {{",
        "    int acc = n;",
        f"    for (int i = 0; i < {trip}; i++) {{",
        f"        if ((DATA[(i * {mult} + n) % 64] & 1) == 1) {{",
        "            acc = acc + i;",
        "        } else {",
        "            acc = acc - 2;",
        "        }",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("branch.balanced", name, (name,), tuple(lines),
                      cost=trip * 60 + 200)


def _guard_pointer(rng: random.Random, uid: int,
                   knobs: GenKnobs) -> _Construct:
    """Conditionally-set pointer + null-guarded deref: the Point
    heuristic's home turf."""
    name = f"gx{uid}_guard_pointer"
    threshold = 30 + rng.randrange(40)
    lines = [
        f"int {name}(int n) {{",
        "    int acc = 0;",
        "    for (int i = 0; i < 32; i++) {",
        "        int *p = 0;",
        f"        if (DATA[(i + n) % 64] > {threshold}) {{",
        "            p = &DATA[(i * 5) % 64];",
        "        }",
        "        if (p != 0) {",
        "            acc = acc + *p;",
        "        } else {",
        "            acc = acc + 1;",
        "        }",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("guard.pointer", name, (name,), tuple(lines),
                      cost=32 * 80 + 200)


def _call_rec(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Mutually recursive pair (exercising the prototype-free program-wide
    signature collection) with guarding base cases."""
    a = f"gx{uid}_call_rec"
    b = f"gx{uid}_call_rec_h"
    dec = rng.choice((1, 2))
    lines = [
        f"int {a}(int x) {{",
        "    if (x < 2) {",
        "        return 1;",
        "    }",
        f"    return {b}(x - 1) + x;",
        "}",
        f"int {b}(int x) {{",
        "    if (x < 2) {",
        "        return 2;",
        "    }",
        f"    return {a}(x - {dec}) + DATA[x % 64];",
        "}",
    ]
    return _Construct("call.rec", a, (a, b), tuple(lines),
                      cost=(_ARG_MAX + 4) * 90 + 200)


def _call_chain(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """A call ladder with early returns (Call + Return heuristics)."""
    top = f"gx{uid}_call_chain"
    mid = f"gx{uid}_call_chain_m"
    leaf = f"gx{uid}_call_chain_l"
    mod = rng.choice((3, 4, 5))
    lines = [
        f"int {top}(int x) {{",
        f"    int acc = {mid}(x);",
        "    for (int i = 0; i < 8; i++) {",
        f"        acc = acc + {mid}(x + i);",
        "    }",
        "    return acc;",
        "}",
        f"int {mid}(int x) {{",
        f"    if (x % {mod} == 0) {{",
        f"        return {leaf}(x + 1) * 2;",
        "    }",
        f"    return {leaf}(x) - 1;",
        "}",
        f"int {leaf}(int x) {{",
        f"    if (x % 5 == 0) {{",
        "        return x + 7;",
        "    }",
        "    return DATA[i_abs(x) % 64] + 1;",
        "}",
    ]
    return _Construct("call.chain", top, (top, mid, leaf), tuple(lines),
                      cost=9 * 220 + 400)


def _fp_compare(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Double comparisons over FDATA (Opcode heuristic; no FP equality,
    per lint L005)."""
    name = f"gx{uid}_fp_compare"
    t1 = rng.randrange(4, 44) / 2.0
    t2 = t1 + rng.randrange(2, 12) / 2.0
    lines = [
        f"int {name}(int n) {{",
        "    int acc = 0;",
        "    for (int i = 0; i < 32; i++) {",
        f"        if (FDATA[(i + n) % 32] > {t1:.1f}) {{",
        "            acc = acc + 2;",
        "        }",
        f"        if (FDATA[i] < {t2:.1f}) {{",
        "            acc = acc + 1;",
        "        }",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("fp.compare", name, (name,), tuple(lines),
                      cost=32 * 90 + 200)


def _store_guard(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Branch-guarded stores (Store heuristic); stored values stay inside
    DATA's [0, 97) invariant so other constructs' bias math holds."""
    name = f"gx{uid}_store_guard"
    threshold = 40 + rng.randrange(30)
    mult = rng.choice((7, 11, 13))
    lines = [
        f"int {name}(int n) {{",
        "    int acc = 0;",
        "    for (int i = 0; i < 40; i++) {",
        f"        if (DATA[(i + n) % 64] > {threshold}) {{",
        f"            DATA[(i * {mult} + 1) % 64] = (acc + i) % 97;",
        "            acc = acc + 1;",
        "        } else {",
        "            acc = acc + DATA[i % 64] % 5;",
        "        }",
        "    }",
        "    return acc;",
        "}",
    ]
    return _Construct("store.guard", name, (name,), tuple(lines),
                      cost=40 * 80 + 200)


def _mixed(rng: random.Random, uid: int, knobs: GenKnobs) -> _Construct:
    """Interval loop + data guard + helper call in one construct."""
    name = f"gx{uid}_mixed"
    helper = f"gx{uid}_mixed_h"
    threshold = 35 + rng.randrange(30)
    lines = [
        f"int {name}(int n) {{",
        "    int acc = i_max(n, 3);",
        "    for (int i = 0; i < n + 6; i++) {",
        "        int v = DATA[(i + n) % 64];",
        f"        if (v > {threshold}) {{",
        f"            acc = acc + {helper}(v % 9);",
        "        } else {",
        "            acc = acc - v % 7;",
        "        }",
        "    }",
        "    return acc;",
        "}",
        f"int {helper}(int x) {{",
        "    int s = 0;",
        "    while (x > 0) {",
        "        s = s + x;",
        "        x = x - 1;",
        "    }",
        "    return s;",
        "}",
    ]
    return _Construct("mixed", name, (name, helper), tuple(lines),
                      cost=(_ARG_MAX + 6) * (80 + 9 * 40) + 400)


_TEMPLATES = {
    "loop.exact": _loop_exact,
    "loop.interval": _loop_interval,
    "loop.data": _loop_data,
    "branch.bias": _branch_bias,
    "branch.balanced": _branch_balanced,
    "guard.pointer": _guard_pointer,
    "call.rec": _call_rec,
    "call.chain": _call_chain,
    "fp.compare": _fp_compare,
    "store.guard": _store_guard,
    "mixed": _mixed,
}
assert tuple(_TEMPLATES) == TEMPLATE_LABELS


# ---------------------------------------------------------------------------
# program assembly


#: driver argument forms: (input-dependent?, expression template).  All
#: evaluate non-negative and <= _ARG_MAX - 1 (inputs clamp % 24, r <= 3).
_ARG_FORMS_INPUT = (
    "in0", "in1", "in2", "(in0 + r) % 24", "(in1 + in2) % 24",
)
_ARG_FORMS_STATIC = (
    "{lit}", "r + {lit_small}", "(r * 3 + {lit_small}) % 24",
)


def _pick_templates(rng: random.Random, knobs: GenKnobs) -> list[str]:
    """Draw the construct list: >=1 loop, up to max_loops/max_calls from
    those families, pointer-density-weighted body fill."""
    catalog = knobs.catalog()
    loops = [k for k in catalog if k in _LOOP_KEYS]
    calls = [k for k in catalog if k in _CALL_KEYS]
    bodies = [k for k in catalog if k in _BODY_KEYS]
    picks: list[str] = []
    if loops:
        for _ in range(1 + rng.randrange(max(1, knobs.max_loops))):
            picks.append(rng.choice(loops))
    if calls and knobs.max_calls > 0:
        for _ in range(rng.randrange(knobs.max_calls + 1)):
            picks.append(rng.choice(calls))
    fill = bodies or loops or calls or list(catalog)
    while len(picks) < max(1, knobs.constructs):
        key = rng.choice(fill)
        if key == "guard.pointer" and rng.random() > knobs.pointer_density:
            key = rng.choice([k for k in fill if k != "guard.pointer"]
                             or fill)
        picks.append(key)
    picks = picks[:max(1, knobs.constructs)]
    rng.shuffle(picks)
    return picks


def _driver_arg(rng: random.Random, knobs: GenKnobs) -> str:
    if rng.random() < knobs.input_dependence:
        return rng.choice(_ARG_FORMS_INPUT)
    form = rng.choice(_ARG_FORMS_STATIC)
    return form.format(lit=2 + rng.randrange(19),
                       lit_small=1 + rng.randrange(8))


def _dataset(rng: random.Random, name: str, per_rep_cost: int,
             n_constructs: int) -> GenDataset:
    """Price a fuel budget for one random input vector.

    The first input drives the driver's rep count (1..4), so cost —
    and therefore fuel — is dataset-dependent by construction; that
    pairing is what the ShardJob round-trip regression exercises.
    """
    inputs = tuple(rng.randrange(0, 97) for _ in range(3))
    reps = 1 + (abs(inputs[0]) % 24) % 4
    estimate = 6000 + reps * (per_rep_cost + 80 * n_constructs)
    return GenDataset(name, inputs, fuel=4 * estimate + 250_000)


def generate_program(seed: int, index: int = 0,
                     knobs: GenKnobs | None = None) -> GenProgram:
    """Generate one program deterministically from ``(seed, index, knobs)``."""
    knobs = knobs or GenKnobs()
    rng = random.Random(f"{GEN_SCHEMA}/{seed}/{index}")
    picks = _pick_templates(rng, knobs)
    constructs = [_TEMPLATES[key](rng, uid, knobs)
                  for uid, key in enumerate(picks)]
    args = [_driver_arg(rng, knobs) for _ in constructs]
    fill_seed = 1 + rng.randrange(9999)

    lines: list[str] = [
        f"// generated by {GEN_SCHEMA}: seed={seed} index={index}",
        f"// templates: {', '.join(picks)}",
        "",
        "int DATA[64];",
        "double FDATA[32];",
        "",
    ]
    for construct in constructs:
        lines.extend(construct.lines)
        lines.append("")
    lines += [
        "int main() {",
        "    int in0 = i_abs(read_int()) % 24;",
        "    int in1 = i_abs(read_int()) % 24;",
        "    int in2 = i_abs(read_int()) % 24;",
        "    int acc = in2;",
        f"    rand_seed({fill_seed});",
        "    for (int i = 0; i < 64; i++) {",
        "        DATA[i] = rand_next(97);",
        "    }",
        "    for (int i = 0; i < 32; i++) {",
        "        FDATA[i] = (double)rand_next(1000) / 37.0;",
        "    }",
        "    int reps = 1 + in0 % 4;",
        "    for (int r = 0; r < reps; r++) {",
    ]
    for construct, arg in zip(constructs, args):
        lines.append(f"        acc = (acc + {construct.entry}({arg}))"
                     f" % 100003;")
    lines += [
        "        print_int(acc);",
        "        print_char('\\n');",
        "    }",
        "    print_int(acc + reps);",
        "    print_char('\\n');",
        "    return 0;",
        "}",
        "",
    ]

    per_rep_cost = sum(c.cost for c in constructs)
    datasets = tuple(_dataset(rng, name, per_rep_cost, len(constructs))
                     for name in ("ref", "alt"))
    labels = tuple((proc, c.key) for c in constructs for proc in c.procs)
    return GenProgram(
        name=program_name(seed, index), seed=seed, index=index,
        source="\n".join(lines), datasets=datasets, labels=labels,
        templates=tuple(picks))
