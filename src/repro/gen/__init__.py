"""repro.gen — seeded, grammar-driven BLC program generation.

``python -m repro.gen make|corpus|characterize`` generates lint-clean,
verifier-clean BLC programs with ground-truth branch labels, writes
seeded corpora with per-dataset fuel pricing, and characterizes the
Ball-Larus heuristics against the perfect static predictor per
construct cluster.  See docs/corpus.md.
"""

from repro.gen.characterize import (
    Characterization, ClusterStats, characterize, evidence_counts,
)
from repro.gen.corpus import (
    CORPUS_SCHEMA, CorpusError, apply_fuel_limits, corpus_runner,
    generate_corpus, load_corpus, manifest_dict, register_corpus,
    write_corpus,
)
from repro.gen.fuzz import CheckFailure, check_corpus, check_program
from repro.gen.grammar import (
    GEN_SCHEMA, TEMPLATE_LABELS, GenDataset, GenKnobs, GenProgram,
    generate_program, program_name,
)

__all__ = [
    "GEN_SCHEMA", "CORPUS_SCHEMA", "TEMPLATE_LABELS",
    "GenKnobs", "GenDataset", "GenProgram",
    "generate_program", "program_name",
    "generate_corpus", "write_corpus", "load_corpus", "manifest_dict",
    "register_corpus", "corpus_runner", "apply_fuel_limits",
    "CorpusError",
    "Characterization", "ClusterStats", "characterize", "evidence_counts",
    "CheckFailure", "check_program", "check_corpus",
]
