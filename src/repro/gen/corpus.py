"""Corpus generation, on-disk manifests, and the corpus runner seam.

A *corpus* is ``count`` programs generated from one seed (indexes
``0..count-1``) plus a ``manifest.json`` recording, per program, its
ground truth: file name, source SHA-256, template list, procedure
labels, and each dataset's inputs *and generator-priced fuel budget*.
The manifest is the regression artifact — ``load_corpus`` refuses to
load a directory whose sources no longer hash to the manifest.

The runner seam is :func:`corpus_runner`: generated programs register
into :mod:`repro.bench.suite`'s in-memory registry (so ``get`` resolves
them everywhere — serial runner, forked shard workers, the SCEV trip
checker) and each dataset's paired fuel budget is applied as a
per-``(benchmark, dataset)`` ``limit_fuel`` override.  That per-dataset
pairing is the point: a corpus-wide ``max_instructions`` would either
dwarf every program (hiding runaway bugs) or, set tight, let a heavy
dataset's timeout negative-cache a light dataset's runs.  The override
rides the existing limits plumbing into :class:`ShardJob.fuel_budget`
and the limits-fingerprinted caches, so fuel differences between
datasets of the *same* program never alias.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro.bench.suite import registered as _registered_benchmarks
from repro.gen.grammar import (
    GEN_SCHEMA, GenDataset, GenKnobs, GenProgram, generate_program,
)
from repro.harness.runner import SuiteRunner

__all__ = [
    "CORPUS_SCHEMA", "CorpusError", "generate_corpus", "manifest_dict",
    "write_corpus", "load_corpus", "register_corpus", "corpus_runner",
    "apply_fuel_limits",
]

CORPUS_SCHEMA = "repro.gen.corpus/v1"


class CorpusError(ValueError):
    """A corpus directory is missing, malformed, or fails verification."""


def generate_corpus(seed: int, count: int,
                    knobs: GenKnobs | None = None) -> list[GenProgram]:
    """Generate *count* programs from *seed* (indexes 0..count-1)."""
    if count < 1:
        raise CorpusError(f"corpus count must be >= 1 (got {count})")
    return [generate_program(seed, index, knobs) for index in range(count)]


def manifest_dict(programs: list[GenProgram], seed: int,
                  knobs: GenKnobs | None = None) -> dict:
    """The stable (sorted-key, fully deterministic) manifest payload."""
    return {
        "schema": CORPUS_SCHEMA,
        "generator": GEN_SCHEMA,
        "seed": seed,
        "count": len(programs),
        "knobs": dataclasses.asdict(knobs) if knobs is not None else None,
        "programs": [
            {
                "name": gp.name,
                "seed": gp.seed,
                "index": gp.index,
                "file": f"{gp.name}.blc",
                "sha256": gp.sha256(),
                "templates": list(gp.templates),
                "labels": [list(pair) for pair in gp.labels],
                "datasets": [
                    {"name": ds.name, "inputs": list(ds.inputs),
                     "fuel": ds.fuel}
                    for ds in gp.datasets
                ],
            }
            for gp in programs
        ],
    }


def write_corpus(programs: list[GenProgram], out_dir: str, seed: int,
                 knobs: GenKnobs | None = None) -> str:
    """Write ``<name>.blc`` files plus ``manifest.json``; returns the
    manifest path.  Output is byte-deterministic for a given corpus."""
    os.makedirs(out_dir, exist_ok=True)
    for gp in programs:
        path = os.path.join(out_dir, f"{gp.name}.blc")
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(gp.source)
    manifest_path = os.path.join(out_dir, "manifest.json")
    payload = json.dumps(manifest_dict(programs, seed, knobs),
                         indent=2, sort_keys=True) + "\n"
    with open(manifest_path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(payload)
    return manifest_path


def load_corpus(corpus_dir: str) -> list[GenProgram]:
    """Load and verify a corpus directory written by :func:`write_corpus`.

    Every program's source must hash to the manifest's SHA-256 — a
    drifted file is a hard :class:`CorpusError`, because the manifest's
    labels and fuel budgets are only ground truth for the exact bytes
    the generator emitted.
    """
    manifest_path = os.path.join(corpus_dir, "manifest.json")
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise CorpusError(f"no manifest.json in {corpus_dir!r}") from None
    except json.JSONDecodeError as exc:
        raise CorpusError(f"malformed manifest in {corpus_dir!r}: "
                          f"{exc}") from None
    if manifest.get("schema") != CORPUS_SCHEMA:
        raise CorpusError(f"unsupported corpus schema "
                          f"{manifest.get('schema')!r} "
                          f"(expected {CORPUS_SCHEMA!r})")
    programs: list[GenProgram] = []
    for entry in manifest["programs"]:
        path = os.path.join(corpus_dir, entry["file"])
        try:
            with open(path, encoding="utf-8", newline="") as handle:
                source = handle.read()
        except FileNotFoundError:
            raise CorpusError(
                f"{entry['name']}: source file {entry['file']!r} "
                f"missing from {corpus_dir!r}") from None
        gp = GenProgram(
            name=entry["name"], seed=entry["seed"], index=entry["index"],
            source=source,
            datasets=tuple(GenDataset(ds["name"], tuple(ds["inputs"]),
                                      ds["fuel"])
                           for ds in entry["datasets"]),
            labels=tuple((proc, label)
                         for proc, label in entry["labels"]),
            templates=tuple(entry["templates"]))
        if gp.sha256() != entry["sha256"]:
            raise CorpusError(
                f"{gp.name}: source drifted from the manifest "
                f"(sha256 {gp.sha256()[:12]}... != "
                f"{entry['sha256'][:12]}...) — regenerate the corpus "
                f"instead of editing generated files")
        programs.append(gp)
    return programs


def register_corpus(programs: list[GenProgram], replace: bool = False):
    """Scope-bound registration of every program as a suite benchmark
    (a context manager; see :func:`repro.bench.suite.registered`)."""
    return _registered_benchmarks([gp.benchmark() for gp in programs],
                                  replace=replace)


def apply_fuel_limits(runner: SuiteRunner,
                      programs: list[GenProgram]) -> None:
    """Install each dataset's generator-paired fuel budget as a
    per-(benchmark, dataset) override on *runner*.

    This is the dataset/fuel round-trip: the override flows through
    ``_effective_limits`` into serial runs, ``ShardJob.fuel_budget`` for
    parallel shards, the persistent run key, and the negative-cache
    fingerprint — so a fuel exhaustion on one dataset can never poison
    another dataset (or the same dataset under a different budget).
    """
    for gp in programs:
        for ds in gp.datasets:
            runner.limit_fuel(gp.name, ds.fuel, dataset=ds.name)


def corpus_runner(programs: list[GenProgram], jobs: int = 1,
                  cache_dir: str | None = None, engine: str | None = None,
                  optimize: bool = True, strict: bool = True,
                  **kwargs) -> SuiteRunner:
    """A :class:`SuiteRunner` over the corpus with paired fuel installed.

    The programs must already be registered (see :func:`register_corpus`)
    — the runner resolves them by name exactly like suite members, so
    every existing harness feature (parallel prefetch, artifact cache,
    degraded mode, engine pinning) works unchanged over generated code.
    """
    runner = SuiteRunner(benchmarks=[gp.name for gp in programs],
                         parallelism=jobs, cache_dir=cache_dir,
                         engine=engine, optimize=optimize, strict=strict,
                         **kwargs)
    apply_fuel_limits(runner, programs)
    return runner
