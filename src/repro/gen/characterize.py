"""Branch-predictability characterization over a generated corpus.

Because the generator knows which template emitted every procedure, each
machine branch maps to an *exact* cluster label (branch -> containing
procedure -> template).  Characterization runs the whole corpus through
the harness (optionally parallel + artifact-cached), scores the paper's
full heuristic chain against the perfect static predictor per cluster,
and reports where each Ball-Larus rule wins or breaks down:

* ``loop.exact`` / ``loop.interval`` — loop-dominated clusters the loop
  predictor should crush (and SCEV should count);
* ``loop.data`` — data-dependent trips: loop predictor still good, SCEV
  deliberately blind;
* ``branch.bias`` — biased data branches: heuristics only win if some
  rule fires, Default is a coin flip against the bias;
* ``branch.balanced`` — the adversarial cluster: *no* static predictor
  should beat ~50% here, and a cluster miss rate well below the perfect
  rate + noise indicates leakage in the experiment;
* ``guard.pointer`` / ``store.guard`` / ``call.*`` / ``fp.compare`` —
  each a home game for one heuristic (Point, Store, Call/Return,
  Opcode), measuring that rule's real coverage and payoff.

All aggregation is integer-count based and iteration orders are sorted,
so the rendered table and the JSON payload are byte-identical across
serial/parallel execution and repeat runs of the same corpus.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.predictors import HeuristicPredictor
from repro.gen.grammar import GenProgram
from repro.harness.report import TextTable
from repro.harness.runner import SuiteRunner

__all__ = [
    "CHARACTERIZE_SCHEMA", "ClusterStats", "Characterization",
    "characterize", "evidence_counts",
]

CHARACTERIZE_SCHEMA = "repro.gen.characterize/v1"


@dataclass
class ClusterStats:
    """Aggregated branch statistics for one ground-truth cluster."""

    label: str
    programs: int = 0            #: programs contributing >= 1 branch
    static_branches: int = 0     #: conditional branches in cluster procs
    executed_branches: int = 0   #: of those, executed at least once
    loop_branches: int = 0       #: classified loop branches (static)
    dynamic: int = 0             #: total dynamic executions
    heuristic_misses: int = 0    #: paper-chain (BL) mispredictions
    perfect_misses: int = 0      #: perfect static predictor mispredictions
    #: dynamic executions per deciding rule (heuristic name,
    #: "LoopPredictor", or "Default")
    attribution: dict[str, int] = field(default_factory=dict)
    #: statically decided branch facts per evidence source
    #: ("sccp"/"range"/"scev"); populated only with evidence=True
    evidence: dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.heuristic_misses / self.dynamic if self.dynamic else 0.0

    @property
    def perfect_rate(self) -> float:
        return self.perfect_misses / self.dynamic if self.dynamic else 0.0

    def top_deciders(self, n: int = 2) -> str:
        """The n heaviest deciding rules, as ``"Name pct%"`` pairs."""
        if not self.dynamic:
            return ""
        ranked = sorted(self.attribution.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:n]
        return ", ".join(f"{name} {100 * count / self.dynamic:.0f}%"
                         for name, count in ranked)


@dataclass
class Characterization:
    """The full per-cluster report for one corpus + dataset."""

    dataset: str
    programs: int
    clusters: dict[str, ClusterStats]
    with_evidence: bool = False

    def render(self) -> str:
        columns = ["cluster", "progs", "branches", "exec", "loop",
                   "dynamic", "BL miss%", "perfect%", "deciders"]
        if self.with_evidence:
            columns.append("decided(sccp/range/scev)")
        table = TextTable(
            columns,
            title=f"Corpus characterization: Ball-Larus chain vs perfect "
                  f"static, by ground-truth cluster "
                  f"({self.programs} programs, dataset {self.dataset})")
        totals = ClusterStats("ALL")
        for label in sorted(self.clusters):
            c = self.clusters[label]
            row = [label, c.programs, c.static_branches,
                   c.executed_branches, c.loop_branches, c.dynamic,
                   f"{100 * c.miss_rate:.2f}",
                   f"{100 * c.perfect_rate:.2f}", c.top_deciders()]
            if self.with_evidence:
                row.append(f"{c.evidence.get('sccp', 0)}/"
                           f"{c.evidence.get('range', 0)}/"
                           f"{c.evidence.get('scev', 0)}")
            table.add_row(*row)
            totals.static_branches += c.static_branches
            totals.executed_branches += c.executed_branches
            totals.loop_branches += c.loop_branches
            totals.dynamic += c.dynamic
            totals.heuristic_misses += c.heuristic_misses
            totals.perfect_misses += c.perfect_misses
            for source, count in c.evidence.items():
                totals.evidence[source] = \
                    totals.evidence.get(source, 0) + count
        table.add_separator()
        row = ["ALL", self.programs, totals.static_branches,
               totals.executed_branches, totals.loop_branches,
               totals.dynamic, f"{100 * totals.miss_rate:.2f}",
               f"{100 * totals.perfect_rate:.2f}", ""]
        if self.with_evidence:
            row.append(f"{totals.evidence.get('sccp', 0)}/"
                       f"{totals.evidence.get('range', 0)}/"
                       f"{totals.evidence.get('scev', 0)}")
        table.add_row(*row)
        return table.render()

    def to_json(self) -> dict:
        """Stable payload for goldens: sorted keys, integer counts,
        rates rounded at serialization time only."""
        return {
            "schema": CHARACTERIZE_SCHEMA,
            "dataset": self.dataset,
            "programs": self.programs,
            "clusters": {
                label: {
                    "programs": c.programs,
                    "static_branches": c.static_branches,
                    "executed_branches": c.executed_branches,
                    "loop_branches": c.loop_branches,
                    "dynamic": c.dynamic,
                    "heuristic_misses": c.heuristic_misses,
                    "perfect_misses": c.perfect_misses,
                    "miss_rate": round(c.miss_rate, 6),
                    "perfect_rate": round(c.perfect_rate, 6),
                    "attribution": dict(sorted(c.attribution.items())),
                    "evidence": dict(sorted(c.evidence.items())),
                }
                for label, c in sorted(self.clusters.items())
            },
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


def characterize(programs: list[GenProgram], runner: SuiteRunner,
                 dataset: str = "ref",
                 evidence: bool = False) -> Characterization:
    """Run the corpus and aggregate per-cluster predictability.

    *runner* must cover exactly these programs (see
    :func:`repro.gen.corpus.corpus_runner`); with ``parallelism > 1``
    the shards prefetch through the process pool and the serial
    aggregation below replays the memo caches, so results are identical
    to a serial run by construction.
    """
    if runner.parallelism > 1:
        runner.prefetch(dataset=dataset)
    clusters: dict[str, ClusterStats] = {}
    for gp in programs:
        run = runner.run(gp.name, dataset)
        predictor = HeuristicPredictor(run.analysis)
        predictions = predictor.predictions()
        touched: set[str] = set()
        for addr, branch in sorted(run.analysis.branches.items()):
            label = gp.label_of(branch.procedure.name)
            if label == "runtime":
                continue  # library code repeats across every program
            stats = clusters.setdefault(label, ClusterStats(label))
            touched.add(label)
            stats.static_branches += 1
            if branch.is_loop_branch:
                stats.loop_branches += 1
            count = run.profile.execution_count(addr)
            if count == 0:
                continue
            stats.executed_branches += 1
            stats.dynamic += count
            if predictions[addr].as_bool:
                stats.heuristic_misses += run.profile.not_taken_count(addr)
            else:
                stats.heuristic_misses += run.profile.taken_count(addr)
            stats.perfect_misses += run.profile.perfect_miss_count(addr)
            decider = predictor.attribution.get(addr, "Default")
            stats.attribution[decider] = \
                stats.attribution.get(decider, 0) + count
        for label in touched:
            clusters[label].programs += 1
    if evidence:
        for label, counts in evidence_counts(programs).items():
            clusters.setdefault(label, ClusterStats(label)).evidence = counts
    return Characterization(dataset=dataset, programs=len(programs),
                            clusters=clusters, with_evidence=evidence)


def evidence_counts(programs: list[GenProgram]) -> dict[str, dict[str, int]]:
    """Statically decided branch facts per cluster, by evidence source.

    Compiles each program fold-free (so decided branches survive into
    the IR), seeds the interprocedural ranges, and attributes every
    decided fact to its procedure's ground-truth cluster — the static
    side of the characterization: where SCCP, value ranges, and SCEV
    actually decide generated branches.
    """
    from repro.analysis.branches import analyze_branch_evidence
    from repro.analysis.interproc import seed_interprocedural_ranges
    from repro.bcc.driver import compile_to_ir
    from repro.harness.evidence import NO_FOLD_PASSES

    out: dict[str, dict[str, int]] = {}
    for gp in programs:
        program = compile_to_ir(gp.source, filename=f"{gp.name}.blc",
                                passes=NO_FOLD_PASSES)
        seed_interprocedural_ranges(program)
        for fact in analyze_branch_evidence(program).decided_facts():
            label = gp.label_of(fact.function)
            if label == "runtime":
                continue
            counts = out.setdefault(label, {})
            counts[fact.source] = counts.get(fact.source, 0) + 1
    return out
