"""``python -m repro.gen`` — generate and characterize BLC corpora.

Subcommands:
    make          print (or write) one generated program's source
    corpus        generate a seeded corpus directory with manifest.json
    characterize  run a corpus through the harness and print the
                  per-cluster predictability table

Examples:
    python -m repro.gen make --seed 7 --index 3
    python -m repro.gen corpus --seed 7 --count 64 --out corpus/mini --check
    python -m repro.gen characterize --corpus corpus/mini --jobs 4
    python -m repro.gen characterize --seed 11 --count 16 --evidence

Knob flags (make/corpus/characterize-from-seed) map 1:1 onto
:class:`repro.gen.GenKnobs`; the seed policy and cluster taxonomy are
documented in docs/corpus.md.  ``--check`` runs the fuzz gates (lint,
verifier at -O0/-O1, differential run within fuel, SCEV trip
consistency) and exits non-zero on any failure.
"""

from __future__ import annotations

import argparse
import sys

from repro.gen.characterize import characterize
from repro.gen.corpus import (
    CorpusError, corpus_runner, generate_corpus, load_corpus,
    register_corpus, write_corpus,
)
from repro.gen.fuzz import check_corpus
from repro.gen.grammar import GenKnobs, generate_program


def _add_knob_args(parser: argparse.ArgumentParser) -> None:
    defaults = GenKnobs()
    parser.add_argument("--constructs", type=int,
                        default=defaults.constructs,
                        help="construct templates per program")
    parser.add_argument("--max-loop-depth", type=int,
                        default=defaults.max_loop_depth,
                        help="deepest literal-bound loop nest")
    parser.add_argument("--max-loops", type=int, default=defaults.max_loops,
                        help="max draws from the loop template family")
    parser.add_argument("--max-calls", type=int, default=defaults.max_calls,
                        help="max draws from the call template family")
    parser.add_argument("--branch-bias", type=float,
                        default=defaults.branch_bias,
                        help="taken-probability of biased branches (0..1)")
    parser.add_argument("--pointer-density", type=float,
                        default=defaults.pointer_density,
                        help="weight of pointer-guard templates (0..1)")
    parser.add_argument("--input-dependence", type=float,
                        default=defaults.input_dependence,
                        help="probability a construct argument derives "
                             "from read_int input (0..1)")
    parser.add_argument("--templates", default=None,
                        help="comma-separated template keys to restrict "
                             "the catalog to")


def _knobs_from_args(args: argparse.Namespace) -> GenKnobs:
    templates = None
    if args.templates:
        templates = tuple(t for t in args.templates.split(",") if t)
    return GenKnobs(
        constructs=args.constructs, max_loop_depth=args.max_loop_depth,
        max_loops=args.max_loops, max_calls=args.max_calls,
        branch_bias=args.branch_bias, pointer_density=args.pointer_density,
        input_dependence=args.input_dependence, templates=templates)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gen",
        description="Seeded grammar-driven BLC program generation and "
                    "branch-predictability characterization.")
    sub = parser.add_subparsers(dest="command", required=True)

    make = sub.add_parser("make", help="print one generated program")
    make.add_argument("--seed", type=int, required=True)
    make.add_argument("--index", type=int, default=0)
    make.add_argument("--out", default=None, metavar="FILE",
                      help="write the source here instead of stdout")
    _add_knob_args(make)

    corpus = sub.add_parser("corpus", help="generate a corpus directory")
    corpus.add_argument("--seed", type=int, required=True)
    corpus.add_argument("--count", type=int, required=True)
    corpus.add_argument("--out", required=True, metavar="DIR")
    corpus.add_argument("--check", action="store_true",
                        help="run the fuzz gates over every program")
    corpus.add_argument("--no-scev", action="store_true",
                        help="skip the (slower) SCEV trip gate in --check")
    _add_knob_args(corpus)

    char = sub.add_parser("characterize",
                          help="per-cluster predictability report")
    char.add_argument("--corpus", default=None, metavar="DIR",
                      help="load a written corpus (else --seed/--count)")
    char.add_argument("--seed", type=int, default=None)
    char.add_argument("--count", type=int, default=None)
    char.add_argument("--dataset", default="ref")
    char.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="shard runs across N worker processes")
    char.add_argument("--cache", default=None, metavar="DIR",
                      help="persistent artifact cache directory")
    char.add_argument("--engine", default=None,
                      choices=("tier0", "tier1"))
    char.add_argument("--evidence", action="store_true",
                      help="add static sccp/range/scev decided-branch "
                           "counts per cluster (serial recompile)")
    char.add_argument("--json", default=None, metavar="FILE",
                      help="also write the stable JSON payload here")
    char.add_argument("--check", action="store_true",
                      help="run the fuzz gates before characterizing")
    _add_knob_args(char)

    args = parser.parse_args(argv)

    if args.command == "make":
        gp = generate_program(args.seed, args.index, _knobs_from_args(args))
        if args.out:
            with open(args.out, "w", encoding="utf-8",
                      newline="\n") as handle:
                handle.write(gp.source)
            print(f"{gp.name}: wrote {args.out} "
                  f"(templates: {', '.join(gp.templates)})")
        else:
            sys.stdout.write(gp.source)
        return 0

    if args.command == "corpus":
        knobs = _knobs_from_args(args)
        try:
            programs = generate_corpus(args.seed, args.count, knobs)
        except CorpusError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        manifest = write_corpus(programs, args.out, args.seed, knobs)
        print(f"wrote {len(programs)} programs + {manifest}")
        if args.check:
            failures = check_corpus(programs, scev=not args.no_scev)
            for failure in failures:
                print(f"FAIL {failure.format()}", file=sys.stderr)
            if failures:
                return 1
            print(f"all {len(programs)} programs pass lint + verifier + "
                  f"fuel + differential"
                  + ("" if args.no_scev else " + scev"))
        return 0

    # characterize
    if args.corpus:
        try:
            programs = load_corpus(args.corpus)
        except CorpusError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.seed is not None and args.count is not None:
        programs = generate_corpus(args.seed, args.count,
                                   _knobs_from_args(args))
    else:
        print("error: characterize needs --corpus DIR or --seed/--count",
              file=sys.stderr)
        return 2
    if args.check:
        failures = check_corpus(programs)
        for failure in failures:
            print(f"FAIL {failure.format()}", file=sys.stderr)
        if failures:
            return 1
    with register_corpus(programs, replace=True):
        runner = corpus_runner(programs, jobs=max(1, args.jobs),
                               cache_dir=args.cache, engine=args.engine)
        report = characterize(programs, runner, dataset=args.dataset,
                              evidence=args.evidence)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8",
                  newline="\n") as handle:
            handle.write(report.dumps())
        print(f"json payload written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
