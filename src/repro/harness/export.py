"""Machine-readable export of every table and graph (CSV + JSON).

``python -m repro.harness.export OUTDIR`` writes one file per table/figure
so the results can be plotted or diffed without re-running the suite. All
rates are fractions (not percentages) in the exported data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.harness.graphs import (
    graph1, graph12, graph13, graphs2_3, graphs4_11,
)
from repro.harness.runner import SuiteRunner
from repro.harness.tables import (
    table1, table2, table3, table4, table5, table6, table7,
)

__all__ = ["export_all", "export_tables", "export_graphs"]


def _write_csv(path: Path, header: list[str], rows: list[list]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_tables(runner: SuiteRunner, outdir: Path) -> list[Path]:
    """Write table1.csv .. table7.json into *outdir*; returns the paths."""
    written: list[Path] = []

    t1 = table1(runner)
    path = outdir / "table1.csv"
    _write_csv(path, ["program", "group", "description", "paper_analogue",
                      "code_size_kb", "procedures"],
               [[r.name, r.group, r.description, r.paper_analogue,
                 f"{r.code_size_kb:.2f}", r.procedures] for r in t1.rows])
    written.append(path)

    t2 = table2(runner)
    path = outdir / "table2.csv"
    _write_csv(path, ["program", "loop_pred_miss", "loop_perfect",
                      "non_loop_fraction", "target_miss", "random_miss",
                      "non_loop_perfect", "big_count", "big_fraction"],
               [[r.name, r.loop_pred_miss, r.loop_perfect,
                 r.non_loop_fraction, r.target_miss, r.random_miss,
                 r.non_loop_perfect, r.big_count, r.big_fraction]
                for r in t2.rows])
    written.append(path)

    t3 = table3(runner)
    path = outdir / "table3.csv"
    rows = []
    for r in t3.rows:
        for name, cell in r.cells.items():
            rows.append([r.name, name, cell.coverage, cell.miss,
                         cell.perfect])
    _write_csv(path, ["program", "heuristic", "coverage", "miss", "perfect"],
               rows)
    written.append(path)

    t4 = table4(runner)
    path = outdir / "table4.json"
    path.write_text(json.dumps({
        "n_trials": t4.n_trials,
        "pairwise_order": list(t4.pairwise),
        "top_orders": [
            {"order": list(order), "trial_share": share, "miss_rate": miss}
            for order, share, miss in t4.top_orders
        ],
    }, indent=2))
    written.append(path)

    t5 = table5(runner)
    path = outdir / "table5.csv"
    rows = []
    for r in t5.rows:
        for name, cell in r.cells.items():
            rows.append([r.name, name, cell.coverage, cell.miss,
                         cell.perfect])
    _write_csv(path, ["program", "slot", "coverage", "miss", "perfect"],
               rows)
    written.append(path)

    t6 = table6(runner)
    path = outdir / "table6.csv"
    _write_csv(path, ["program", "heuristic_coverage", "heuristic_miss",
                      "heuristic_perfect", "with_default_miss",
                      "with_default_perfect", "all_miss", "all_perfect",
                      "loop_rand_miss"],
               [[r.name, r.heuristic_coverage, r.heuristic_miss,
                 r.heuristic_perfect, r.with_default_miss,
                 r.with_default_perfect, r.all_miss, r.all_perfect,
                 r.loop_rand_miss] for r in t6.rows])
    written.append(path)

    t7 = table7(runner)
    path = outdir / "table7.json"
    path.write_text(json.dumps({
        "all": {k: {"mean": m, "std": s} for k, (m, s) in
                t7.all_stats.items()},
        "most": {k: {"mean": m, "std": s} for k, (m, s) in
                 t7.most_stats.items()},
        "excluded": t7.excluded,
    }, indent=2))
    written.append(path)
    return written


def export_graphs(runner: SuiteRunner, outdir: Path,
                  sequence_benchmarks: tuple[str, ...] | None = None
                  ) -> list[Path]:
    """Write graph1.csv .. graph13.csv into *outdir*; returns the paths."""
    from repro.harness.graphs import SEQUENCE_BENCHMARKS
    if sequence_benchmarks is None:
        sequence_benchmarks = SEQUENCE_BENCHMARKS
    written: list[Path] = []

    g1 = graph1(runner)
    path = outdir / "graph1.csv"
    _write_csv(path, ["rank", "avg_miss_rate"],
               [[i, v] for i, v in enumerate(g1.curve)])
    written.append(path)

    g23 = graphs2_3(runner)
    path = outdir / "graphs2_3.csv"
    _write_csv(path, ["rank", "cumulative_trial_share", "overall_miss_rate"],
               [[i, share, miss] for i, (share, miss) in enumerate(
                   zip(g23.result.cumulative_trial_share(),
                       g23.result.overall_miss_rates))])
    written.append(path)

    for sg in graphs4_11(runner, benchmarks=sequence_benchmarks):
        path = outdir / f"graph_sequences_{sg.name}.csv"
        rows = []
        for label, curve in sg.instruction_curves().items():
            for x, pct in curve:
                rows.append([label, x, pct])
        _write_csv(path, ["predictor", "length_upper", "cum_instr_pct"],
                   rows)
        written.append(path)

    family = graph12()
    path = outdir / "graph12.csv"
    rows = []
    for m, curve in family.items():
        for s, value in enumerate(curve, start=1):
            rows.append([m, s, value])
    _write_csv(path, ["miss_rate", "length", "fraction"], rows)
    written.append(path)

    g13 = graph13(runner)
    path = outdir / "graph13.csv"
    _write_csv(path, ["program", "dataset", "heuristic_miss",
                      "perfect_miss"],
               [[p.benchmark, p.dataset, p.heuristic_miss, p.perfect_miss]
                for p in g13.points])
    written.append(path)
    return written


def export_all(outdir: str | Path,
               runner: SuiteRunner | None = None) -> list[Path]:
    """Export every table and graph; creates *outdir* if needed."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    runner = runner or SuiteRunner()
    return export_tables(runner, outdir) + export_graphs(runner, outdir)


def main(argv: list[str] | None = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.export",
        description="Export every table/figure as CSV/JSON.")
    parser.add_argument("outdir", help="output directory")
    args = parser.parse_args(argv)
    for path in export_all(args.outdir):
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
