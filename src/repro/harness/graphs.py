"""Generators for every graph in the paper (Graphs 1-13).

Graphs are returned as data series (x/y arrays or dicts of curves), ready to
plot or to assert properties over in tests/benchmarks; ``describe()`` gives
a text summary in lieu of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import model_family
from repro.core.orders import (
    SubsetExperimentResult, all_orders_curve, subset_experiment,
)
from repro.core.predictors import HeuristicPredictor, PerfectPredictor
from repro.core.sequences import sequence_experiment
from repro.harness.resilience import RunOutcome
from repro.harness.runner import BenchmarkRun, SuiteRunner
from repro.harness.tables import _runs_and_failures, order_data_for
from repro.sim.trace import SequenceAnalyzer

__all__ = [
    "graph1", "graphs2_3", "SequenceGraphs", "graphs4_11", "graph12",
    "Graph13", "graph13", "SEQUENCE_BENCHMARKS",
]

#: benchmarks used in the paper's sequence-length graphs (gcc, lcc, qpt,
#: xlisp, doduc, fpppp, spice2g6) mapped to our analogues; cg plays spice
#: (Graphs 4 and 5 are both spice).
SEQUENCE_BENCHMARKS = ("cg", "exprc", "scc", "minilisp", "microlog", "nbody",
                       "quad")


@dataclass
class Graph1:
    """Sorted average miss rates of all 5040 orders."""

    curve: np.ndarray  #: sorted ascending
    failed: list[str] = field(default_factory=list)

    @property
    def spread(self) -> float:
        """Worst order minus best order (how much ordering matters)."""
        return float(self.curve[-1] - self.curve[0])

    def describe(self) -> str:
        note = (f" (FAILED, excluded: {', '.join(self.failed)})"
                if self.failed else "")
        return (f"Graph 1: {len(self.curve)} orders; best "
                f"{100 * self.curve[0]:.2f}%, median "
                f"{100 * float(np.median(self.curve)):.2f}%, worst "
                f"{100 * self.curve[-1]:.2f}%{note}")


def graph1(runner: SuiteRunner,
           exclude: tuple[str, ...] = ("matmul",)) -> Graph1:
    runs, failed = _runs_and_failures(runner)
    datasets = [order_data_for(run) for run in runs
                if run.name not in exclude]
    return Graph1(all_orders_curve(datasets),
                  failed=[oc.benchmark for oc in failed])


@dataclass
class Graphs2And3:
    """The subset experiment's cumulative trial share (Graph 2) and
    per-order overall miss rates (Graph 3), over the most common orders."""

    result: SubsetExperimentResult
    top_n: int = 101
    failed: list[str] = field(default_factory=list)

    @property
    def cumulative_share(self) -> np.ndarray:
        return self.result.cumulative_trial_share()[:self.top_n]

    @property
    def miss_rates(self) -> np.ndarray:
        return np.array(self.result.overall_miss_rates[:self.top_n])

    def describe(self) -> str:
        share = self.cumulative_share
        n40 = min(40, len(share)) - 1
        return (f"Graphs 2-3: {len(self.result.orders)} distinct winning "
                f"orders over {self.result.n_trials} trials; top-40 orders "
                f"cover {100 * share[n40]:.1f}% of trials; their miss rates "
                f"span {100 * self.miss_rates.min():.2f}%-"
                f"{100 * self.miss_rates[:n40 + 1].max():.2f}%")


def graphs2_3(runner: SuiteRunner, exclude: tuple[str, ...] = ("matmul",),
              k: int | None = None) -> Graphs2And3:
    runs, failed = _runs_and_failures(runner)
    datasets = [order_data_for(run) for run in runs
                if run.name not in exclude]
    return Graphs2And3(subset_experiment(datasets, k=k),
                       failed=[oc.benchmark for oc in failed])


@dataclass
class SequenceGraphs:
    """Graphs 4-11 data for one benchmark: the three predictors' cumulative
    sequence-length distributions (instruction-weighted, plus the
    break-weighted variant the paper shows for spice in Graph 5)."""

    name: str
    analyzers: dict[str, SequenceAnalyzer]
    #: populated instead of analyzers when the benchmark failed (degraded)
    failure: RunOutcome | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None

    def instruction_curves(self) -> dict[str, list[tuple[int, float]]]:
        return {name: a.cumulative_instructions()
                for name, a in self.analyzers.items()}

    def break_curves(self) -> dict[str, list[tuple[int, float]]]:
        return {name: a.cumulative_breaks()
                for name, a in self.analyzers.items()}

    def describe(self) -> str:
        if self.failure is not None:
            return (f"Graph (sequences) {self.name}: "
                    f"{self.failure.failure_label()}")
        parts = [f"Graph (sequences) {self.name}:"]
        for name, a in self.analyzers.items():
            parts.append(
                f"  {name:10s} miss={100 * a.miss_rate:.0f}% "
                f"ipbc={a.ipbc_average:.0f} dividing={a.dividing_length}")
        return "\n".join(parts)


def graphs4_11(runner: SuiteRunner,
               benchmarks: tuple[str, ...] = SEQUENCE_BENCHMARKS
               ) -> list[SequenceGraphs]:
    """Run the trace-based sequence experiment for the paper's
    hard-to-predict benchmark set.

    In degraded mode a failed benchmark yields a placeholder entry whose
    ``failure`` field carries the classified outcome."""
    out = []
    for name in benchmarks:
        outcome = runner.outcome(name)
        if outcome.failed:  # unreachable in strict mode (outcome raises)
            out.append(SequenceGraphs(name, {}, failure=outcome))
            continue
        run = outcome.require()
        analyzers = sequence_experiment(
            run.executable, run.profile, inputs=list(run.dataset.inputs),
            analysis=run.analysis)
        out.append(SequenceGraphs(name, analyzers))
    return out


def graph12(max_length: int = 101) -> dict[float, np.ndarray]:
    """The analytic model family f(m,s) = 1-(1-m)^s for m=0.025..0.30."""
    return model_family(max_length=max_length)


@dataclass
class Graph13Point:
    benchmark: str
    dataset: str
    heuristic_miss: float
    perfect_miss: float


@dataclass
class Graph13:
    points: list[Graph13Point]
    failed: list[RunOutcome] = field(default_factory=list)

    def by_benchmark(self) -> dict[str, list[Graph13Point]]:
        out: dict[str, list[Graph13Point]] = {}
        for p in self.points:
            out.setdefault(p.benchmark, []).append(p)
        return out

    def describe(self) -> str:
        lines = ["Graph 13: miss rates (all branches) across datasets"]
        for name, points in self.by_benchmark().items():
            cells = " ".join(
                f"{p.dataset}:{100 * p.heuristic_miss:.0f}/"
                f"{100 * p.perfect_miss:.0f}" for p in points)
            lines.append(f"  {name:10s} {cells}")
        for oc in self.failed:
            lines.append(f"  {oc.benchmark:10s} {oc.dataset}: "
                         f"{oc.failure_label()}")
        return "\n".join(lines)


def graph13(runner: SuiteRunner,
            benchmarks: list[str] | None = None) -> Graph13:
    """Heuristic vs perfect miss rates on every dataset of every benchmark.

    The heuristic predictor makes the *same* predictions regardless of
    dataset (it is program-based); the perfect predictor is re-derived per
    dataset."""
    from repro.bench.suite import get
    from repro.core.evaluation import evaluate_predictor

    points = []
    failed: list[RunOutcome] = []
    names = benchmarks or runner.benchmark_names
    for name in names:
        if runner.is_skipped(name) and not runner.strict:
            failed.append(runner.outcome(name))
            continue
        benchmark = get(name)
        for ds in benchmark.datasets:
            outcome = runner.outcome(name, ds.name)
            if outcome.failed:  # unreachable in strict mode (raises)
                failed.append(outcome)
                continue
            run = outcome.require()
            heuristic = HeuristicPredictor(run.analysis)
            perfect = PerfectPredictor(run.analysis, run.profile)
            h_eval = evaluate_predictor(heuristic, run.profile)
            p_eval = evaluate_predictor(perfect, run.profile)
            points.append(Graph13Point(name, ds.name, h_eval.miss_rate,
                                       p_eval.miss_rate))
    return Graph13(points, failed)
