"""``python -m repro.harness`` — print the full paper reproduction report.

Options:
    --tables N,M     only the listed tables (1-7)
    --graphs N,M     only the listed graphs (1-13; 4 means all of 4-11)
    --benchmarks A,B restrict the suite to the named benchmarks
    --order SPEC     heuristic priority order for Tables 5-7: "paper"
                     (default), "registry", or an explicit comma list
    --heuristics SPEC
                     ablate the heuristic set: "-guard" drops Guard
                     (drop-many with "-a,-b"), "Point,Call" keeps only
                     the named ones — see repro.core.registry
    -O0              compile the suite without optimization (smoke mode)
    --degraded       fault-isolated mode: failures render as FAILED cells
    --deadline S     per-run wall-clock watchdog (seconds)
    --jobs N         shard compile+simulate across N worker processes
                     (see docs/performance.md)
    --cache DIR      persistent artifact cache (defaults to
                     $REPRO_CACHE_DIR when set); --no-cache forces off
    --telemetry DIR  record spans + metrics; write a full report bundle
                     (Chrome trace, JSONL, Prometheus, summary, manifest)
    --hot-pc N       sample the simulator pc every N instructions
                     (requires --telemetry to be exported; also exposed on
                     the Machine API directly)
    --engine TIER    simulator execution engine: tier0 (pre-decoded
                     dispatch) or tier1 (superblock trace cache, the
                     default) — see docs/performance.md
    --range-table    append the range-evidence ablation table
    --scev-table     append the SCEV trip-count verification table
    --loop-shape-table
                     append the loop-shape (rotate/unrotate) ablation
    --corpus-table SPEC
                     append the generated-corpus predictability table;
                     SPEC is a corpus directory (python -m repro.gen
                     corpus) or SEED:COUNT for a fresh corpus — runs
                     under the same --jobs/--cache/--engine settings
    --log-level/--quiet
                     shared structured-logging knobs (repro.telemetry)

On a pipeline fault the CLI exits non-zero with a one-line structured
error (``error[code] benchmark=... phase=...: message``), never a raw
traceback — see docs/robustness.md.  Telemetry output formats are
documented in docs/observability.md.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import time

from repro import telemetry
from repro.core.registry import HeuristicSpecError, resolve_order
from repro.errors import ReproError
from repro.harness import (
    SEQUENCE_BENCHMARKS, SuiteRunner,
    graph1, graph12, graph13, graphs2_3, graphs4_11,
    table1, table2, table3, table4, table5, table6, table7,
)
from repro.telemetry.logging_setup import (
    add_logging_args, configure_from_args,
)


#: options whose values may start with "-" (ablation specs like
#: ``--heuristics -guard``); argparse rejects option-like values, so
#: :func:`_absorb_dash_values` merges them into ``--opt=value`` form.
_DASH_VALUE_OPTIONS = ("--heuristics", "--order")


def _absorb_dash_values(argv: list[str]) -> list[str]:
    """Merge ``--heuristics -guard`` into ``--heuristics=-guard`` so drop
    specs survive argparse's option-vs-value disambiguation."""
    out: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if (arg in _DASH_VALUE_OPTIONS and i + 1 < len(argv)
                and argv[i + 1].startswith("-")):
            out.append(f"{arg}={argv[i + 1]}")
            i += 2
        else:
            out.append(arg)
            i += 1
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate every table and figure of "
                    "Ball & Larus, PLDI 1993.")
    parser.add_argument("--tables", default="1,2,3,4,5,6,7",
                        help="comma-separated table numbers")
    parser.add_argument("--graphs", default="1,2,4,12,13",
                        help="comma-separated graph numbers")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated benchmark names "
                             "(default: full suite)")
    parser.add_argument("--order", default=None, metavar="SPEC",
                        help="heuristic priority order for Tables 5-7: "
                             "'paper' (default), 'registry', or an "
                             "explicit comma-separated name list")
    parser.add_argument("--heuristics", default=None, metavar="SPEC",
                        help="ablate the heuristic set: '-name' entries "
                             "drop heuristics, plain entries keep only "
                             "the named ones")
    parser.add_argument("-O0", dest="no_opt", action="store_true",
                        help="compile the suite without optimization "
                             "(empty pass pipeline)")
    parser.add_argument("--degraded", action="store_true",
                        help="fault-isolated mode: a failing benchmark "
                             "renders as FAILED cells instead of aborting")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock watchdog deadline")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard (benchmark, dataset) compile+simulate "
                             "jobs across N worker processes (default 1: "
                             "serial)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="persistent content-addressed artifact cache "
                             "directory (default: $REPRO_CACHE_DIR when "
                             "set, else off)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache even when "
                             "--cache or $REPRO_CACHE_DIR is set")
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="record pipeline telemetry and write the "
                             "report bundle (trace.json, events.jsonl, "
                             "metrics.prom, summary.txt, manifest.json, "
                             "telemetry.json) into DIR")
    parser.add_argument("--hot-pc", type=int, default=None, metavar="N",
                        help="sample the simulated pc every N instructions "
                             "(hot-PC histogram; off by default)")
    parser.add_argument("--engine", default=None,
                        choices=("tier0", "tier1"),
                        help="simulator execution engine (default: resolve "
                             "via REPRO_CHAOS_FORCE_TIER0 / "
                             "REPRO_SIM_ENGINE, else tier1)")
    parser.add_argument("--range-table", action="store_true",
                        help="also print the range-evidence ablation table "
                             "(recompiles the suite fold-free with the "
                             "SCCP+range branch evidence attached)")
    parser.add_argument("--scev-table", action="store_true",
                        help="also print the SCEV trip-count verification "
                             "table (predicted vs observed back-edge "
                             "counts, fold-free recompile)")
    parser.add_argument("--loop-shape-table", action="store_true",
                        help="also print the loop-shape ablation table "
                             "(rotate/unrotate differential plus the Loop "
                             "heuristic's miss rate per loop shape)")
    parser.add_argument("--corpus-table", default=None, metavar="SPEC",
                        help="also print the generated-corpus "
                             "characterization table; SPEC is a corpus "
                             "directory or SEED:COUNT (see "
                             "python -m repro.gen / docs/corpus.md)")
    add_logging_args(parser)
    if argv is None:
        import sys
        argv = sys.argv[1:]
    args = parser.parse_args(_absorb_dash_values(list(argv)))
    log = configure_from_args(args).getChild("harness")

    tables = {int(t) for t in args.tables.split(",") if t}
    graphs = {int(g) for g in args.graphs.split(",") if g}
    benchmarks = [b for b in args.benchmarks.split(",") if b] or None
    try:
        order = (resolve_order(args.order, args.heuristics)
                 if args.order is not None or args.heuristics is not None
                 else None)
    except HeuristicSpecError as exc:
        log.error(exc.oneline())
        return 2
    cache_dir = None if args.no_cache else (
        args.cache or os.environ.get("REPRO_CACHE_DIR") or None)
    if args.jobs < 1:
        log.error("--jobs must be >= 1 (got %d)", args.jobs)
        return 2
    runner = SuiteRunner(benchmarks=benchmarks, strict=not args.degraded,
                         wall_clock_deadline=args.deadline,
                         pc_sample_interval=args.hot_pc,
                         optimize=not args.no_opt,
                         parallelism=args.jobs, cache_dir=cache_dir,
                         engine=args.engine)

    if args.telemetry is not None:
        sink = telemetry.Telemetry()
        scope = telemetry.use(sink)
    else:
        sink = None
        scope = contextlib.nullcontext()

    start = time.time()
    generators = {
        1: lambda: table1(runner).render(),
        2: lambda: table2(runner).render(),
        3: lambda: table3(runner).render(),
        4: lambda: table4(runner).render(),
        5: lambda: table5(runner, order=order).render(),
        6: lambda: table6(runner, order=order).render(),
        7: lambda: table7(runner, order=order).render(),
    }
    if order is not None:
        log.info("heuristic order: %s", " -> ".join(order))
    try:
        with scope, telemetry.get().span(
                "report", category="harness",
                tables=sorted(tables), graphs=sorted(graphs)):
            for number in sorted(tables):
                print(generators[number]())
                print()

            if 1 in graphs:
                print(graph1(runner).describe())
                print()
            if 2 in graphs or 3 in graphs:
                print(graphs2_3(runner).describe())
                print()
            if graphs & set(range(4, 12)):
                seq = tuple(n for n in SEQUENCE_BENCHMARKS
                            if benchmarks is None or n in benchmarks)
                for sg in graphs4_11(runner, benchmarks=seq):
                    print(sg.describe())
                print()
            if 12 in graphs:
                family = graph12()
                print("Graph 12 model: f(m,100) for m=0.025..0.30:")
                for m, curve in family.items():
                    print(f"  m={m:.3f}: f(100)={curve[-1]:.3f}")
                print()
            if 13 in graphs:
                print(graph13(runner).describe())

            if args.range_table:
                from repro.harness.evidence import evidence_table
                print()
                print(evidence_table(runner).render())
            if args.scev_table:
                from repro.harness.scev_report import scev_table
                print()
                print(scev_table(runner).render())
            if args.loop_shape_table:
                from repro.harness.scev_report import loop_shape_table
                print()
                print(loop_shape_table(runner).render())
            if args.corpus_table:
                from repro.harness.corpus_report import corpus_table
                try:
                    rendered = corpus_table(
                        args.corpus_table, jobs=args.jobs,
                        cache_dir=cache_dir, engine=args.engine)
                except ValueError as exc:
                    log.error(str(exc))
                    return 2
                print()
                print(rendered)
    except ReproError as exc:
        log.error(exc.oneline())
        return 1

    # degraded mode: summarize any failures in the footer but still exit 0
    # (the report was produced — that is the point of fault isolation)
    failures = [oc for oc in runner._run_failures.values()]
    if runner._skipped:
        failures += [runner.outcome(name) for name in runner._skipped
                     if name in runner.benchmark_names]
    for outcome in failures:
        log.warning(outcome.describe())

    if runner.cache is not None:
        stats = runner.cache.stats()
        log.info("artifact cache: %d hits, %d misses, %d stores, "
                 "%d corrupt, %d entries on disk", stats["hits"],
                 stats["misses"], stats["stores"], stats["corrupt"],
                 stats["entries"])

    if sink is not None:
        config = {
            "benchmarks": sorted(runner.benchmark_names),
            "tables": sorted(tables), "graphs": sorted(graphs),
            "degraded": args.degraded, "deadline": args.deadline,
            "hot_pc": args.hot_pc,
            "order": list(order) if order is not None else None,
            "optimize": not args.no_opt,
            "max_instructions": runner.max_instructions,
            "jobs": args.jobs,
            "cache": cache_dir,
            "engine": args.engine,
        }
        paths = telemetry.write_report(sink, args.telemetry, config=config)
        log.info("telemetry report written to %s (%s)", args.telemetry,
                 ", ".join(sorted(paths)))

    log.info("done in %.1fs", time.time() - start)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
