"""SCEV trip-count verification (``--scev-table``) and the loop-shape
ablation (``--loop-shape-table``).

``--scev-table`` is the ground-truth check for the scalar-evolution
analysis (:mod:`repro.analysis.scev`): each benchmark is compiled
fold-free (so proven loops survive into the executable), every counted
loop's exit test is mapped to its machine branch, and the SCEV-predicted
trip count is compared against the observed edge profile.  For an exact
single-exit loop the prediction is an identity — the test must record
``trips`` continue edges per exit edge — and for an interval-bounded
loop a containment, ``min * entries <= continues <= max * entries``.
The ``bad`` column counts violations and **must be zero**: a wrong trip
count would poison the "likely" branch facts built on it.

``--loop-shape-table`` is the differential for the loop-shape passes
(:mod:`repro.analysis.loopshape`): each benchmark is built four ways —
the default rotated ``-O1``, the top-tested front end
(``rotate_loops=False``), top-tested plus the ``loop-rotate`` pass, and
rotated plus ``loop-unrotate`` — and all four outputs must be
byte-identical.  The miss-rate columns show why rotation is the default:
the paper's Loop heuristic predicts the shared latch test of a rotated
loop far better than the duplicated head test of a top-tested one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.branches import analyze_branch_evidence
from repro.analysis.interproc import seed_interprocedural_ranges
from repro.analysis.loopshape import loop_rotate, loop_unrotate
from repro.analysis.scev import LoopTrip, SCEVInfo
from repro.bcc.driver import compile_and_link, compile_to_ir
from repro.bcc.ir import CBr, IRFunction
from repro.bcc.opt import IR_ANALYSES, O1_PASSES
from repro.bench.suite import get
from repro.core.classify import classify_branches
from repro.core.evaluation import evaluate_predictor
from repro.core.predictors import HeuristicPredictor
from repro.harness.evidence import NO_FOLD_PASSES
from repro.harness.report import TextTable
from repro.harness.runner import SuiteRunner
from repro.sim import Machine
from repro.sim.profile import EdgeProfile

__all__ = [
    "TripCheck", "ScevRow", "ScevTable", "scev_row", "scev_table",
    "LoopShapeRow", "LoopShapeTable", "loop_shape_row", "loop_shape_table",
]


@dataclass(frozen=True)
class TripCheck:
    """One counted loop's prediction checked against the edge profile."""

    function: str
    test_block: str
    trip: LoopTrip
    address: int
    executions: int     #: times the machine exit test ran
    continues: int      #: times it went the in-loop direction
    exits: int          #: times it left the loop (= entries, single-exit)
    ok: bool

    @property
    def executed(self) -> bool:
        return self.executions > 0


def _test_ordinals(func: IRFunction) -> dict[str, tuple[int, bool]]:
    """test-block label -> (CBr ordinal, emitted-branch inverted flag).

    Replicates the codegen branch-selection contract (the *k*-th ``CBr``
    in block order becomes the *k*-th conditional branch instruction,
    inverted exactly when the true-label is the fall-through block) —
    the same mapping :func:`repro.analysis.branches.attach_evidence`
    cross-checks against the assembled executable.
    """
    out: dict[str, tuple[int, bool]] = {}
    ordinal = 0
    epilogue = f"{func.name}__epilogue"
    for i, block in enumerate(func.blocks):
        if not block.instructions:
            continue
        term = block.terminator
        if not isinstance(term, CBr):
            continue
        next_label = (func.blocks[i + 1].label
                      if i + 1 < len(func.blocks) else epilogue)
        out[block.label] = (ordinal, term.true_label == next_label)
        ordinal += 1
    return out


def _check_trip(trip: LoopTrip, address: int, inverted: bool,
                profile: EdgeProfile, function: str,
                test_block: str) -> TripCheck:
    """Compare one trip prediction against the observed edge counts.

    Only meaningful for ``single_exit`` loops, where every loop entry is
    observable as exactly one exit edge of this test: *n* entries must
    record ``trips * n`` continues for an exact count, and between
    ``min * n`` and ``max * n`` for an interval one.
    """
    executions = profile.execution_count(address)
    continue_taken = trip.continue_on != inverted
    continues = (profile.taken_count(address) if continue_taken
                 else profile.not_taken_count(address))
    exits = executions - continues
    if trip.exact:
        ok = continues == trip.min_trips * exits
    else:
        ok = continues >= trip.min_trips * exits and \
            (trip.max_trips is None or continues <= trip.max_trips * exits)
    return TripCheck(function=function, test_block=test_block, trip=trip,
                     address=address, executions=executions,
                     continues=continues, exits=exits, ok=ok)


def trip_checks(name: str, max_instructions: int = 100_000_000,
                dataset: str = "ref") -> list[TripCheck]:
    """Every verifiable (single-exit) counted loop of *name*, checked.

    Compiles the benchmark fold-free twice — once to a linked executable
    for the ground-truth run, once to IR for the scalar-evolution
    results (the compile is deterministic, so both see the same
    program) — and maps each counted loop's exit test to its machine
    branch through the codegen replication contract.
    """
    benchmark = get(name)
    source = benchmark.source()
    executable = compile_and_link(source, filename=f"{name}.blc",
                                  passes=NO_FOLD_PASSES)
    program = compile_to_ir(source, filename=f"{name}.blc",
                            passes=NO_FOLD_PASSES)
    seed_interprocedural_ranges(program)

    profile = EdgeProfile()
    ds = benchmark.dataset(dataset)
    Machine(executable, inputs=list(ds.inputs), observers=[profile],
            max_instructions=max_instructions).run()

    addresses = {
        proc.name: [inst.address for inst in proc.instructions
                    if inst.is_conditional_branch]
        for proc in executable.procedures}
    checks: list[TripCheck] = []
    for func in program.functions:
        info: SCEVInfo = IR_ANALYSES.manager(func).get("scev")
        if not info.trips:
            continue
        proc_addresses = addresses.get(func.name)
        if proc_addresses is None:
            continue
        ordinals = _test_ordinals(func)
        for test_block, trip in sorted(info.trips.items()):
            if not trip.single_exit:
                continue  # break-style exits: entries are not observable
            ordinal, inverted = ordinals[test_block]
            checks.append(_check_trip(trip, proc_addresses[ordinal],
                                      inverted, profile, func.name,
                                      test_block))
    return checks


@dataclass
class ScevRow:
    """Per-benchmark scalar-evolution statistics and trip verification."""

    name: str
    loops: int              #: natural loops over all functions
    counted: int            #: loops with a classified exit test
    exact: int              #: of those, exact closed-form trip counts
    decided_scev: int       #: branch facts the SCEV evidence decided
    checked: int            #: single-exit counted loops verified
    executed: int           #: of those, with at least one execution
    mismatched: int         #: predictions the profile contradicts (== 0!)


@dataclass
class ScevTable:
    """All rows plus the aggregate, renderable in the harness style."""

    rows: list[ScevRow]

    def render(self) -> str:
        table = TextTable(
            ["benchmark", "loops", "counted", "exact", "scev dec",
             "checked", "exec", "bad"],
            title="SCEV trip counts: predicted vs observed back-edge "
                  "counts (ref dataset, fold disabled)")
        for row in self.rows:
            table.add_row(row.name, row.loops, row.counted, row.exact,
                          row.decided_scev, row.checked, row.executed,
                          row.mismatched)
        table.add_separator()
        table.add_row("all", sum(r.loops for r in self.rows),
                      sum(r.counted for r in self.rows),
                      sum(r.exact for r in self.rows),
                      sum(r.decided_scev for r in self.rows),
                      sum(r.checked for r in self.rows),
                      sum(r.executed for r in self.rows),
                      sum(r.mismatched for r in self.rows))
        rendered = table.render()
        rendered += ("\n(bad must be 0: every exact count is an identity "
                     "against the profile, every interval a containment)")
        return rendered


def scev_row(name: str, max_instructions: int = 100_000_000,
             dataset: str = "ref") -> ScevRow:
    """Compute the per-benchmark SCEV statistics row."""
    checks = trip_checks(name, max_instructions=max_instructions,
                         dataset=dataset)
    benchmark = get(name)
    program = compile_to_ir(benchmark.source(), filename=f"{name}.blc",
                            passes=NO_FOLD_PASSES)
    evidence = analyze_branch_evidence(program)
    loops = counted = exact = 0
    for func in program.functions:
        info: SCEVInfo = IR_ANALYSES.manager(func).get("scev")
        loops += len(info.nest.loops)
        counted += len(info.trips)
        exact += sum(1 for t in info.trips.values() if t.exact)
    return ScevRow(
        name=name, loops=loops, counted=counted, exact=exact,
        decided_scev=sum(1 for f in evidence.facts()
                         if f.source == "scev"),
        checked=len(checks),
        executed=sum(1 for c in checks if c.executed),
        mismatched=sum(1 for c in checks if not c.ok))


def scev_table(runner: SuiteRunner) -> ScevTable:
    """The full SCEV verification table over *runner*'s suite."""
    return ScevTable([scev_row(name,
                               max_instructions=runner.max_instructions)
                      for name in runner.benchmark_names])


# ---------------------------------------------------------------------------
# loop-shape ablation


#: the four builds of the differential: (row label, rotate_loops, extra
#: passes appended to the ``-O1`` pipeline)
_VARIANTS: tuple[tuple[str, bool, tuple[str, ...]], ...] = (
    ("rotated", True, ()),
    ("toptest", False, ()),
    ("toptest+rotate", False, ("loop-rotate",)),
    ("rotated+unrotate", True, ("loop-unrotate",)),
)


@dataclass
class LoopShapeRow:
    """Per-benchmark loop-shape differential and miss-rate comparison."""

    name: str
    rotated_functions: int      #: functions loop-rotate changed
    unrotated_functions: int    #: functions loop-unrotate changed
    outputs_identical: bool     #: all four variants, byte-for-byte
    rotated_loop_miss: float    #: BL chain on loop branches, rotated
    toptest_loop_miss: float    #: same, top-tested front end


@dataclass
class LoopShapeTable:
    """All rows, renderable in the harness style."""

    rows: list[LoopShapeRow]

    def render(self) -> str:
        table = TextTable(
            ["benchmark", "rot fns", "unrot fns", "outputs",
             "loop BL% rot", "loop BL% top"],
            title="Loop-shape ablation: rotate/unrotate differential and "
                  "the Loop heuristic's miss rate per shape (ref dataset)")
        for row in self.rows:
            table.add_row(
                row.name, row.rotated_functions, row.unrotated_functions,
                "OK" if row.outputs_identical else "DIFF",
                f"{100 * row.rotated_loop_miss:.1f}",
                f"{100 * row.toptest_loop_miss:.1f}")
        rendered = table.render()
        rendered += ("\n(outputs must all be OK: the loop-shape passes and "
                     "the front-end rotation are semantics-preserving)")
        return rendered


def _loop_miss(executable: object, profile: EdgeProfile) -> float:
    """Paper-chain miss rate over the loop branches of one build."""
    analysis = classify_branches(executable)
    loop = [b.address for b in analysis.loop_branches()]
    return evaluate_predictor(HeuristicPredictor(analysis), profile,
                              loop).miss_rate


def loop_shape_row(name: str,
                   max_instructions: int = 100_000_000,
                   dataset: str = "ref") -> LoopShapeRow:
    """Build all four variants of *name*, compare outputs, score loops."""
    benchmark = get(name)
    source = benchmark.source()
    ds = benchmark.dataset(dataset)

    outputs: list[str] = []
    misses: dict[str, float] = {}
    for label, rotate, extra in _VARIANTS:
        executable = compile_and_link(
            source, filename=f"{name}.blc", rotate_loops=rotate,
            passes=O1_PASSES + extra)
        profile = EdgeProfile()
        machine = Machine(executable, inputs=list(ds.inputs),
                          observers=[profile],
                          max_instructions=max_instructions)
        machine.run()
        outputs.append(machine.output)
        if label in ("rotated", "toptest"):
            misses[label] = _loop_miss(executable, profile)

    toptest_ir = compile_to_ir(source, filename=f"{name}.blc",
                               rotate_loops=False)
    rotated = sum(1 for f in toptest_ir.functions if loop_rotate(f))
    rotated_ir = compile_to_ir(source, filename=f"{name}.blc")
    unrotated = sum(1 for f in rotated_ir.functions if loop_unrotate(f))

    return LoopShapeRow(
        name=name, rotated_functions=rotated,
        unrotated_functions=unrotated,
        outputs_identical=len(set(outputs)) == 1,
        rotated_loop_miss=misses["rotated"],
        toptest_loop_miss=misses["toptest"])


def loop_shape_table(runner: SuiteRunner) -> LoopShapeTable:
    """The full loop-shape ablation table over *runner*'s suite."""
    return LoopShapeTable([
        loop_shape_row(name, max_instructions=runner.max_instructions)
        for name in runner.benchmark_names])
