"""The range-evidence ablation table (``--range-table``).

Quantifies how much of the perfect-static gap the *semantic* branch
analysis (SCCP + interval ranges, :mod:`repro.analysis`) closes beyond
the paper's local syntactic heuristics.

Methodology
-----------

Each benchmark is recompiled with the ``sccp-fold`` pass **removed** from
the pipeline and the branch-evidence analysis attached: the optimizer
normally deletes every branch it can prove, so to *measure* the proofs as
predictions the proven branches must survive into the executable.  The
remaining passes are the seed ``-O1`` pipeline, so the branch population
matches the pre-static-analysis repo.

Per benchmark (ref dataset) the table reports:

* ``cond``     — conditional branch instructions in the text segment;
* ``dec``      — branches the analysis decided (always/never-taken), with
  the SCCP/range/SCEV attribution split;
* ``exec dec`` — decided branches that executed at least once;
* ``bad``      — decided-and-executed branches whose ground-truth edge
  profile contradicts the claim.  **Soundness gate: this column must be
  zero everywhere** (the test suite enforces it);
* ``BL``/``+Range``/``perf`` — non-loop dynamic miss rates of the paper's
  heuristic chain, the same chain with ``Range`` consulted first, and the
  perfect static predictor;
* ``gap%``     — the fraction of the BL-to-perfect gap the evidence
  closed, ``(BL - (+Range)) / (BL - perf)``.

The ``Range`` heuristic itself is registered outside the measured set
(like ``ExtGuard``), so Tables 1-7 are byte-identical with or without
this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bcc.driver import compile_and_link
from repro.bench.suite import get
from repro.core.classify import ProgramAnalysis, classify_branches
from repro.core.evaluation import evaluate_predictor
from repro.core.predictors import HeuristicPredictor, PerfectPredictor
from repro.core.registry import HEURISTIC_REGISTRY
from repro.errors import ReproError
from repro.harness.report import TextTable
from repro.harness.runner import SuiteRunner
from repro.sim import Machine
from repro.sim.profile import EdgeProfile

__all__ = ["EvidenceRow", "EvidenceTable", "evidence_row", "evidence_table",
           "NO_FOLD_PASSES"]

#: the seed ``-O1`` pipeline — ``sccp-fold`` removed so proven branches
#: survive into the executable and can be *predicted* instead of deleted
NO_FOLD_PASSES = "local-propagate,simplify-cfg,dce,copy-coalesce"


class EvidenceValidationError(ReproError):
    """A static always/never-taken claim contradicted the edge profile."""

    phase = "analyze"


@dataclass
class EvidenceRow:
    """Per-benchmark evidence statistics and ablation miss rates."""

    name: str
    conditional_branches: int
    decided: int
    decided_sccp: int
    decided_range: int
    decided_scev: int
    executed_decided: int
    misclassified: int          #: must be 0 (soundness gate)
    bl_miss: float              #: paper chain, non-loop branches
    range_miss: float           #: Range-first chain, non-loop branches
    perfect_miss: float

    @property
    def gap_closed(self) -> float | None:
        """Fraction of the BL-to-perfect gap closed by the evidence."""
        gap = self.bl_miss - self.perfect_miss
        if gap <= 0:
            return None
        return (self.bl_miss - self.range_miss) / gap


@dataclass
class EvidenceTable:
    """All rows plus the aggregate, renderable in the harness style."""

    rows: list[EvidenceRow]

    def render(self) -> str:
        table = TextTable(
            ["benchmark", "cond", "dec", "sccp", "range", "scev",
             "exec dec", "bad", "BL%", "+Range%", "perf%", "gap%"],
            title="Range evidence: semantic always/never-taken facts vs "
                  "the syntactic heuristic chain (non-loop branches, ref "
                  "dataset, fold disabled)")
        for row in self.rows:
            gap = row.gap_closed
            table.add_row(
                row.name, row.conditional_branches, row.decided,
                row.decided_sccp, row.decided_range, row.decided_scev,
                row.executed_decided, row.misclassified,
                f"{100 * row.bl_miss:.1f}", f"{100 * row.range_miss:.1f}",
                f"{100 * row.perfect_miss:.1f}",
                "-" if gap is None else f"{100 * gap:.0f}")
        table.add_separator()
        total_decided = sum(r.decided for r in self.rows)
        total_bad = sum(r.misclassified for r in self.rows)
        gaps = [r.gap_closed for r in self.rows if r.gap_closed is not None]
        mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
        table.add_row(
            "all", sum(r.conditional_branches for r in self.rows),
            total_decided, sum(r.decided_sccp for r in self.rows),
            sum(r.decided_range for r in self.rows),
            sum(r.decided_scev for r in self.rows),
            sum(r.executed_decided for r in self.rows), total_bad,
            "", "", "", f"{100 * mean_gap:.0f}")
        rendered = table.render()
        rendered += ("\n(misclassifications must be 0: every exported fact "
                     "is validated against the ground-truth edge profile)")
        return rendered


def _validate(evidence, profile: EdgeProfile,
              benchmark: str) -> tuple[int, int]:
    """(executed decided, misclassified) over ground-truth edge counts.

    "always" facts tolerate zero contradicting executions.  "likely"
    facts (SCEV trip-count majorities) promise only that the claimed
    direction is at least the perfect static predictor's pick: a
    taken-claim must see ``wrong <= right`` (the perfect predictor
    breaks exact ties toward taken), a not-taken-claim ``wrong < right``.
    """
    executed = 0
    bad = 0
    for address, fact in evidence.by_address.items():
        if fact.taken is None or profile.execution_count(address) == 0:
            continue
        executed += 1
        wrong = (profile.not_taken_count(address) if fact.taken
                 else profile.taken_count(address))
        if fact.mode == "likely":
            right = profile.execution_count(address) - wrong
            if (wrong > right) if fact.taken else (wrong >= right):
                bad += 1
        elif wrong:
            bad += 1
    if bad:
        raise EvidenceValidationError(
            f"{bad} static branch claim(s) contradicted the edge profile",
            benchmark=benchmark)
    return executed, bad


def evidence_row(name: str, max_instructions: int = 100_000_000,
                 dataset: str = "ref") -> EvidenceRow:
    """Compile *name* fold-free with evidence attached, run, and score."""
    benchmark = get(name)
    ds = benchmark.dataset(dataset)
    executable = compile_and_link(
        benchmark.source(), filename=f"{name}.blc",
        passes=NO_FOLD_PASSES, attach_evidence=True)
    evidence = executable.branch_evidence  # set by attach_evidence=True
    analysis: ProgramAnalysis = classify_branches(executable)
    profile = EdgeProfile()
    machine = Machine(executable, inputs=list(ds.inputs),
                      observers=[profile],
                      max_instructions=max_instructions)
    machine.run()

    executed, bad = _validate(evidence, profile, name)
    facts = evidence.evidence.decided_facts()
    non_loop = [b.address for b in analysis.non_loop_branches()]
    paper = HEURISTIC_REGISTRY.paper_order()
    bl = evaluate_predictor(HeuristicPredictor(analysis), profile, non_loop)
    with_range = evaluate_predictor(
        HeuristicPredictor(analysis, order=("Range",) + paper),
        profile, non_loop)
    perfect = evaluate_predictor(PerfectPredictor(analysis, profile),
                                 profile, non_loop)
    return EvidenceRow(
        name=name,
        conditional_branches=len(evidence.by_address),
        decided=len(facts),
        decided_sccp=sum(1 for f in facts if f.source == "sccp"),
        decided_range=sum(1 for f in facts if f.source == "range"),
        decided_scev=sum(1 for f in facts if f.source == "scev"),
        executed_decided=executed,
        misclassified=bad,
        bl_miss=bl.miss_rate,
        range_miss=with_range.miss_rate,
        perfect_miss=perfect.miss_rate)


def evidence_table(runner: SuiteRunner) -> EvidenceTable:
    """The full range-evidence ablation table over *runner*'s suite."""
    rows = [evidence_row(name, max_instructions=runner.max_instructions)
            for name in runner.benchmark_names]
    return EvidenceTable(rows)
