"""Plain-text table rendering for the harness (paper-style output)."""

from __future__ import annotations

import math

__all__ = ["TextTable", "pct", "cd_cell", "mean_std"]


def pct(fraction: float) -> str:
    """Render a fraction as a whole-number percentage, the paper's style."""
    return f"{100 * fraction:.0f}"


def cd_cell(miss: float, perfect: float) -> str:
    """The paper's C/D cell: predictor miss % / perfect miss %."""
    return f"{pct(miss)}/{pct(perfect)}"


def mean_std(values: list[float]) -> tuple[float, float]:
    """Mean and (population) standard deviation, 0s for empty input."""
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


class TextTable:
    """Minimal fixed-width text table builder."""

    def __init__(self, columns: list[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []
        self._separators: set[int] = set()

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([str(c) for c in cells])

    def add_separator(self) -> None:
        self._separators.add(len(self.rows))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                             for i, (c, w) in enumerate(zip(cells, widths)))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.columns))
        lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        for index, row in enumerate(self.rows):
            if index in self._separators:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
            lines.append(fmt(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
