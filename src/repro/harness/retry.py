"""Unified retry / backoff policy for every execution engine.

Historically the serial :class:`~repro.harness.runner.SuiteRunner` and the
parallel shard worker (:func:`repro.harness.parallel.run_shard`) each
carried their own copy of the transient-failure classification ("a fuel
limit is worth one retry at a raised budget; a wall-clock timeout is
not").  Two copies of a classification rule is one copy too many: the
moment they drift, serial and parallel runs of the same suite classify
the same failure differently and the byte-identity guarantee silently
dies.  :class:`RetryPolicy` is now the single owner of that rule; the
serial runner, the shard worker, and the prediction service
(:mod:`repro.service`) all consult the same instance semantics.

Two orthogonal retry axes are covered:

*fuel retries*
    A run that exhausts its instruction budget (but **not** a wall-clock
    timeout — retrying cannot beat a wall clock) is re-executed with the
    budget scaled by ``fuel_factor`` per attempt.  This is the
    historical ``retry_fuel_factor`` behavior, byte-identical.

*crash retries*
    The service layer additionally treats a
    :class:`~repro.errors.WorkerCrashError` as transient
    (``retry_worker_crashes=True``): the job is re-dispatched to a
    fresh worker, with exponential backoff, until the policy gives up —
    at which point the job engine quarantines the job as poison.

The policy is a frozen value object so it can ride inside picklable work
orders and be compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ReproError, SimulationLimitExceeded, SimulationTimeout, WorkerCrashError,
)

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """When (and how hard) to retry a failed execution attempt.

    Attempts are numbered from 1.  ``max_attempts=1`` disables retrying
    entirely (the strict-mode behavior).
    """

    #: total attempt budget (first attempt included)
    max_attempts: int = 2
    #: instruction-budget multiplier applied per retry attempt
    fuel_factor: int = 4
    #: also treat worker-process deaths as transient (service layer)
    retry_worker_crashes: bool = False
    #: base sleep before the first retry; 0 disables backoff entirely
    backoff_base_s: float = 0.0
    #: multiplier applied to the backoff per further attempt
    backoff_factor: float = 2.0
    #: hard ceiling on any single backoff sleep
    backoff_max_s: float = 30.0

    @classmethod
    def from_fuel_factor(cls, retry_fuel_factor: int) -> "RetryPolicy":
        """The historical runner semantics for a ``retry_fuel_factor``:
        one retry at ``factor``× fuel when the factor exceeds 1, no
        retry otherwise (strict mode passes an effective factor of 1).
        """
        factor = max(1, int(retry_fuel_factor))
        return cls(max_attempts=2 if factor > 1 else 1, fuel_factor=factor)

    # -- classification --------------------------------------------------------

    def is_transient(self, error: ReproError) -> bool:
        """Whether *error* could plausibly succeed on a retry.

        Fuel exhaustion is transient (a bigger budget may finish);
        a wall-clock timeout is not (retrying cannot beat a wall clock);
        a worker crash is transient only for policies that opted in.
        """
        if isinstance(error, SimulationTimeout):
            return False
        if isinstance(error, SimulationLimitExceeded):
            return True
        if self.retry_worker_crashes and isinstance(error, WorkerCrashError):
            return True
        return False

    def should_retry(self, error: ReproError, attempt: int) -> bool:
        """Whether failed attempt number *attempt* (1-based) deserves
        another try under this policy."""
        return attempt < self.max_attempts and self.is_transient(error)

    # -- schedules -------------------------------------------------------------

    def fuel_scale(self, attempt: int) -> int:
        """Instruction-budget multiplier for attempt *attempt* (1-based):
        1 for the first attempt, ``fuel_factor`` for the second, squared
        for the third, ..."""
        return self.fuel_factor ** (attempt - 1)

    def backoff_s(self, attempt: int) -> float:
        """Seconds to sleep before attempt ``attempt + 1``; 0 when
        backoff is disabled."""
        if self.backoff_base_s <= 0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        return min(self.backoff_max_s, delay)


#: the degraded-mode default: one fuel retry at 4x, no crash retries
DEFAULT_RETRY_POLICY = RetryPolicy()
