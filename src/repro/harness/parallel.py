"""Process-pool execution engine for the experiment harness.

Ball & Larus's methodology is embarrassingly parallel: every (benchmark,
dataset) edge profile is independent of every other.  This module shards
compile+simulate jobs across a :class:`concurrent.futures.ProcessPoolExecutor`
and merges the results back into the parent deterministically:

* each :class:`ShardJob` is a fully self-describing, picklable work order
  (effective inputs/limits after chaos overrides, optimization level,
  cache directory, optionally a pre-seeded or sabotaged executable);
* the worker (:func:`run_shard`) replays exactly the serial runner's
  semantics — typed-error capture, transient-fuel retry, artifact-cache
  consultation — inside a private telemetry sink, and returns a
  :class:`ShardResult` carrying the profile, the compiled artifact, any
  classified failure, and a mergeable telemetry snapshot;
* the parent (:class:`ParallelEngine`) collects results **in submission
  order** regardless of completion order, so downstream table/graph
  output is byte-identical to a serial run (the determinism suite in
  ``tests/test_parallel_runner.py`` enforces this);
* a worker process that dies without returning (killed, OOM, broken
  pool) is converted into a typed
  :class:`~repro.errors.WorkerCrashError` outcome rather than aborting
  the whole report.

Chaos seam: setting the environment variable
``REPRO_CHAOS_WORKER_CRASH=<benchmark>`` makes any worker handed that
benchmark die immediately via ``os._exit`` — how the fault-injection
tests exercise the crash taxonomy without a real segfault.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter, sleep

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.telemetry import tracing as _tracing
from repro.bench.suite import Benchmark, get
from repro.core.classify import ProgramAnalysis, classify_branches
from repro.errors import (
    ReproError, SimulationTimeout, WorkerCrashError, WorkerError,
    WorkerResultError,
)
from repro.harness.cache import ArtifactCache, compile_key, run_key
from repro.harness.resilience import RunStatus, classify_failure
from repro.harness.retry import RetryPolicy
from repro.isa.program import Executable
from repro.sim import Machine, resolve_engine_name
from repro.sim.profile import EdgeProfile
from repro.telemetry.core import Telemetry, TelemetrySnapshot

__all__ = [
    "ShardJob", "ShardResult", "ParallelEngine", "run_shard",
    "compile_artifact", "CHAOS_WORKER_CRASH_ENV", "CHAOS_SLOW_WORKER_ENV",
]

#: environment variable naming a benchmark whose shard worker must die
CHAOS_WORKER_CRASH_ENV = "REPRO_CHAOS_WORKER_CRASH"

#: ``<benchmark>:<seconds>`` (or ``*:<seconds>`` for every benchmark):
#: the matching shard worker sleeps before executing, simulating a
#: wedged / overloaded worker for deadline and supervision tests
CHAOS_SLOW_WORKER_ENV = "REPRO_CHAOS_SLOW_WORKER"


def _chaos_slow_delay(benchmark: str) -> float:
    """Injected pre-execution delay for *benchmark* (0 when none)."""
    spec = os.environ.get(CHAOS_SLOW_WORKER_ENV, "")
    if not spec:
        return 0.0
    target, _, seconds = spec.partition(":")
    if target not in ("*", benchmark):
        return 0.0
    try:
        return max(0.0, float(seconds))
    except ValueError:
        return 0.0


# --------------------------------------------------------------------------
# work orders and results
# --------------------------------------------------------------------------

@dataclass
class ShardJob:
    """One self-contained (benchmark, dataset) compile+simulate order."""

    benchmark: str
    dataset: str
    #: effective input vector (after any chaos/operator truncation)
    inputs: tuple
    #: effective instruction-fuel budget (after overrides)
    fuel_budget: int
    #: 1 disables the transient-fuel retry (strict mode never retries)
    retry_fuel_factor: int = 1
    wall_clock_deadline: float | None = None
    max_memory_bytes: int | None = None
    pc_sample_interval: int | None = None
    optimize: bool = True
    #: execution engine (``"tier0"`` / ``"tier1"`` / ``None`` = resolve
    #: via the chaos/env seams inside the worker)
    engine: str | None = None
    cache_dir: str | None = None
    collect_telemetry: bool = False
    #: pre-compiled (executable, analysis) — skips the compile phase
    preseeded: tuple[Executable, ProgramAnalysis] | None = None
    #: True when *preseeded* is a sabotaged artifact: bypass the cache
    #: entirely (its content does not correspond to the source key)
    poisoned: bool = False
    #: >0: when another tenant holds the writer lease for this run key,
    #: wait up to this long for their entry instead of recomputing
    #: (lock-aware read; the service sets this, batch runs leave it 0)
    lease_wait_s: float = 0.0
    #: distributed-trace identity: non-empty when this shard is one hop
    #: of a service job's trace — the worker activates the context so
    #: its spans (and its telemetry snapshot's span args) join the trace
    trace_id: str = ""
    #: span id of the engine-side exec span this shard parents under
    trace_parent: str = ""


@dataclass
class ShardResult:
    """What one worker hands back: a run, or a classified failure."""

    benchmark: str
    dataset: str
    status: RunStatus
    executable: Executable | None = None
    analysis: ProgramAnalysis | None = None
    profile: EdgeProfile | None = None
    output: str = ""
    instr_count: int = 0
    error: ReproError | None = None
    retried: bool = False
    telemetry: TelemetrySnapshot | None = None
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: wall-clock trace spans recorded inside the worker (compile,
    #: simulate, cache lease-wait) when the job carried a trace_id
    trace: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK


# --------------------------------------------------------------------------
# shared compile helper (used by the worker AND the serial runner)
# --------------------------------------------------------------------------

def compile_artifact(benchmark: Benchmark, optimize: bool = True,
                     cache: ArtifactCache | None = None,
                     ) -> tuple[Executable, ProgramAnalysis]:
    """Compile + classify *benchmark*, consulting the artifact cache.

    Raises the typed error on failure (annotated ``phase="compile"``);
    deterministic compile failures are negative-cached on disk so a
    broken benchmark costs one compile per cache lifetime, not one per
    invocation.
    """
    tm = _telemetry.get()
    key = None
    if cache is not None:
        key = compile_key(benchmark.name, benchmark.source(), optimize,
                          version=cache.version)
        entry = cache.get(key, "compile")
        if entry is not None:
            if entry.get("ok"):
                return entry["artifact"]
            raise entry["error"]
    try:
        with tm.span("compile", category="harness",
                     benchmark=benchmark.name, optimize=optimize):
            executable = benchmark.compile(optimize=optimize)
            with tm.span("analyze", category="harness",
                         benchmark=benchmark.name):
                analysis = classify_branches(executable)
    except ReproError as exc:
        exc.with_context(benchmark=benchmark.name, phase="compile")
        if cache is not None:
            cache.put(key, "compile", {"ok": False, "error": exc})
        raise
    except Exception as exc:
        wrapped = ReproError(
            f"compile failed: {type(exc).__name__}: {exc}",
            benchmark=benchmark.name, phase="compile")
        if cache is not None:
            cache.put(key, "compile", {"ok": False, "error": wrapped})
        raise wrapped from exc
    if cache is not None:
        cache.put(key, "compile", {"ok": True,
                                   "artifact": (executable, analysis)})
    return executable, analysis


def _cacheable_failure(error: ReproError) -> bool:
    """Deterministic failures only: wall-clock timeouts and engine-side
    worker errors are functions of the machine, not of the key."""
    return not isinstance(error, (SimulationTimeout, WorkerError))


# --------------------------------------------------------------------------
# the worker
# --------------------------------------------------------------------------

def run_shard(job: ShardJob) -> ShardResult:
    """Worker entry point: execute one shard inside a private telemetry
    sink and return a picklable result (never raises for pipeline
    failures — those come back classified)."""
    if os.environ.get(CHAOS_WORKER_CRASH_ENV) == job.benchmark:
        # chaos seam: simulate a hard worker death (no cleanup, no result)
        os._exit(17)
    delay = _chaos_slow_delay(job.benchmark)
    if delay > 0:
        sleep(delay)
    # Re-join the distributed trace on this side of the fork: spans the
    # worker records (and the trace_id tags on its telemetry snapshot's
    # spans) parent under the engine-side exec span named by the job.
    ctx = None
    if job.trace_id:
        ctx = _tracing.TraceContext(trace_id=job.trace_id,
                                    span_id=job.trace_parent)
    sink = Telemetry(enabled=job.collect_telemetry)
    with _telemetry.use(sink):
        with _tracing.activate(ctx, process=f"worker:{os.getpid()}") as spans:
            result = _run_shard_inner(job)
    if job.collect_telemetry:
        result.telemetry = sink.snapshot()
    result.trace = spans
    return result


def _failure(job: ShardJob, error: ReproError,
             cache: ArtifactCache | None, rkey: str | None = None,
             retried: bool = False) -> ShardResult:
    status = classify_failure(error)
    # every worker-side failure ships the worker's black box (no-op if a
    # deeper layer — e.g. the simulator's crash snapshot — already did)
    error.attach_flight(_flight.dump())
    if (cache is not None and rkey is not None
            and _cacheable_failure(error)):
        cache.put(rkey, "run", {"ok": False, "error": error,
                                "retried": retried})
    return ShardResult(
        benchmark=job.benchmark, dataset=job.dataset, status=status,
        error=error, retried=retried,
        cache_stats=cache.stats() if cache is not None else {})


def _simulate(job: ShardJob, executable: Executable,
              budget: int, tm) -> tuple[EdgeProfile, object]:
    profile = EdgeProfile()
    with tm.span("simulate", category="harness", benchmark=job.benchmark,
                 dataset=job.dataset):
        machine = Machine(
            executable, inputs=list(job.inputs), observers=[profile],
            max_instructions=budget,
            wall_clock_deadline=job.wall_clock_deadline,
            max_memory_bytes=job.max_memory_bytes,
            pc_sample_interval=job.pc_sample_interval,
            engine=job.engine)
        status = machine.run()
    return profile, status


def _run_shard_inner(job: ShardJob) -> ShardResult:
    tm = _telemetry.get()
    cache = (ArtifactCache(job.cache_dir)
             if job.cache_dir and not job.poisoned else None)
    with tm.span(f"run:{job.benchmark}/{job.dataset}", category="harness",
                 benchmark=job.benchmark, dataset=job.dataset, shard=True):
        # -- compile (or adopt the pre-seeded / sabotaged artifact) ----------
        try:
            with _tracing.span("worker.compile", "worker",
                               benchmark=job.benchmark):
                if job.preseeded is not None:
                    executable, analysis = job.preseeded
                else:
                    executable, analysis = compile_artifact(
                        get(job.benchmark), optimize=job.optimize,
                        cache=cache)
        except ReproError as exc:
            return _failure(job, exc, cache)
        except Exception as exc:  # unknown benchmark, etc.
            wrapped = ReproError(
                f"shard setup failed: {type(exc).__name__}: {exc}",
                benchmark=job.benchmark, dataset=job.dataset,
                phase="compile")
            return _failure(job, wrapped, cache)

        # -- consult the run cache -------------------------------------------
        rkey = None
        if cache is not None:
            ckey = compile_key(job.benchmark, get(job.benchmark).source(),
                               job.optimize, version=cache.version)
            rkey = run_key(ckey, job.dataset, job.inputs, job.fuel_budget,
                           job.max_memory_bytes, job.retry_fuel_factor,
                           version=cache.version,
                           engine=resolve_engine_name(job.engine))
            if job.lease_wait_s > 0:
                with _tracing.span("cache.lease_wait", "cache",
                                   benchmark=job.benchmark,
                                   dataset=job.dataset):
                    entry = cache.get_or_wait(rkey, "run",
                                              timeout_s=job.lease_wait_s)
            else:
                entry = cache.get(rkey, "run")
            if entry is not None:
                if entry.get("ok"):
                    return ShardResult(
                        benchmark=job.benchmark, dataset=job.dataset,
                        status=RunStatus.OK, executable=executable,
                        analysis=analysis, profile=entry["profile"],
                        output=entry["output"],
                        instr_count=entry["instr_count"],
                        retried=entry.get("retried", False),
                        cache_stats=cache.stats())
                return ShardResult(
                    benchmark=job.benchmark, dataset=job.dataset,
                    status=classify_failure(entry["error"]),
                    error=entry["error"],
                    retried=entry.get("retried", False),
                    cache_stats=cache.stats())

        # -- execute (same RetryPolicy semantics as the serial runner) -------
        policy = RetryPolicy.from_fuel_factor(job.retry_fuel_factor)
        attempt = 1
        while True:
            try:
                with _tracing.span("worker.simulate", "worker",
                                   benchmark=job.benchmark,
                                   dataset=job.dataset, attempt=attempt):
                    profile, status = _simulate(
                        job, executable,
                        job.fuel_budget * policy.fuel_scale(attempt), tm)
                break
            except ReproError as exc:
                exc.with_context(benchmark=job.benchmark,
                                 dataset=job.dataset)
                if not policy.should_retry(exc, attempt):
                    return _failure(job, exc, cache, rkey,
                                    retried=attempt > 1)
                attempt += 1
                tm.counter("harness.retries").inc()
                _flight.record("shard.retry", benchmark=job.benchmark,
                               dataset=job.dataset, attempt=attempt,
                               error=exc.code)
        retried = attempt > 1

        if cache is not None:
            cache.put(rkey, "run", {
                "ok": True, "profile": profile, "output": status.output,
                "instr_count": status.instr_count, "retried": retried})
        return ShardResult(
            benchmark=job.benchmark, dataset=job.dataset,
            status=RunStatus.OK, executable=executable, analysis=analysis,
            profile=profile, output=status.output,
            instr_count=status.instr_count, retried=retried,
            cache_stats=cache.stats() if cache is not None else {})


# --------------------------------------------------------------------------
# the engine
# --------------------------------------------------------------------------

class ParallelEngine:
    """Shards :class:`ShardJob` orders across a process pool.

    Parameters
    ----------
    jobs:
        Worker-process count (capped at the job count per batch).
    start_method:
        Multiprocessing start method; defaults to ``fork`` where
        available (instant workers, no re-import) and falls back to the
        platform default otherwise.

    Determinism: :meth:`execute` returns results in **submission order**
    regardless of completion order, so callers that merge sequentially
    observe the same ordering a serial runner would produce.
    """

    def __init__(self, jobs: int, start_method: str | None = None) -> None:
        self.jobs = max(1, int(jobs))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def execute(self, shard_jobs: list[ShardJob]) -> list[ShardResult]:
        """Run every job; one :class:`ShardResult` per job, in order.

        A worker that dies without returning produces a
        ``WORKER_FAILED`` result wrapping
        :class:`~repro.errors.WorkerCrashError`; an undecodable result
        produces one wrapping :class:`~repro.errors.WorkerResultError`.
        """
        if not shard_jobs:
            return []
        tm = _telemetry.get()
        context = multiprocessing.get_context(self.start_method)
        workers = min(self.jobs, len(shard_jobs))
        start = perf_counter()
        results: list[ShardResult] = []
        with tm.span("parallel:pool", category="harness",
                     jobs=len(shard_jobs), workers=workers,
                     start_method=self.start_method):
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=context) as pool:
                futures = [pool.submit(run_shard, job) for job in shard_jobs]
                for job, future in zip(shard_jobs, futures):
                    results.append(self._collect(job, future, tm))
            # Crash isolation: one worker dying abruptly breaks the whole
            # ProcessPoolExecutor, poisoning every sibling future with
            # BrokenProcessPool.  Retry each crashed shard in its own
            # single-worker pool so innocent shards recover and only the
            # true culprit reports WORKER_FAILED.
            crashed = [i for i, r in enumerate(results)
                       if r.status is RunStatus.WORKER_FAILED
                       and isinstance(r.error, WorkerCrashError)]
            if crashed:
                for i in crashed:
                    results[i] = self._run_isolated(shard_jobs[i], context,
                                                    tm)
        for result in results:
            if (result.status is RunStatus.WORKER_FAILED
                    and isinstance(result.error, WorkerCrashError)):
                tm.counter("harness.parallel.worker_crashes").inc()
        tm.gauge("harness.parallel.batch_seconds").set(
            perf_counter() - start)
        tm.counter("harness.parallel.shards").inc(len(shard_jobs))
        return results

    def _run_isolated(self, job: ShardJob, context, tm) -> ShardResult:
        """Re-run one crashed shard in a dedicated single-worker pool."""
        with tm.span("parallel:isolate", category="harness",
                     benchmark=job.benchmark, dataset=job.dataset):
            with ProcessPoolExecutor(max_workers=1,
                                     mp_context=context) as pool:
                return self._collect(job, pool.submit(run_shard, job), tm)

    @staticmethod
    def _collect(job: ShardJob, future, tm) -> ShardResult:
        try:
            result = future.result()
        except (BrokenProcessPool, OSError) as exc:
            error = WorkerCrashError(
                f"worker process died before returning "
                f"{job.benchmark}/{job.dataset}: "
                f"{type(exc).__name__}: {exc}",
                benchmark=job.benchmark, dataset=job.dataset)
            return ShardResult(benchmark=job.benchmark, dataset=job.dataset,
                               status=RunStatus.WORKER_FAILED, error=error)
        except Exception as exc:
            tm.counter("harness.parallel.result_errors").inc()
            error = WorkerResultError(
                f"worker result for {job.benchmark}/{job.dataset} "
                f"could not be retrieved: {type(exc).__name__}: {exc}",
                benchmark=job.benchmark, dataset=job.dataset)
            return ShardResult(benchmark=job.benchmark, dataset=job.dataset,
                               status=RunStatus.WORKER_FAILED, error=error)
        if (not isinstance(result, ShardResult)
                or result.benchmark != job.benchmark
                or result.dataset != job.dataset):
            tm.counter("harness.parallel.result_errors").inc()
            error = WorkerResultError(
                f"worker returned a malformed result for "
                f"{job.benchmark}/{job.dataset}",
                benchmark=job.benchmark, dataset=job.dataset)
            return ShardResult(benchmark=job.benchmark, dataset=job.dataset,
                               status=RunStatus.WORKER_FAILED, error=error)
        return result
