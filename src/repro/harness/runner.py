"""Suite execution and caching for the experiment harness.

A :class:`BenchmarkRun` bundles everything the table/graph generators need
about one (benchmark, dataset) execution: the compiled executable, the
static :class:`~repro.core.classify.ProgramAnalysis`, and the dynamic
:class:`~repro.sim.profile.EdgeProfile`. :class:`SuiteRunner` memoizes
compilations (per benchmark) and runs (per benchmark x dataset) so that
regenerating all seven tables costs one pass over the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.bench.suite import Benchmark, Dataset, get, suite
from repro.core.classify import ProgramAnalysis, classify_branches
from repro.isa.program import Executable
from repro.sim import Machine
from repro.sim.profile import EdgeProfile

__all__ = ["BenchmarkRun", "SuiteRunner"]

_MAX_INSTRUCTIONS = 100_000_000


@dataclass
class BenchmarkRun:
    """One profiled execution plus its static analysis."""

    benchmark: Benchmark
    dataset: Dataset
    executable: Executable
    analysis: ProgramAnalysis
    profile: EdgeProfile
    output: str
    instr_count: int

    @property
    def name(self) -> str:
        return self.benchmark.name

    @cached_property
    def loop_addresses(self) -> list[int]:
        """Addresses of loop branches (static)."""
        return [b.address for b in self.analysis.loop_branches()]

    @cached_property
    def non_loop_addresses(self) -> list[int]:
        """Addresses of non-loop branches (static)."""
        return [b.address for b in self.analysis.non_loop_branches()]

    @cached_property
    def executed_non_loop(self) -> list[int]:
        return [a for a in self.non_loop_addresses
                if self.profile.execution_count(a) > 0]

    @property
    def dynamic_total(self) -> int:
        return self.profile.total_dynamic_branches

    def dynamic_count(self, addresses) -> int:
        return sum(self.profile.execution_count(a) for a in addresses)

    @property
    def non_loop_fraction(self) -> float:
        """Fraction of dynamic branches that are non-loop (Table 2's %All)."""
        if self.dynamic_total == 0:
            return 0.0
        return self.dynamic_count(self.non_loop_addresses) / self.dynamic_total


class SuiteRunner:
    """Compiles and profiles suite benchmarks on demand, with memoization."""

    def __init__(self, benchmarks: list[str] | None = None,
                 max_instructions: int = _MAX_INSTRUCTIONS) -> None:
        self.benchmark_names = benchmarks or [b.name for b in suite()]
        self.max_instructions = max_instructions
        self._compiled: dict[str, tuple[Executable, ProgramAnalysis]] = {}
        self._runs: dict[tuple[str, str], BenchmarkRun] = {}

    def compiled(self, name: str) -> tuple[Executable, ProgramAnalysis]:
        """The (executable, analysis) pair for *name*, compiled once."""
        if name not in self._compiled:
            executable = get(name).compile()
            self._compiled[name] = (executable,
                                    classify_branches(executable))
        return self._compiled[name]

    def run(self, name: str, dataset: str = "ref") -> BenchmarkRun:
        """Profile one benchmark execution (memoized)."""
        key = (name, dataset)
        if key not in self._runs:
            benchmark = get(name)
            ds = benchmark.dataset(dataset)
            executable, analysis = self.compiled(name)
            profile = EdgeProfile()
            machine = Machine(executable, inputs=list(ds.inputs),
                              observers=[profile],
                              max_instructions=self.max_instructions)
            status = machine.run()
            self._runs[key] = BenchmarkRun(
                benchmark=benchmark, dataset=ds, executable=executable,
                analysis=analysis, profile=profile, output=status.output,
                instr_count=status.instr_count)
        return self._runs[key]

    def all_runs(self, dataset: str = "ref") -> list[BenchmarkRun]:
        """Profiled runs for every benchmark, in suite order."""
        return [self.run(name, dataset) for name in self.benchmark_names]
