"""Suite execution and caching for the experiment harness.

A :class:`BenchmarkRun` bundles everything the table/graph generators need
about one (benchmark, dataset) execution: the compiled executable, the
static :class:`~repro.core.classify.ProgramAnalysis`, and the dynamic
:class:`~repro.sim.profile.EdgeProfile`. :class:`SuiteRunner` memoizes
compilations (per benchmark) and runs (per benchmark x dataset) so that
regenerating all seven tables costs one pass over the suite.

Fault isolation: in the default ``strict=True`` mode any failure propagates
immediately (the historical behavior).  With ``strict=False`` the runner
degrades gracefully instead: each (benchmark, dataset) failure is captured
as a classified :class:`~repro.harness.resilience.RunOutcome`,
negative-cached so later tables don't re-pay for it, retried once at a
raised fuel budget when the failure was a (possibly transient)
instruction-limit, and rendered by the table/graph generators as explicit
``FAILED`` cells.  Failed attempts can never leak partial state: the
:class:`EdgeProfile` and :class:`BenchmarkRun` for an attempt are built
fresh per execution and only published to the memo cache on success.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro import telemetry as _telemetry
from repro.bench.suite import Benchmark, Dataset, get, suite
from repro.core.classify import ProgramAnalysis, classify_branches
from repro.errors import ReproError, SimulationLimitExceeded, SimulationTimeout
from repro.isa.program import Executable
from repro.sim import Machine
from repro.sim.profile import EdgeProfile

__all__ = ["BenchmarkRun", "SuiteRunner"]

_MAX_INSTRUCTIONS = 100_000_000


@dataclass
class BenchmarkRun:
    """One profiled execution plus its static analysis."""

    benchmark: Benchmark
    dataset: Dataset
    executable: Executable
    analysis: ProgramAnalysis
    profile: EdgeProfile
    output: str
    instr_count: int

    @property
    def name(self) -> str:
        return self.benchmark.name

    @cached_property
    def loop_addresses(self) -> list[int]:
        """Addresses of loop branches (static)."""
        return [b.address for b in self.analysis.loop_branches()]

    @cached_property
    def non_loop_addresses(self) -> list[int]:
        """Addresses of non-loop branches (static)."""
        return [b.address for b in self.analysis.non_loop_branches()]

    @cached_property
    def executed_non_loop(self) -> list[int]:
        return [a for a in self.non_loop_addresses
                if self.profile.execution_count(a) > 0]

    @property
    def dynamic_total(self) -> int:
        return self.profile.total_dynamic_branches

    def dynamic_count(self, addresses) -> int:
        return sum(self.profile.execution_count(a) for a in addresses)

    @property
    def non_loop_fraction(self) -> float:
        """Fraction of dynamic branches that are non-loop (Table 2's %All)."""
        if self.dynamic_total == 0:
            return 0.0
        return self.dynamic_count(self.non_loop_addresses) / self.dynamic_total


class SuiteRunner:
    """Compiles and profiles suite benchmarks on demand, with memoization.

    Parameters
    ----------
    benchmarks:
        Subset of suite benchmark names (default: the whole suite).
    max_instructions:
        Per-run instruction-fuel budget.
    strict:
        ``True`` (default): any failure propagates immediately.
        ``False``: failures are captured per (benchmark, dataset) as
        :class:`~repro.harness.resilience.RunOutcome` values, negative-cached,
        and reported as ``FAILED`` cells by the table/graph generators.
    wall_clock_deadline:
        Optional per-run watchdog deadline in seconds (see
        :class:`~repro.sim.Machine`).
    retry_fuel_factor:
        In degraded mode, a run that dies of :class:`SimulationLimitExceeded`
        (fuel, not wall clock) is retried once with this multiple of the
        fuel budget before being declared a timeout.
    pc_sample_interval:
        Forwarded to every :class:`~repro.sim.Machine`: when set, the
        simulator samples a hot-PC histogram at this instruction period
        (off by default).
    optimize:
        ``False`` compiles every benchmark at ``-O0`` (empty pass
        pipeline) — the harness's ``-O0`` smoke mode for checking that
        results are not an artifact of the optimizer.

    Telemetry: each fresh (benchmark, dataset) execution is wrapped in a
    ``run:<benchmark>/<dataset>`` span containing ``compile``/``analyze``
    and ``simulate`` child spans; memo-cache hits and misses, retries, and
    per-status failures are counted under ``harness.*`` (all no-ops unless
    a telemetry sink is installed via :func:`repro.telemetry.install`).
    """

    def __init__(self, benchmarks: list[str] | None = None,
                 max_instructions: int = _MAX_INSTRUCTIONS,
                 strict: bool = True,
                 wall_clock_deadline: float | None = None,
                 retry_fuel_factor: int = 4,
                 pc_sample_interval: int | None = None,
                 optimize: bool = True) -> None:
        self.benchmark_names = benchmarks or [b.name for b in suite()]
        self.max_instructions = max_instructions
        self.strict = strict
        self.wall_clock_deadline = wall_clock_deadline
        self.retry_fuel_factor = retry_fuel_factor
        self.pc_sample_interval = pc_sample_interval
        self.optimize = optimize
        self._compiled: dict[str, tuple[Executable, ProgramAnalysis]] = {}
        self._runs: dict[tuple[str, str], BenchmarkRun] = {}
        # negative caches (degraded mode): compile failures per benchmark,
        # run failures per (benchmark, dataset)
        self._compile_failures: dict[str, ReproError] = {}
        self._run_failures: dict[tuple[str, str], "RunOutcome"] = {}
        # chaos / operator overrides
        self._fuel_overrides: dict[str, int] = {}
        self._input_overrides: dict[str, int] = {}
        self._memory_overrides: dict[str, int] = {}
        self._skipped: dict[str, str] = {}

    # -- compilation -----------------------------------------------------------

    def compiled(self, name: str) -> tuple[Executable, ProgramAnalysis]:
        """The (executable, analysis) pair for *name*, compiled once.

        Raises the (negative-cached) typed error on a broken benchmark —
        degraded-mode callers catch it and render a FAILED cell.
        """
        tm = _telemetry.get()
        if name in self._compile_failures:
            raise self._compile_failures[name]
        if name not in self._compiled:
            tm.counter("harness.compile_cache.miss").inc()
            try:
                with tm.span("compile", category="harness", benchmark=name,
                             optimize=self.optimize):
                    executable = get(name).compile(optimize=self.optimize)
                    with tm.span("analyze", category="harness",
                                 benchmark=name):
                        analysis = classify_branches(executable)
            except ReproError as exc:
                exc.with_context(benchmark=name, phase="compile")
                self._compile_failures[name] = exc
                tm.counter("harness.compile_failures").inc()
                raise
            except Exception as exc:
                wrapped = ReproError(
                    f"compile failed: {type(exc).__name__}: {exc}",
                    benchmark=name, phase="compile")
                self._compile_failures[name] = wrapped
                tm.counter("harness.compile_failures").inc()
                raise wrapped from exc
            self._compiled[name] = (executable, analysis)
        else:
            tm.counter("harness.compile_cache.hit").inc()
        return self._compiled[name]

    # -- execution -------------------------------------------------------------

    def _execute(self, name: str, dataset: str,
                 fuel_scale: int = 1) -> BenchmarkRun:
        """One fresh profiled execution; never caches partial state."""
        try:
            benchmark = get(name)
            ds = benchmark.dataset(dataset)
        except (KeyError, ValueError) as exc:
            raise ReproError(f"unknown benchmark or dataset: {exc}",
                             benchmark=name, dataset=dataset,
                             phase="setup") from exc
        executable, analysis = self.compiled(name)
        inputs = list(ds.inputs)
        keep = self._input_overrides.get(name)
        if keep is not None:
            inputs = inputs[:keep]
        budget = self._fuel_overrides.get(name, self.max_instructions)
        profile = EdgeProfile()
        try:
            # construction can fault too (e.g. the data image exceeds an
            # injected memory budget), so it sits inside the try
            with _telemetry.get().span("simulate", category="harness",
                                       benchmark=name, dataset=dataset):
                machine = Machine(
                    executable, inputs=inputs, observers=[profile],
                    max_instructions=budget * fuel_scale,
                    wall_clock_deadline=self.wall_clock_deadline,
                    max_memory_bytes=self._memory_overrides.get(name),
                    pc_sample_interval=self.pc_sample_interval)
                status = machine.run()
        except ReproError as exc:
            raise exc.with_context(benchmark=name, dataset=dataset)
        return BenchmarkRun(
            benchmark=benchmark, dataset=ds, executable=executable,
            analysis=analysis, profile=profile, output=status.output,
            instr_count=status.instr_count)

    def outcome(self, name: str, dataset: str = "ref") -> "RunOutcome":
        """Run (memoized) and wrap the result in a
        :class:`~repro.harness.resilience.RunOutcome`.

        In strict mode failures propagate; in degraded mode they come back
        as classified, negative-cached failure outcomes.
        """
        from repro.harness.resilience import (
            RunOutcome, RunStatus, classify_failure,
        )
        tm = _telemetry.get()
        key = (name, dataset)
        run = self._runs.get(key)
        if run is not None:
            tm.counter("harness.run_cache.hit").inc()
            return RunOutcome(name, dataset, RunStatus.OK, run=run)
        if name in self._skipped:
            tm.counter("harness.skipped").inc()
            outcome = RunOutcome(name, dataset, RunStatus.SKIPPED)
            if self.strict:
                outcome.require()  # raises
            return outcome
        cached = self._run_failures.get(key)
        if cached is not None:
            tm.counter("harness.run_cache.negative_hit").inc()
            if self.strict:
                raise cached.error
            return cached
        tm.counter("harness.run_cache.miss").inc()
        retried = False
        with tm.span(f"run:{name}/{dataset}", category="harness",
                     benchmark=name, dataset=dataset):
            try:
                run = self._execute(name, dataset)
            except ReproError as exc:
                transient = (isinstance(exc, SimulationLimitExceeded)
                             and not isinstance(exc, SimulationTimeout)
                             and self.retry_fuel_factor > 1)
                if self.strict or not transient:
                    if self.strict:
                        raise
                    outcome = self._failure_outcome(
                        name, dataset, classify_failure(exc), exc)
                    return outcome
                retried = True
                tm.counter("harness.retries").inc()
                try:
                    run = self._execute(name, dataset,
                                        fuel_scale=self.retry_fuel_factor)
                except ReproError as exc2:
                    outcome = self._failure_outcome(
                        name, dataset, classify_failure(exc2), exc2,
                        retried=True)
                    return outcome
        self._runs[key] = run
        return RunOutcome(name, dataset, RunStatus.OK, run=run,
                          retried=retried)

    def _failure_outcome(self, name: str, dataset: str, status,
                         error: ReproError,
                         retried: bool = False) -> "RunOutcome":
        """Build, negative-cache, and count one degraded-mode failure."""
        from repro.harness.resilience import RunOutcome
        tm = _telemetry.get()
        tm.counter("harness.degraded_failures").inc()
        tm.labeled_counter("harness.failures_by_status").inc(status.value)
        outcome = RunOutcome(name, dataset, status, error=error,
                             retried=retried)
        self._run_failures[(name, dataset)] = outcome
        return outcome

    def run(self, name: str, dataset: str = "ref") -> BenchmarkRun:
        """Profile one benchmark execution (memoized); raises on failure."""
        return self.outcome(name, dataset).require()

    def all_outcomes(self, dataset: str = "ref") -> list["RunOutcome"]:
        """Outcomes for every benchmark, in suite order (degraded mode:
        failures come back as FAILED outcomes instead of raising)."""
        return [self.outcome(name, dataset) for name in self.benchmark_names]

    def all_runs(self, dataset: str = "ref") -> list[BenchmarkRun]:
        """Profiled runs for every benchmark, in suite order."""
        return [self.run(name, dataset) for name in self.benchmark_names]

    # -- chaos / operator hooks ------------------------------------------------
    # Seams used by repro.testing.chaos (and operators) to inject faults or
    # bound pathological benchmarks without touching suite definitions.

    def poison_compile(self, name: str, error: ReproError) -> None:
        """Force *name* to fail compilation with *error*."""
        self._compile_failures[name] = error
        self._compiled.pop(name, None)

    def poison_executable(self, name: str, executable: Executable,
                          analysis: ProgramAnalysis) -> None:
        """Replace *name*'s compiled artifact (e.g. with a corrupted one)."""
        self._compiled[name] = (executable, analysis)
        self._compile_failures.pop(name, None)

    def limit_fuel(self, name: str, budget: int) -> None:
        """Override the instruction budget for one benchmark."""
        self._fuel_overrides[name] = budget

    def limit_inputs(self, name: str, keep: int) -> None:
        """Truncate *name*'s dataset inputs to the first *keep* values."""
        self._input_overrides[name] = keep

    def limit_memory(self, name: str, max_bytes: int) -> None:
        """Cap the data-memory budget for one benchmark."""
        self._memory_overrides[name] = max_bytes

    def skip(self, name: str, reason: str = "") -> None:
        """Mark *name* as skipped (renders as FAILED:skipped cells)."""
        self._skipped[name] = reason

    def is_skipped(self, name: str) -> bool:
        return name in self._skipped
