"""Suite execution and caching for the experiment harness.

A :class:`BenchmarkRun` bundles everything the table/graph generators need
about one (benchmark, dataset) execution: the compiled executable, the
static :class:`~repro.core.classify.ProgramAnalysis`, and the dynamic
:class:`~repro.sim.profile.EdgeProfile`. :class:`SuiteRunner` memoizes
compilations (per benchmark) and runs (per benchmark x dataset) so that
regenerating all seven tables costs one pass over the suite.

Fault isolation: in the default ``strict=True`` mode any failure propagates
immediately (the historical behavior).  With ``strict=False`` the runner
degrades gracefully instead: each (benchmark, dataset) failure is captured
as a classified :class:`~repro.harness.resilience.RunOutcome`,
negative-cached so later tables don't re-pay for it, retried once at a
raised fuel budget when the failure was a (possibly transient)
instruction-limit, and rendered by the table/graph generators as explicit
``FAILED`` cells.  Failed attempts can never leak partial state: the
:class:`EdgeProfile` and :class:`BenchmarkRun` for an attempt are built
fresh per execution and only published to the memo cache on success.

Scale-out (this layer's two new seams — see docs/performance.md):

``parallelism=N``
    :meth:`SuiteRunner.all_outcomes` (the entry point of every table and
    graph generator) first *prefetches* all missing (benchmark, dataset)
    shards through :class:`~repro.harness.parallel.ParallelEngine`, a
    process pool whose workers replay exactly the serial semantics and
    whose results are merged back in suite order — table/graph output is
    byte-identical to a serial run.  Worker telemetry snapshots are
    folded into the parent sink under per-shard ``parallel:shard`` spans.

``cache_dir=PATH``
    Every compile and run additionally consults a persistent
    content-addressed :class:`~repro.harness.cache.ArtifactCache`, so a
    warm repeat invocation (same sources, same pipeline, same limits,
    same version) costs unpickling instead of simulation.  Sabotaged
    artifacts (chaos ``poison_*`` seams) bypass the cache entirely, and
    wall-clock timeouts are never cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from time import perf_counter

from repro import telemetry as _telemetry
from repro.bench.suite import Benchmark, Dataset, get, suite
from repro.core.classify import ProgramAnalysis, classify_branches
from repro.errors import ReproError
from repro.harness.cache import ArtifactCache, compile_key, run_key
from repro.harness.retry import RetryPolicy
from repro.isa.program import Executable
from repro.sim import Machine, resolve_engine_name
from repro.sim.profile import EdgeProfile

__all__ = ["BenchmarkRun", "SuiteRunner"]

_MAX_INSTRUCTIONS = 100_000_000


@dataclass
class BenchmarkRun:
    """One profiled execution plus its static analysis."""

    benchmark: Benchmark
    dataset: Dataset
    executable: Executable
    analysis: ProgramAnalysis
    profile: EdgeProfile
    output: str
    instr_count: int

    @property
    def name(self) -> str:
        return self.benchmark.name

    @cached_property
    def loop_addresses(self) -> list[int]:
        """Addresses of loop branches (static)."""
        return [b.address for b in self.analysis.loop_branches()]

    @cached_property
    def non_loop_addresses(self) -> list[int]:
        """Addresses of non-loop branches (static)."""
        return [b.address for b in self.analysis.non_loop_branches()]

    @cached_property
    def executed_non_loop(self) -> list[int]:
        return [a for a in self.non_loop_addresses
                if self.profile.execution_count(a) > 0]

    @property
    def dynamic_total(self) -> int:
        return self.profile.total_dynamic_branches

    def dynamic_count(self, addresses) -> int:
        return sum(self.profile.execution_count(a) for a in addresses)

    @property
    def non_loop_fraction(self) -> float:
        """Fraction of dynamic branches that are non-loop (Table 2's %All)."""
        if self.dynamic_total == 0:
            return 0.0
        return self.dynamic_count(self.non_loop_addresses) / self.dynamic_total


class SuiteRunner:
    """Compiles and profiles suite benchmarks on demand, with memoization.

    Parameters
    ----------
    benchmarks:
        Subset of suite benchmark names (default: the whole suite).
    max_instructions:
        Per-run instruction-fuel budget.
    strict:
        ``True`` (default): any failure propagates immediately.
        ``False``: failures are captured per (benchmark, dataset) as
        :class:`~repro.harness.resilience.RunOutcome` values, negative-cached,
        and reported as ``FAILED`` cells by the table/graph generators.
    wall_clock_deadline:
        Optional per-run watchdog deadline in seconds (see
        :class:`~repro.sim.Machine`).
    retry_fuel_factor:
        In degraded mode, a run that dies of :class:`SimulationLimitExceeded`
        (fuel, not wall clock) is retried once with this multiple of the
        fuel budget before being declared a timeout.
    pc_sample_interval:
        Forwarded to every :class:`~repro.sim.Machine`: when set, the
        simulator samples a hot-PC histogram at this instruction period
        (off by default).
    optimize:
        ``False`` compiles every benchmark at ``-O0`` (empty pass
        pipeline) — the harness's ``-O0`` smoke mode for checking that
        results are not an artifact of the optimizer.
    parallelism:
        Worker-process count for :meth:`all_outcomes` prefetching
        (``1`` = serial, the historical behavior).  Individual
        :meth:`run` / :meth:`outcome` calls stay serial either way.
    cache_dir:
        Directory for the persistent content-addressed artifact cache
        (``None`` disables persistence).
    engine:
        Execution engine for every simulation this runner performs:
        ``"tier0"`` (pre-decoded dispatch), ``"tier1"`` (superblock trace
        cache), or ``None`` (resolve per run via the chaos/env seams —
        see :func:`repro.sim.resolve_engine_name`).  The resolved name is
        folded into every persistent run key so tier artifacts never
        alias.

    Telemetry: each fresh (benchmark, dataset) execution is wrapped in a
    ``run:<benchmark>/<dataset>`` span containing ``compile``/``analyze``
    and ``simulate`` child spans; memo-cache hits and misses, retries, and
    per-status failures are counted under ``harness.*``, artifact-cache
    traffic under ``harness.artifact_cache.*``, and parallel prefetches
    produce ``parallel:pool`` / ``parallel:shard`` spans (all no-ops
    unless a telemetry sink is installed via :func:`repro.telemetry.install`).
    """

    def __init__(self, benchmarks: list[str] | None = None,
                 max_instructions: int = _MAX_INSTRUCTIONS,
                 strict: bool = True,
                 wall_clock_deadline: float | None = None,
                 retry_fuel_factor: int = 4,
                 pc_sample_interval: int | None = None,
                 optimize: bool = True,
                 parallelism: int = 1,
                 cache_dir=None,
                 engine: str | None = None) -> None:
        self.benchmark_names = benchmarks or [b.name for b in suite()]
        self.max_instructions = max_instructions
        self.strict = strict
        self.wall_clock_deadline = wall_clock_deadline
        self.retry_fuel_factor = retry_fuel_factor
        self.pc_sample_interval = pc_sample_interval
        self.optimize = optimize
        self.parallelism = max(1, int(parallelism))
        self.engine = engine
        self.cache = ArtifactCache(cache_dir) if cache_dir else None
        self._compiled: dict[str, tuple[Executable, ProgramAnalysis]] = {}
        self._compile_keys: dict[str, str] = {}
        self._runs: dict[tuple[str, str], BenchmarkRun] = {}
        # negative caches (degraded mode): compile failures per benchmark,
        # run failures per (benchmark, dataset, limits-fingerprint) — the
        # fingerprint keeps a fault injected under one set of limits from
        # poisoning reruns under different limits
        self._compile_failures: dict[str, ReproError] = {}
        self._run_failures: dict[tuple, "RunOutcome"] = {}
        # chaos / operator overrides, keyed (benchmark, dataset-or-None);
        # a None dataset applies to every dataset of the benchmark
        self._fuel_overrides: dict[tuple[str, str | None], int] = {}
        self._input_overrides: dict[tuple[str, str | None], int] = {}
        self._memory_overrides: dict[tuple[str, str | None], int] = {}
        self._skipped: dict[str, str] = {}
        #: benchmarks whose compiled artifact was replaced by chaos — the
        #: persistent cache must never be consulted or fed for these
        self._poisoned: set[str] = set()

    # -- limits / keys ---------------------------------------------------------

    @property
    def _effective_retry_factor(self) -> int:
        """Strict mode never retries (the historical behavior)."""
        return self.retry_fuel_factor if not self.strict else 1

    @property
    def retry_policy(self) -> RetryPolicy:
        """The transient-retry policy this runner executes under
        (shared classification with the parallel shard worker — see
        :mod:`repro.harness.retry`)."""
        return RetryPolicy.from_fuel_factor(self._effective_retry_factor)

    @staticmethod
    def _override(table: dict, name: str, dataset: str):
        value = table.get((name, dataset))
        if value is None:
            value = table.get((name, None))
        return value

    def _effective_limits(self, name: str, dataset: str
                          ) -> tuple[int, int | None, int | None]:
        """(fuel budget, input truncation, memory cap) after overrides."""
        budget = self._override(self._fuel_overrides, name, dataset)
        if budget is None:
            budget = self.max_instructions
        keep = self._override(self._input_overrides, name, dataset)
        memory = self._override(self._memory_overrides, name, dataset)
        return budget, keep, memory

    def _limits_fingerprint(self, name: str, dataset: str) -> tuple:
        budget, keep, memory = self._effective_limits(name, dataset)
        return (budget, keep, memory, self._effective_retry_factor)

    def _failure_key(self, name: str, dataset: str) -> tuple:
        """Negative-cache key: benchmark + dataset + limits fingerprint."""
        return (name, dataset, self._limits_fingerprint(name, dataset))

    def _disk_cache_for(self, name: str) -> ArtifactCache | None:
        """The persistent cache, unless *name*'s artifact was sabotaged."""
        if self.cache is None or name in self._poisoned:
            return None
        return self.cache

    def _compile_key_for(self, name: str) -> str:
        key = self._compile_keys.get(name)
        if key is None:
            key = compile_key(name, get(name).source(), self.optimize,
                              version=self.cache.version)
            self._compile_keys[name] = key
        return key

    def _run_key_for(self, name: str, dataset: str) -> str | None:
        """Persistent run-cache key, or ``None`` when it cannot be formed
        (unknown benchmark/dataset — the execution path raises the typed
        error instead)."""
        try:
            ds = get(name).dataset(dataset)
        except (KeyError, ValueError):
            return None
        budget, keep, memory = self._effective_limits(name, dataset)
        inputs = tuple(ds.inputs)
        if keep is not None:
            inputs = inputs[:keep]
        return run_key(self._compile_key_for(name), dataset, inputs,
                       budget, memory, self._effective_retry_factor,
                       version=self.cache.version,
                       engine=resolve_engine_name(self.engine))

    # -- compilation -----------------------------------------------------------

    def compiled(self, name: str) -> tuple[Executable, ProgramAnalysis]:
        """The (executable, analysis) pair for *name*, compiled once.

        Raises the (negative-cached) typed error on a broken benchmark —
        degraded-mode callers catch it and render a FAILED cell.
        """
        from repro.harness.parallel import compile_artifact
        tm = _telemetry.get()
        if name in self._compile_failures:
            raise self._compile_failures[name]
        if name not in self._compiled:
            tm.counter("harness.compile_cache.miss").inc()
            try:
                self._compiled[name] = compile_artifact(
                    get(name), optimize=self.optimize,
                    cache=self._disk_cache_for(name))
            except ReproError as exc:
                self._compile_failures[name] = exc
                tm.counter("harness.compile_failures").inc()
                raise
        else:
            tm.counter("harness.compile_cache.hit").inc()
        return self._compiled[name]

    # -- execution -------------------------------------------------------------

    def _execute(self, name: str, dataset: str,
                 fuel_scale: int = 1) -> BenchmarkRun:
        """One fresh profiled execution; never caches partial state."""
        try:
            benchmark = get(name)
            ds = benchmark.dataset(dataset)
        except (KeyError, ValueError) as exc:
            raise ReproError(f"unknown benchmark or dataset: {exc}",
                             benchmark=name, dataset=dataset,
                             phase="setup") from exc
        executable, analysis = self.compiled(name)
        budget, keep, memory = self._effective_limits(name, dataset)
        inputs = list(ds.inputs)
        if keep is not None:
            inputs = inputs[:keep]
        profile = EdgeProfile()
        try:
            # construction can fault too (e.g. the data image exceeds an
            # injected memory budget), so it sits inside the try
            with _telemetry.get().span("simulate", category="harness",
                                       benchmark=name, dataset=dataset):
                machine = Machine(
                    executable, inputs=inputs, observers=[profile],
                    max_instructions=budget * fuel_scale,
                    wall_clock_deadline=self.wall_clock_deadline,
                    max_memory_bytes=memory,
                    pc_sample_interval=self.pc_sample_interval,
                    engine=self.engine)
                status = machine.run()
        except ReproError as exc:
            raise exc.with_context(benchmark=name, dataset=dataset)
        return BenchmarkRun(
            benchmark=benchmark, dataset=ds, executable=executable,
            analysis=analysis, profile=profile, output=status.output,
            instr_count=status.instr_count)

    # -- persistent-cache plumbing ---------------------------------------------

    def _store_failure_entry(self, cache: ArtifactCache | None,
                             rkey: str | None, error: ReproError,
                             retried: bool) -> None:
        from repro.harness.parallel import _cacheable_failure
        if cache is not None and rkey is not None \
                and _cacheable_failure(error):
            cache.put(rkey, "run", {"ok": False, "error": error,
                                    "retried": retried})

    def _outcome_from_entry(self, name: str, dataset: str,
                            entry: dict) -> "RunOutcome | None":
        """Rebuild a RunOutcome from a persistent run entry.

        Returns ``None`` when the entry cannot be applied (e.g. the
        matching compile artifact is gone) — the caller falls back to a
        fresh execution.
        """
        from repro.harness.resilience import (
            RunOutcome, RunStatus, classify_failure,
        )
        if not entry.get("ok"):
            error = entry["error"]
            if self.strict:
                raise error
            return self._failure_outcome(
                name, dataset, classify_failure(error), error,
                retried=entry.get("retried", False))
        try:
            executable, analysis = self.compiled(name)
        except ReproError:
            return None  # inconsistent cache: recompute from scratch
        try:
            benchmark = get(name)
            ds = benchmark.dataset(dataset)
        except (KeyError, ValueError):
            return None
        run = BenchmarkRun(
            benchmark=benchmark, dataset=ds, executable=executable,
            analysis=analysis, profile=entry["profile"],
            output=entry["output"], instr_count=entry["instr_count"])
        self._runs[(name, dataset)] = run
        return RunOutcome(name, dataset, RunStatus.OK, run=run,
                          retried=entry.get("retried", False))

    # -- outcomes --------------------------------------------------------------

    def outcome(self, name: str, dataset: str = "ref") -> "RunOutcome":
        """Run (memoized) and wrap the result in a
        :class:`~repro.harness.resilience.RunOutcome`.

        In strict mode failures propagate; in degraded mode they come back
        as classified, negative-cached failure outcomes.
        """
        from repro.harness.resilience import (
            RunOutcome, RunStatus, classify_failure,
        )
        tm = _telemetry.get()
        key = (name, dataset)
        run = self._runs.get(key)
        if run is not None:
            tm.counter("harness.run_cache.hit").inc()
            return RunOutcome(name, dataset, RunStatus.OK, run=run)
        if name in self._skipped:
            tm.counter("harness.skipped").inc()
            outcome = RunOutcome(name, dataset, RunStatus.SKIPPED)
            if self.strict:
                outcome.require()  # raises
            return outcome
        cached = self._run_failures.get(self._failure_key(name, dataset))
        if cached is not None:
            tm.counter("harness.run_cache.negative_hit").inc()
            if self.strict:
                raise cached.error
            return cached
        tm.counter("harness.run_cache.miss").inc()
        retried = False
        cache = self._disk_cache_for(name)
        rkey = self._run_key_for(name, dataset) if cache is not None else None
        with tm.span(f"run:{name}/{dataset}", category="harness",
                     benchmark=name, dataset=dataset):
            if rkey is not None:
                entry = cache.get(rkey, "run")
                if entry is not None:
                    outcome = self._outcome_from_entry(name, dataset, entry)
                    if outcome is not None:
                        return outcome
            policy = self.retry_policy
            attempt = 1
            while True:
                try:
                    run = self._execute(
                        name, dataset, fuel_scale=policy.fuel_scale(attempt))
                    break
                except ReproError as exc:
                    if self.strict:
                        self._store_failure_entry(cache, rkey, exc,
                                                  retried=False)
                        raise
                    if not policy.should_retry(exc, attempt):
                        outcome = self._failure_outcome(
                            name, dataset, classify_failure(exc), exc,
                            retried=attempt > 1)
                        self._store_failure_entry(cache, rkey, exc,
                                                  retried=attempt > 1)
                        return outcome
                    attempt += 1
                    retried = True
                    tm.counter("harness.retries").inc()
        self._runs[key] = run
        if rkey is not None:
            cache.put(rkey, "run", {
                "ok": True, "profile": run.profile, "output": run.output,
                "instr_count": run.instr_count, "retried": retried})
        return RunOutcome(name, dataset, RunStatus.OK, run=run,
                          retried=retried)

    def _failure_outcome(self, name: str, dataset: str, status,
                         error: ReproError,
                         retried: bool = False) -> "RunOutcome":
        """Build, negative-cache, and count one degraded-mode failure."""
        from repro.harness.resilience import RunOutcome
        tm = _telemetry.get()
        tm.counter("harness.degraded_failures").inc()
        tm.labeled_counter("harness.failures_by_status").inc(status.value)
        outcome = RunOutcome(name, dataset, status, error=error,
                             retried=retried)
        self._run_failures[self._failure_key(name, dataset)] = outcome
        return outcome

    def run(self, name: str, dataset: str = "ref") -> BenchmarkRun:
        """Profile one benchmark execution (memoized); raises on failure."""
        return self.outcome(name, dataset).require()

    # -- parallel prefetch -----------------------------------------------------

    def _needs_run(self, name: str, dataset: str) -> bool:
        return ((name, dataset) not in self._runs
                and name not in self._skipped
                and name not in self._compile_failures
                and self._failure_key(name, dataset)
                not in self._run_failures)

    def _shard_job(self, name: str, dataset: str):
        from repro.harness.parallel import ShardJob
        budget, keep, memory = self._effective_limits(name, dataset)
        try:
            ds = get(name).dataset(dataset)
        except (KeyError, ValueError):
            return None  # let the serial path raise the typed error
        inputs = tuple(ds.inputs)
        if keep is not None:
            inputs = inputs[:keep]
        poisoned = name in self._poisoned
        return ShardJob(
            benchmark=name, dataset=dataset, inputs=inputs,
            fuel_budget=budget,
            retry_fuel_factor=self._effective_retry_factor,
            wall_clock_deadline=self.wall_clock_deadline,
            max_memory_bytes=memory,
            pc_sample_interval=self.pc_sample_interval,
            optimize=self.optimize,
            engine=self.engine,
            cache_dir=(str(self.cache.root)
                       if self.cache is not None and not poisoned else None),
            collect_telemetry=_telemetry.get().enabled,
            preseeded=self._compiled.get(name),
            poisoned=poisoned)

    def _merge_shard(self, result, tm, offset_us: int) -> None:
        from repro.harness.resilience import RunStatus
        if self.cache is not None and result.cache_stats:
            # fold worker-side cache traffic into the parent's counters so
            # stats()/CLI footers reflect the whole batch, not just the
            # parent process
            for field_name in ("hits", "misses", "corrupt", "stores",
                               "store_skipped", "tmp_swept", "leases_swept"):
                current = getattr(self.cache, field_name)
                setattr(self.cache, field_name,
                        current + result.cache_stats.get(field_name, 0))
        if result.telemetry is not None and tm.enabled:
            with tm.span("parallel:shard", category="harness",
                         benchmark=result.benchmark, dataset=result.dataset,
                         status=result.status.value):
                tm.merge_snapshot(result.telemetry,
                                  start_offset_us=offset_us)
        if result.ok:
            pair = self._compiled.get(result.benchmark)
            if pair is None and result.executable is not None:
                pair = (result.executable, result.analysis)
                self._compiled[result.benchmark] = pair
            if pair is None:  # defensive: malformed OK result
                return
            executable, analysis = pair
            benchmark = get(result.benchmark)
            run = BenchmarkRun(
                benchmark=benchmark,
                dataset=benchmark.dataset(result.dataset),
                executable=executable, analysis=analysis,
                profile=result.profile, output=result.output,
                instr_count=result.instr_count)
            self._runs[(result.benchmark, result.dataset)] = run
        elif result.status is RunStatus.COMPILE_FAILED:
            # seed the compile negative cache; the serial replay loop
            # classifies and counts it exactly like a cold compile failure
            self._compile_failures.setdefault(result.benchmark, result.error)
            tm.counter("harness.compile_failures").inc()
        else:
            self._failure_outcome(result.benchmark, result.dataset,
                                  result.status, result.error,
                                  retried=result.retried)

    def prefetch(self, dataset: str = "ref") -> int:
        """Execute every missing (benchmark, *dataset*) shard in parallel.

        Populates the memo caches so the subsequent serial walk (tables,
        graphs, :meth:`outcome`) is all hits; returns the shard count.
        No-op when ``parallelism`` is 1 or fewer than two shards are
        missing (pool overhead would exceed the win).
        """
        if self.parallelism <= 1:
            return 0
        from repro.harness.parallel import ParallelEngine
        pending = [name for name in self.benchmark_names
                   if self._needs_run(name, dataset)]
        jobs = [job for job in (self._shard_job(name, dataset)
                                for name in pending) if job is not None]
        if len(jobs) < 2:
            return 0
        tm = _telemetry.get()
        offset_us = (int((perf_counter() - tm.epoch) * 1e6)
                     if tm.enabled else 0)
        engine = ParallelEngine(self.parallelism)
        results = engine.execute(jobs)
        for result in results:
            self._merge_shard(result, tm, offset_us)
        return len(results)

    def all_outcomes(self, dataset: str = "ref") -> list["RunOutcome"]:
        """Outcomes for every benchmark, in suite order (degraded mode:
        failures come back as FAILED outcomes instead of raising).

        With ``parallelism > 1`` the missing shards are executed by the
        process-pool engine first; the serial walk below then merely
        replays the memo caches, preserving strict-mode raise order and
        degraded-mode FAILED classification exactly.
        """
        if self.parallelism > 1:
            self.prefetch(dataset=dataset)
        return [self.outcome(name, dataset) for name in self.benchmark_names]

    def all_runs(self, dataset: str = "ref") -> list[BenchmarkRun]:
        """Profiled runs for every benchmark, in suite order."""
        return [self.run(name, dataset) for name in self.benchmark_names]

    # -- chaos / operator hooks ------------------------------------------------
    # Seams used by repro.testing.chaos (and operators) to inject faults or
    # bound pathological benchmarks without touching suite definitions.
    # The limit seams take an optional dataset: ``None`` (the default)
    # applies the override to every dataset of the benchmark.

    def poison_compile(self, name: str, error: ReproError) -> None:
        """Force *name* to fail compilation with *error*."""
        self._compile_failures[name] = error
        self._compiled.pop(name, None)
        self._poisoned.add(name)

    def poison_executable(self, name: str, executable: Executable,
                          analysis: ProgramAnalysis) -> None:
        """Replace *name*'s compiled artifact (e.g. with a corrupted one).

        The persistent artifact cache is bypassed for *name* from here
        on: a sabotaged artifact must never be served under (or stored
        at) the honest source-derived key.
        """
        self._compiled[name] = (executable, analysis)
        self._compile_failures.pop(name, None)
        self._poisoned.add(name)

    def limit_fuel(self, name: str, budget: int,
                   dataset: str | None = None) -> None:
        """Override the instruction budget for one benchmark (optionally
        for a single dataset only)."""
        self._fuel_overrides[(name, dataset)] = budget

    def limit_inputs(self, name: str, keep: int,
                     dataset: str | None = None) -> None:
        """Truncate the dataset inputs to the first *keep* values."""
        self._input_overrides[(name, dataset)] = keep

    def limit_memory(self, name: str, max_bytes: int,
                     dataset: str | None = None) -> None:
        """Cap the data-memory budget for one benchmark."""
        self._memory_overrides[(name, dataset)] = max_bytes

    def clear_limits(self, name: str, dataset: str | None = None) -> None:
        """Drop every fuel/input/memory override for *name* (or for one
        (benchmark, dataset) pair when *dataset* is given)."""
        for table in (self._fuel_overrides, self._input_overrides,
                      self._memory_overrides):
            if dataset is None:
                for key in [k for k in table if k[0] == name]:
                    del table[key]
            else:
                table.pop((name, dataset), None)

    def skip(self, name: str, reason: str = "") -> None:
        """Mark *name* as skipped (renders as FAILED:skipped cells)."""
        self._skipped[name] = reason

    def is_skipped(self, name: str) -> bool:
        return name in self._skipped
