"""The harness side of the generated-corpus report (``--corpus-table``).

``--corpus-table SPEC`` accepts either a corpus directory written by
``python -m repro.gen corpus`` or an inline ``SEED:COUNT`` pair, runs
the corpus through the same parallel/cache/engine configuration as the
rest of the report, and appends the per-cluster characterization table.
The heavy lifting lives in :mod:`repro.gen`; this module only resolves
the spec and scopes the benchmark registration.
"""

from __future__ import annotations

import os

__all__ = ["resolve_corpus_spec", "corpus_table"]


def resolve_corpus_spec(spec: str):
    """``SEED:COUNT`` -> a fresh corpus; anything else -> a directory.

    Returns the program list; raises ``ValueError`` (via
    :class:`repro.gen.CorpusError` or int parsing) on a bad spec.
    """
    from repro.gen import generate_corpus, load_corpus
    if os.path.isdir(spec):
        return load_corpus(spec)
    if ":" in spec and os.sep not in spec:
        seed_text, _, count_text = spec.partition(":")
        try:
            return generate_corpus(int(seed_text), int(count_text))
        except ValueError as exc:
            raise ValueError(f"bad --corpus-table spec {spec!r}: "
                             f"{exc}") from None
    raise ValueError(f"--corpus-table expects a corpus directory or "
                     f"SEED:COUNT (got {spec!r})")


def corpus_table(spec: str, jobs: int = 1, cache_dir: str | None = None,
                 engine: str | None = None, dataset: str = "ref",
                 evidence: bool = False) -> str:
    """Render the corpus characterization table for *spec*."""
    from repro.gen import characterize, corpus_runner, register_corpus
    programs = resolve_corpus_spec(spec)
    with register_corpus(programs, replace=True):
        runner = corpus_runner(programs, jobs=max(1, jobs),
                               cache_dir=cache_dir, engine=engine)
        report = characterize(programs, runner, dataset=dataset,
                              evidence=evidence)
    return report.render()
