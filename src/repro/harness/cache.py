"""Persistent content-addressed artifact cache for the harness.

Every (benchmark, dataset) result in this reproduction is a pure function
of its inputs: the BLC source text, the optimizer pipeline spec, the
execution limits, and the repro version.  :class:`ArtifactCache` exploits
that purity to make repeated table/graph/CLI invocations near-instant: it
stores compiled executables (with their branch classification), edge
profiles, and *deterministic* failures on disk, keyed by the SHA-256 of a
canonical JSON encoding of every input that can change the result.

Key recipe (see docs/performance.md for the full derivation):

``compile`` entries
    ``sha256(schema, repro version, "compile", benchmark name, source
    text, optimize flag, pass-pipeline spec)`` — the pass spec is the
    resolved tuple of registered pass names, so registering a new default
    pass invalidates every compile entry, exactly as it must.

``run`` entries
    ``sha256(schema, repro version, "run", compile key, dataset name,
    effective input vector, effective fuel budget, memory cap, retry fuel
    factor)`` — the *effective* values after chaos/operator overrides, so
    a fault injected via ``limit_fuel`` can never alias a healthy entry.

Integrity: each entry file is ``magic || sha256(body) || body`` where the
body is a pickled envelope ``{schema, version, key, kind, payload}``.  A
read that fails **any** check — magic, digest, unpickle, schema, version,
key echo — is treated as a miss: the entry is evicted (unlinked) and
recomputed, never trusted.  Writes go through a temp file + ``os.replace``
so a crashed writer can at worst leave a temp file, never a torn entry.

Wall-clock-dependent failures (:class:`~repro.errors.SimulationTimeout`)
are **never** cached: they are not reproducible functions of the key.
Fuel-limit failures are deterministic and are negative-cached.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro import telemetry as _telemetry
from repro._version import __version__

__all__ = ["ArtifactCache", "CACHE_SCHEMA", "compile_key", "run_key",
           "default_pass_spec"]

#: bump on any change to the entry envelope or payload layout
CACHE_SCHEMA = 1

#: file magic: identifies v1 repro artifact-cache entries
_MAGIC = b"RPAC1\n"
_DIGEST_BYTES = 32  # sha256


def default_pass_spec(optimize: bool) -> tuple[str, ...]:
    """The resolved optimizer pipeline the suite compiles with.

    ``-O1`` is the registered default pipeline; ``-O0`` is the empty
    pipeline.  Resolving to concrete pass names (rather than the literal
    "-O1") means cache keys change when the default pipeline gains,
    loses, or reorders a pass.
    """
    if not optimize:
        return ()
    from repro.bcc.opt import pipeline_spec
    return tuple(pipeline_spec(None))


def _digest(material: Any) -> str:
    """SHA-256 over a canonical (sorted-keys, compact) JSON encoding."""
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def compile_key(benchmark: str, source: str, optimize: bool,
                pass_spec: tuple[str, ...] | None = None,
                version: str = __version__) -> str:
    """Content key for one compiled (executable, analysis) artifact."""
    if pass_spec is None:
        pass_spec = default_pass_spec(optimize)
    return _digest({
        "schema": CACHE_SCHEMA,
        "version": version,
        "kind": "compile",
        "benchmark": benchmark,
        "source": source,
        "optimize": bool(optimize),
        "passes": list(pass_spec),
    })


def run_key(compile_digest: str, dataset: str, inputs: tuple,
            fuel_budget: int, max_memory_bytes: int | None,
            retry_fuel_factor: int,
            version: str = __version__) -> str:
    """Content key for one profiled execution (or deterministic failure).

    *inputs* / *fuel_budget* / *max_memory_bytes* are the **effective**
    values after operator and chaos overrides.  The wall-clock deadline
    is deliberately excluded: it cannot change a deterministic result,
    and results it *does* change (timeouts) are never cached.
    """
    return _digest({
        "schema": CACHE_SCHEMA,
        "version": version,
        "kind": "run",
        "compile": compile_digest,
        "dataset": dataset,
        "inputs": list(inputs),
        "fuel": int(fuel_budget),
        "memory": max_memory_bytes,
        "retry_fuel_factor": int(retry_fuel_factor),
    })


class ArtifactCache:
    """On-disk content-addressed store of pipeline artifacts.

    Parameters
    ----------
    root:
        Cache directory (created on demand).  Entries live under
        ``root/objects/<key[:2]>/<key[2:]>.pkl``.
    version:
        Repro version echoed into every entry envelope; entries recorded
        by a different version are evicted on read (stale-version
        defense in depth — the version is also part of every key).

    Instance counters (``hits`` / ``misses`` / ``corrupt`` / ``stores``)
    are always maintained; the same events are also published to the
    active telemetry sink as ``harness.artifact_cache.*`` counters.
    """

    def __init__(self, root: str | os.PathLike,
                 version: str = __version__) -> None:
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    # -- paths ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key[2:]}.pkl"

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.objects_dir.is_dir():
            return 0
        return sum(1 for _ in self.objects_dir.glob("*/*.pkl"))

    # -- read ----------------------------------------------------------------

    def get(self, key: str, kind: str) -> Any | None:
        """The payload stored under *key*, or ``None`` on miss.

        Any integrity failure (truncated file, digest mismatch, pickle
        error, schema/version/kind/key mismatch) evicts the entry and
        reports a miss — a corrupted cache can cost time, never
        correctness.
        """
        tm = _telemetry.get()
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            tm.counter("harness.artifact_cache.miss").inc()
            return None
        payload = self._decode(blob, key, kind)
        if payload is None:
            self._evict(path)
            self.corrupt += 1
            self.misses += 1
            tm.counter("harness.artifact_cache.corrupt").inc()
            tm.counter("harness.artifact_cache.miss").inc()
            return None
        self.hits += 1
        tm.counter("harness.artifact_cache.hit").inc()
        return payload

    def _decode(self, blob: bytes, key: str, kind: str) -> Any | None:
        """Envelope → payload, or ``None`` on any integrity failure."""
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None
        digest = blob[len(_MAGIC):header]
        body = blob[header:]
        if hashlib.sha256(body).digest() != digest:
            return None
        try:
            envelope = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(envelope, dict):
            return None
        if (envelope.get("schema") != CACHE_SCHEMA
                or envelope.get("version") != self.version
                or envelope.get("key") != key
                or envelope.get("kind") != kind
                or "payload" not in envelope):
            return None
        return envelope["payload"]

    @staticmethod
    def _evict(path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()

    # -- write ---------------------------------------------------------------

    def put(self, key: str, kind: str, payload: Any) -> bool:
        """Store *payload* under *key* atomically; returns success.

        A failed store (unpicklable payload, full disk) is counted and
        swallowed — the cache is an accelerator, never a failure source.
        """
        tm = _telemetry.get()
        try:
            body = pickle.dumps({
                "schema": CACHE_SCHEMA,
                "version": self.version,
                "key": key,
                "kind": kind,
                "payload": payload,
            }, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _MAGIC + hashlib.sha256(body).digest() + body
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except Exception:
            tm.counter("harness.artifact_cache.store_failed").inc()
            return False
        self.stores += 1
        tm.counter("harness.artifact_cache.store").inc()
        return True

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.pkl"):
                self._evict(path)
                removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "stores": self.stores,
                "entries": len(self)}
