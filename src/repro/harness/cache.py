"""Persistent content-addressed artifact cache for the harness.

Every (benchmark, dataset) result in this reproduction is a pure function
of its inputs: the BLC source text, the optimizer pipeline spec, the
execution limits, and the repro version.  :class:`ArtifactCache` exploits
that purity to make repeated table/graph/CLI invocations near-instant: it
stores compiled executables (with their branch classification), edge
profiles, and *deterministic* failures on disk, keyed by the SHA-256 of a
canonical JSON encoding of every input that can change the result.

Key recipe (see docs/performance.md for the full derivation):

``compile`` entries
    ``sha256(schema, repro version, "compile", benchmark name, source
    text, optimize flag, pass-pipeline spec)`` — the pass spec is the
    resolved tuple of registered pass names, so registering a new default
    pass invalidates every compile entry, exactly as it must.

``run`` entries
    ``sha256(schema, repro version, "run", compile key, dataset name,
    effective input vector, effective fuel budget, memory cap, retry fuel
    factor, resolved engine name)`` — the *effective* values after
    chaos/operator overrides, so a fault injected via ``limit_fuel`` can
    never alias a healthy entry, and Tier-0/Tier-1 artifacts never alias
    each other (the engine name is resolved *after* the
    ``REPRO_CHAOS_FORCE_TIER0`` / ``REPRO_SIM_ENGINE`` seams).

Integrity: each entry file is ``magic || sha256(body) || body`` where the
body is a pickled envelope ``{schema, version, key, kind, payload}``.  A
read that fails **any** check — magic, digest, unpickle, schema, version,
key echo — is treated as a miss: the entry is evicted (unlinked) and
recomputed, never trusted.  Writes go through a temp file + ``os.replace``
so a crashed writer can at worst leave a temp file, never a torn entry.

Wall-clock-dependent failures (:class:`~repro.errors.SimulationTimeout`)
are **never** cached: they are not reproducible functions of the key.
Fuel-limit failures are deterministic and are negative-cached.

Multi-tenant safety (see docs/robustness.md "The shared store"): stores
are **single-writer per key** via advisory TTL leases
(:mod:`repro.harness.locking`); a crashed writer's debris — orphaned
``*.tmp`` files, stale lease records — is reclaimed by the startup
sweep (:meth:`ArtifactCache.sweep`); and :meth:`ArtifactCache.
get_or_wait` lets a reader wait out a racing writer instead of
recomputing, picking up negative entries too (lock-aware negative
caching).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro._version import __version__
from repro.harness.locking import DEFAULT_LEASE_TTL_S, Lease, LeaseManager

__all__ = ["ArtifactCache", "CACHE_SCHEMA", "compile_key", "run_key",
           "default_pass_spec", "CHAOS_LOCK_HOLD_ENV", "DEFAULT_SWEEP_AGE_S"]

#: bump on any change to the entry envelope or payload layout
CACHE_SCHEMA = 1

#: file magic: identifies v1 repro artifact-cache entries
_MAGIC = b"RPAC1\n"
_DIGEST_BYTES = 32  # sha256

#: ``<seconds>``: every lease-guarded store stalls this long while
#: holding its writer lease — the lock-contention chaos seam
CHAOS_LOCK_HOLD_ENV = "REPRO_CHAOS_LOCK_HOLD"

#: only temp/lease files this stale are swept: a live writer's seconds-old
#: temp file must never be yanked out from under it
DEFAULT_SWEEP_AGE_S = 300.0


def _chaos_lock_hold_s() -> float:
    spec = os.environ.get(CHAOS_LOCK_HOLD_ENV, "")
    if not spec:
        return 0.0
    try:
        return max(0.0, float(spec))
    except ValueError:
        return 0.0


def default_pass_spec(optimize: bool) -> tuple[str, ...]:
    """The resolved optimizer pipeline the suite compiles with.

    ``-O1`` is the registered default pipeline; ``-O0`` is the empty
    pipeline.  Resolving to concrete pass names (rather than the literal
    "-O1") means cache keys change when the default pipeline gains,
    loses, or reorders a pass.
    """
    if not optimize:
        return ()
    from repro.bcc.opt import pipeline_spec
    return tuple(pipeline_spec(None))


def _digest(material: Any) -> str:
    """SHA-256 over a canonical (sorted-keys, compact) JSON encoding."""
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def compile_key(benchmark: str, source: str, optimize: bool,
                pass_spec: tuple[str, ...] | None = None,
                version: str = __version__) -> str:
    """Content key for one compiled (executable, analysis) artifact."""
    if pass_spec is None:
        pass_spec = default_pass_spec(optimize)
    return _digest({
        "schema": CACHE_SCHEMA,
        "version": version,
        "kind": "compile",
        "benchmark": benchmark,
        "source": source,
        "optimize": bool(optimize),
        "passes": list(pass_spec),
    })


def run_key(compile_digest: str, dataset: str, inputs: tuple,
            fuel_budget: int, max_memory_bytes: int | None,
            retry_fuel_factor: int,
            version: str = __version__,
            engine: str = "tier1") -> str:
    """Content key for one profiled execution (or deterministic failure).

    *inputs* / *fuel_budget* / *max_memory_bytes* are the **effective**
    values after operator and chaos overrides.  The wall-clock deadline
    is deliberately excluded: it cannot change a deterministic result,
    and results it *does* change (timeouts) are never cached.

    *engine* is the **resolved** execution-engine name (``"tier0"`` /
    ``"tier1"`` — callers resolve chaos/env overrides first, see
    :func:`repro.sim.resolve_engine_name`).  The tiers are verified
    byte-identical, but the fingerprint keeps their artifacts from ever
    aliasing: a Tier-0 entry is never served as evidence about Tier-1
    (and a differential run can never be satisfied from one tier's
    cache).
    """
    return _digest({
        "schema": CACHE_SCHEMA,
        "version": version,
        "kind": "run",
        "compile": compile_digest,
        "dataset": dataset,
        "inputs": list(inputs),
        "fuel": int(fuel_budget),
        "memory": max_memory_bytes,
        "retry_fuel_factor": int(retry_fuel_factor),
        "engine": engine,
    })


class ArtifactCache:
    """On-disk content-addressed store of pipeline artifacts.

    Parameters
    ----------
    root:
        Cache directory (created on demand).  Entries live under
        ``root/objects/<key[:2]>/<key[2:]>.pkl``.
    version:
        Repro version echoed into every entry envelope; entries recorded
        by a different version are evicted on read (stale-version
        defense in depth — the version is also part of every key).

    Instance counters (``hits`` / ``misses`` / ``corrupt`` / ``stores``)
    are always maintained; the same events are also published to the
    active telemetry sink as ``harness.artifact_cache.*`` counters.
    """

    def __init__(self, root: str | os.PathLike,
                 version: str = __version__,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 sweep_age_s: float = DEFAULT_SWEEP_AGE_S,
                 sweep_on_init: bool = True) -> None:
        self.root = Path(root)
        self.version = version
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        self.store_skipped = 0
        self.tmp_swept = 0
        self.leases_swept = 0
        self.sweep_age_s = sweep_age_s
        self.leases = LeaseManager(self.root, ttl_s=lease_ttl_s)
        if sweep_on_init and self.root.is_dir():
            self.sweep()

    # -- paths ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key[2:]}.pkl"

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.objects_dir.is_dir():
            return 0
        return sum(1 for _ in self.objects_dir.glob("*/*.pkl"))

    # -- read ----------------------------------------------------------------

    def get(self, key: str, kind: str) -> Any | None:
        """The payload stored under *key*, or ``None`` on miss.

        Any integrity failure (truncated file, digest mismatch, pickle
        error, schema/version/kind/key mismatch) evicts the entry and
        reports a miss — a corrupted cache can cost time, never
        correctness.
        """
        tm = _telemetry.get()
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            tm.counter("harness.artifact_cache.miss").inc()
            return None
        payload = self._decode(blob, key, kind)
        if payload is None:
            self._evict(path)
            self.corrupt += 1
            self.misses += 1
            tm.counter("harness.artifact_cache.corrupt").inc()
            tm.counter("harness.artifact_cache.miss").inc()
            return None
        self.hits += 1
        tm.counter("harness.artifact_cache.hit").inc()
        return payload

    def _decode(self, blob: bytes, key: str, kind: str) -> Any | None:
        """Envelope → payload, or ``None`` on any integrity failure."""
        header = len(_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return None
        digest = blob[len(_MAGIC):header]
        body = blob[header:]
        if hashlib.sha256(body).digest() != digest:
            return None
        try:
            envelope = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(envelope, dict):
            return None
        if (envelope.get("schema") != CACHE_SCHEMA
                or envelope.get("version") != self.version
                or envelope.get("key") != key
                or envelope.get("kind") != kind
                or "payload" not in envelope):
            return None
        return envelope["payload"]

    @staticmethod
    def _evict(path: Path) -> None:
        with contextlib.suppress(OSError):
            path.unlink()

    # -- write ---------------------------------------------------------------

    def put(self, key: str, kind: str, payload: Any) -> bool:
        """Store *payload* under *key* atomically; returns success.

        Writes are **single-writer per key**: the store happens under a
        non-blocking advisory lease (see
        :class:`~repro.harness.locking.LeaseManager`), and losing the
        lease race means another tenant is already producing this exact
        content-addressed entry — the write is skipped (counted as
        ``store_skipped``), never duplicated or torn.

        A failed store (unpicklable payload, full disk) is counted and
        swallowed — the cache is an accelerator, never a failure source.
        """
        tm = _telemetry.get()
        lease = self.leases.try_acquire(key)
        if lease is None:
            self.store_skipped += 1
            tm.counter("harness.artifact_cache.store_skipped").inc()
            return False
        try:
            hold = _chaos_lock_hold_s()
            if hold > 0:
                time.sleep(hold)
            try:
                body = pickle.dumps({
                    "schema": CACHE_SCHEMA,
                    "version": self.version,
                    "key": key,
                    "kind": kind,
                    "payload": payload,
                }, protocol=pickle.HIGHEST_PROTOCOL)
                blob = _MAGIC + hashlib.sha256(body).digest() + body
                path = self.path_for(key)
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(tmp)
                    raise
            except Exception:
                tm.counter("harness.artifact_cache.store_failed").inc()
                return False
            self.stores += 1
            tm.counter("harness.artifact_cache.store").inc()
            return True
        finally:
            lease.release()

    def writer_lease(self, key: str, timeout_s: float = 10.0) -> Lease:
        """A *waiting* single-writer lease on *key* for callers that
        compute-then-store (the service job engine): only one process
        across the whole store computes a missing key at a time; the
        rest wait via :meth:`get_or_wait`.  Raises
        :class:`~repro.errors.CacheLockError` past *timeout_s*.
        """
        return self.leases.acquire(key, timeout_s=timeout_s)

    def get_or_wait(self, key: str, kind: str,
                    timeout_s: float = 10.0,
                    poll_s: float = 0.02) -> Any | None:
        """Like :meth:`get`, but when the key is missing *and* another
        tenant holds its writer lease, poll until that writer publishes
        the entry (positive **or** negative — a deterministic failure
        someone else just paid for is a hit too) or the lease clears.

        Returns ``None`` on a true miss or when *timeout_s* elapses with
        the lease still held (counted as ``lease_wait_timeout``) — the
        caller computes for itself; waiting can cost time, never
        correctness.
        """
        tm = _telemetry.get()
        start = time.monotonic()
        while True:
            # quiet existence probe first: get() counts a miss per call,
            # and one logical wait must not inflate the miss counter
            if self.path_for(key).exists():
                return self.get(key, kind)
            if self.leases.holder(key) is None:
                return self.get(key, kind)
            waited = time.monotonic() - start
            if waited >= timeout_s:
                tm.counter(
                    "harness.artifact_cache.lease_wait_timeout").inc()
                return None
            time.sleep(min(poll_s, max(0.0, timeout_s - waited)))

    # -- maintenance ---------------------------------------------------------

    def sweep(self, max_age_s: float | None = None) -> dict[str, int]:
        """Crash-recovery sweep: remove orphaned ``*.tmp`` files (left by
        writers killed between ``mkstemp`` and ``os.replace``) and
        long-expired lease files; returns the removal counts.

        Only debris older than *max_age_s* (default: the instance
        ``sweep_age_s``) is removed, so a sweep can never race a live
        writer's seconds-old temp file.  Runs automatically on
        construction against an existing store (the *startup sweep*) and
        is re-runnable any time; counts surface as the
        ``harness.artifact_cache.tmp_swept`` / ``lease_swept``
        telemetry counters and in :meth:`stats`.
        """
        if max_age_s is None:
            max_age_s = self.sweep_age_s
        tm = _telemetry.get()
        tmp_removed = 0
        now = time.time()
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.tmp"):
                with contextlib.suppress(OSError):
                    if now - path.stat().st_mtime > max_age_s:
                        path.unlink()
                        tmp_removed += 1
        lease_removed = self.leases.sweep(max_age_s)
        self.tmp_swept += tmp_removed
        self.leases_swept += lease_removed
        if tmp_removed:
            tm.counter("harness.artifact_cache.tmp_swept").inc(tmp_removed)
        if lease_removed:
            tm.counter("harness.artifact_cache.lease_swept").inc(
                lease_removed)
        if tmp_removed or lease_removed:
            _flight.record("cache.sweep", tmp=tmp_removed,
                           leases=lease_removed)
        return {"tmp": tmp_removed, "leases": lease_removed}

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        if self.objects_dir.is_dir():
            for path in self.objects_dir.glob("*/*.pkl"):
                self._evict(path)
                removed += 1
        return removed

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "stores": self.stores,
                "store_skipped": self.store_skipped,
                "tmp_swept": self.tmp_swept,
                "leases_swept": self.leases_swept,
                "entries": len(self)}
