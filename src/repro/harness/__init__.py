"""Experiment harness: regenerates every table and figure of the paper.

``tables.tableN(runner)`` / ``graphs.graphN(runner)`` compute the data;
each result renders itself as text. ``python -m repro.harness`` prints the
full report.

Execution is pluggable: :class:`SuiteRunner(parallelism=N)` shards
(benchmark, dataset) jobs across worker processes via
:mod:`repro.harness.parallel`, and ``cache_dir=`` persists compiled
executables and edge profiles in the content-addressed
:class:`~repro.harness.cache.ArtifactCache` (``--jobs`` / ``--cache`` on
the CLI; see docs/performance.md).
"""

from repro.harness.cache import ArtifactCache, compile_key, run_key
from repro.harness.evidence import (
    EvidenceRow, EvidenceTable, evidence_row, evidence_table,
)
from repro.harness.graphs import (
    Graph1, Graph13, Graphs2And3, SEQUENCE_BENCHMARKS, SequenceGraphs,
    graph1, graph12, graph13, graphs2_3, graphs4_11,
)
from repro.harness.parallel import ParallelEngine, ShardJob, ShardResult
from repro.harness.report import TextTable, cd_cell, mean_std, pct
from repro.harness.resilience import (
    RunOutcome, RunStatus, classify_failure, failure_cells,
)
from repro.harness.runner import BenchmarkRun, SuiteRunner
from repro.harness.tables import (
    table1, table2, table3, table4, table5, table6, table7,
)

__all__ = [
    "SuiteRunner", "BenchmarkRun",
    "ArtifactCache", "compile_key", "run_key",
    "ParallelEngine", "ShardJob", "ShardResult",
    "RunOutcome", "RunStatus", "classify_failure", "failure_cells",
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "graph1", "graphs2_3", "graphs4_11", "graph12", "graph13",
    "Graph1", "Graphs2And3", "SequenceGraphs", "Graph13",
    "SEQUENCE_BENCHMARKS",
    "TextTable", "pct", "cd_cell", "mean_std",
    "EvidenceRow", "EvidenceTable", "evidence_row", "evidence_table",
]
