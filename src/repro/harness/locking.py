"""Advisory file locking and single-writer leases for the shared store.

Many tenants — parallel shard workers, service worker pools, concurrent
CLI invocations — share one on-disk :class:`~repro.harness.cache.
ArtifactCache`.  Entry *reads* need no coordination (writes are atomic
temp-file + ``rename``, so a reader sees either nothing or a complete
entry), but uncoordinated *writers* waste work: N processes missing the
same key all compile/simulate the same content and race to store it.
This module provides the coordination primitive the cache builds on: a
**single-writer lease per key**.

Design: a lease is a small JSON record ``{"owner", "acquired_at",
"expires_at"}`` stored in a per-key file under ``<root>/locks/``.  Every
read-modify-write of that record happens under a short ``fcntl.flock``
exclusive lock on the file itself (the *meta lock*, held for
microseconds), so lease transitions are serialized across processes.
The lease itself is **time-bounded**: a holder that crashes mid-write
simply stops renewing, and the next acquirer *steals* the lease once
``expires_at`` passes.  Liveness therefore never depends on a crashed
process cleaning up — the two failure-recovery paths are

* **stale lease** → stolen by the next acquirer after TTL expiry;
* **orphaned lease file** → removed by the cache's startup sweep once
  it has been expired for longer than the sweep age.

``fcntl.flock`` is advisory and process-scoped: locks evaporate when
the holder dies, which is exactly the crash-safety property we want for
the meta lock.  (On the rare filesystems without ``flock`` support the
lock call fails and the acquire path degrades to "contended", never to
corruption — writers that cannot coordinate simply skip deduplication.)

Chaos seam: ``REPRO_CHAOS_LEASE_TTL=<seconds>`` overrides every lease
TTL (e.g. ``0.05`` forces rapid expiry so tests can exercise the steal
path without waiting out a production TTL).

Telemetry: ``harness.artifact_cache.lease_acquired`` / ``lease_stolen``
/ ``lease_contended`` / ``lease_timeout`` counters and the
``harness.artifact_cache.lease_wait_s`` histogram (observed by the
waiting acquire path only).
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.errors import CacheLockError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "Lease", "LeaseInfo", "LeaseManager", "CHAOS_LEASE_TTL_ENV",
    "DEFAULT_LEASE_TTL_S",
]

#: environment variable overriding every lease TTL (chaos seam)
CHAOS_LEASE_TTL_ENV = "REPRO_CHAOS_LEASE_TTL"

#: production default: long enough for any single compile+simulate+store
DEFAULT_LEASE_TTL_S = 60.0


@dataclass(frozen=True)
class LeaseInfo:
    """The on-disk lease record for one key."""

    owner: str
    acquired_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


def _flock_exclusive(fd: int, blocking: bool) -> bool:
    """Take the meta lock on *fd*; returns success.  ``False`` means the
    lock is held elsewhere (non-blocking mode) or unsupported here."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        return False
    flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
    try:
        fcntl.flock(fd, flags)
        return True
    except OSError:
        return False


def _funlock(fd: int) -> None:
    if fcntl is not None:  # pragma: no cover - trivially guarded
        with contextlib.suppress(OSError):
            fcntl.flock(fd, fcntl.LOCK_UN)


class Lease:
    """An acquired single-writer lease; release promptly (or let the TTL
    reclaim it after a crash).  Usable as a context manager."""

    def __init__(self, manager: "LeaseManager", key: str, token: str,
                 expires_at: float) -> None:
        self._manager = manager
        self.key = key
        self.token = token
        self.expires_at = expires_at
        self.released = False

    def renew(self) -> bool:
        """Extend the lease by one TTL; ``False`` when it was lost
        (expired and stolen) in the meantime."""
        if self.released:
            return False
        expires = self._manager._transition(
            self.key, expect_owner=self.token, write=True)
        if expires is None:
            return False
        self.expires_at = expires
        return True

    def release(self) -> None:
        """Give the lease up (idempotent; no-op if already stolen)."""
        if self.released:
            return
        self.released = True
        self._manager._transition(self.key, expect_owner=self.token,
                                  write=False)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class LeaseManager:
    """Mints per-key single-writer leases under ``<root>/locks/``.

    Parameters
    ----------
    root:
        Lock directory (shared store root; ``locks/`` is created under
        it on demand).
    ttl_s:
        Lease time-to-live.  A holder that neither releases nor renews
        within this window loses the lease to the next acquirer.
    clock:
        Injectable time source (must be comparable across the processes
        sharing the store — the default ``time.time`` is; tests inject
        a fake to drive expiry deterministically).
    """

    def __init__(self, root: str | os.PathLike,
                 ttl_s: float = DEFAULT_LEASE_TTL_S,
                 clock: Callable[[], float] = time.time) -> None:
        self.root = Path(root)
        self._ttl_s = float(ttl_s)
        self.clock = clock

    # -- paths / knobs ---------------------------------------------------------

    @property
    def locks_dir(self) -> Path:
        return self.root / "locks"

    @property
    def ttl_s(self) -> float:
        """Effective TTL (the chaos env override wins when set)."""
        override = os.environ.get(CHAOS_LEASE_TTL_ENV)
        if override:
            with contextlib.suppress(ValueError):
                return max(0.0, float(override))
        return self._ttl_s

    def lease_path(self, key: str) -> Path:
        return self.locks_dir / key[:2] / f"{key[2:]}.lease"

    # -- record plumbing -------------------------------------------------------

    @staticmethod
    def _read_record(fd: int) -> LeaseInfo | None:
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            blob = os.read(fd, 4096)
            data = json.loads(blob)
            return LeaseInfo(str(data["owner"]), float(data["acquired_at"]),
                             float(data["expires_at"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    @staticmethod
    def _write_record(fd: int, info: LeaseInfo | None) -> None:
        blob = b"" if info is None else json.dumps({
            "owner": info.owner,
            "acquired_at": info.acquired_at,
            "expires_at": info.expires_at,
        }).encode("ascii")
        os.lseek(fd, 0, os.SEEK_SET)
        os.truncate(fd, 0)
        if blob:
            os.write(fd, blob)

    def _transition(self, key: str, expect_owner: str,
                    write: bool) -> float | None:
        """Renew (*write*) or clear the lease iff still owned by
        *expect_owner*; returns the new expiry, or ``None`` when the
        lease was lost."""
        path = self.lease_path(key)
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return None
        try:
            # blocking: release/renew critical sections are microseconds
            if not _flock_exclusive(fd, blocking=True):
                return None
            try:
                current = self._read_record(fd)
                if current is None or current.owner != expect_owner:
                    return None
                if not write:
                    self._write_record(fd, None)
                    return current.expires_at
                now = self.clock()
                renewed = LeaseInfo(expect_owner, current.acquired_at,
                                    now + self.ttl_s)
                self._write_record(fd, renewed)
                return renewed.expires_at
            finally:
                _funlock(fd)
        finally:
            os.close(fd)

    # -- acquisition -----------------------------------------------------------

    def holder(self, key: str) -> LeaseInfo | None:
        """The currently *valid* lease on *key*, or ``None``."""
        path = self.lease_path(key)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return None
        try:
            info = self._read_record(fd)
        finally:
            os.close(fd)
        if info is None or info.expired(self.clock()):
            return None
        return info

    def try_acquire(self, key: str) -> Lease | None:
        """One non-blocking acquisition attempt (stealing an expired
        lease counts as success); ``None`` when another owner holds a
        valid lease or the meta lock itself is contended."""
        tm = _telemetry.get()
        path = self.lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}:{uuid.uuid4().hex[:12]}"
        try:
            fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return None
        try:
            if not _flock_exclusive(fd, blocking=False):
                tm.counter("harness.artifact_cache.lease_contended").inc()
                return None
            try:
                now = self.clock()
                current = self._read_record(fd)
                if (current is not None and not current.expired(now)):
                    tm.counter(
                        "harness.artifact_cache.lease_contended").inc()
                    return None
                stolen = current is not None and current.expired(now)
                info = LeaseInfo(token, now, now + self.ttl_s)
                self._write_record(fd, info)
                if stolen:
                    tm.counter("harness.artifact_cache.lease_stolen").inc()
                    _flight.record("lease.stolen", key=key[:12],
                                   dead_owner=current.owner)
                tm.counter("harness.artifact_cache.lease_acquired").inc()
                return Lease(self, key, token, info.expires_at)
            finally:
                _funlock(fd)
        finally:
            os.close(fd)

    def acquire(self, key: str, timeout_s: float = 10.0,
                poll_s: float = 0.02) -> Lease:
        """Waiting acquisition: polls until the lease is free, stolen,
        or *timeout_s* elapses (then raises
        :class:`~repro.errors.CacheLockError` — callers surface it as a
        typed degraded response, never a hang)."""
        tm = _telemetry.get()
        start = time.monotonic()
        while True:
            lease = self.try_acquire(key)
            waited = time.monotonic() - start
            if lease is not None:
                tm.histogram("harness.artifact_cache.lease_wait_s").observe(
                    waited)
                return lease
            if waited >= timeout_s:
                tm.counter("harness.artifact_cache.lease_timeout").inc()
                _flight.record("lease.timeout", key=key[:12],
                               waited_s=round(waited, 3))
                raise CacheLockError(
                    f"single-writer lease on {key[:12]}... not acquired "
                    f"within {timeout_s:.1f}s (held by "
                    f"{self.holder(key) or 'a racing acquirer'})")
            time.sleep(min(poll_s, max(0.0, timeout_s - waited)))

    # -- maintenance -----------------------------------------------------------

    def sweep(self, max_age_s: float) -> int:
        """Remove lease files that have been *expired* (or empty) for
        more than *max_age_s* seconds; returns the number removed.

        Active and recently-expired leases are left alone, so a sweep
        can never break a live writer; see the module docstring for the
        (harmless) unlink race with a concurrent acquirer.
        """
        if not self.locks_dir.is_dir():
            return 0
        removed = 0
        now = self.clock()
        wall = time.time()
        for path in self.locks_dir.glob("*/*.lease"):
            try:
                fd = os.open(path, os.O_RDWR)
            except OSError:
                continue
            try:
                if not _flock_exclusive(fd, blocking=False):
                    continue
                try:
                    info = self._read_record(fd)
                    if info is None:
                        # empty/garbage record: age by file mtime
                        with contextlib.suppress(OSError):
                            if wall - path.stat().st_mtime > max_age_s:
                                path.unlink(missing_ok=True)
                                removed += 1
                    elif now - info.expires_at > max_age_s:
                        path.unlink(missing_ok=True)
                        removed += 1
                finally:
                    _funlock(fd)
            finally:
                os.close(fd)
        return removed
