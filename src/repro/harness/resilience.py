"""Fault isolation for the experiment harness.

A :class:`RunOutcome` wraps one (benchmark, dataset) execution attempt:
either a healthy :class:`~repro.harness.runner.BenchmarkRun` or a classified
failure (compile-failed / sim-failed / timeout / skipped) carrying the typed
:class:`~repro.errors.ReproError` that caused it.  In the
:class:`~repro.harness.runner.SuiteRunner`'s degraded (``strict=False``)
mode, table and graph generators consume outcomes instead of raw runs, so a
single pathological benchmark renders as explicit ``FAILED`` cells instead
of aborting the whole seven-table report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import (
    ReproError, SimulationLimitExceeded, SimulationTimeout, WorkerError,
)

if TYPE_CHECKING:  # avoid a circular import with repro.harness.runner
    from repro.harness.runner import BenchmarkRun

__all__ = ["RunStatus", "RunOutcome", "classify_failure", "failure_cells"]


class RunStatus(enum.Enum):
    """Machine-classifiable outcome of one (benchmark, dataset) attempt."""

    OK = "ok"
    COMPILE_FAILED = "compile-failed"
    SIM_FAILED = "sim-failed"
    TIMEOUT = "timeout"
    SKIPPED = "skipped"
    WORKER_FAILED = "worker-failed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_failure(error: ReproError) -> RunStatus:
    """Map a typed pipeline error to its :class:`RunStatus` bucket."""
    if isinstance(error, WorkerError):
        return RunStatus.WORKER_FAILED
    if isinstance(error, (SimulationTimeout, SimulationLimitExceeded)):
        return RunStatus.TIMEOUT
    phase = getattr(error, "phase", None)
    if phase in ("compile", "assemble", "link"):
        return RunStatus.COMPILE_FAILED
    return RunStatus.SIM_FAILED


@dataclass
class RunOutcome:
    """One (benchmark, dataset) execution attempt: a run or a failure."""

    benchmark: str
    dataset: str
    status: RunStatus
    run: BenchmarkRun | None = None
    error: ReproError | None = None
    #: True when the harness retried once at a raised fuel budget
    retried: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.status is RunStatus.OK and self.run is None:
            raise ValueError("OK outcome requires a run")
        if self.status is not RunStatus.OK and self.run is not None:
            raise ValueError("failed outcome must not carry a run")

    # -- predicates ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK

    @property
    def failed(self) -> bool:
        return not self.ok

    # -- access ----------------------------------------------------------------

    def require(self) -> BenchmarkRun:
        """The run, or re-raise the captured typed error (skips raise a
        fresh :class:`ReproError` since they carry no original exception)."""
        if self.run is not None:
            return self.run
        if self.error is not None:
            raise self.error
        raise ReproError(
            f"benchmark {self.benchmark!r} ({self.dataset}) "
            f"was skipped", benchmark=self.benchmark, dataset=self.dataset)

    def failure_label(self) -> str:
        """Compact cell text for degraded tables, e.g. ``FAILED:timeout``."""
        return f"FAILED:{self.status.value}"

    def describe(self) -> str:
        """One-line summary suitable for report footers / logs."""
        if self.ok:
            return f"{self.benchmark}/{self.dataset}: ok"
        detail = self.error.oneline() if self.error is not None else "skipped"
        retry = " (after retry)" if self.retried else ""
        return (f"{self.benchmark}/{self.dataset}: "
                f"{self.failure_label()}{retry} — {detail}")


def failure_cells(outcome: RunOutcome, n_columns: int) -> list[str]:
    """Cell values (excluding the leading Program column) for a FAILED row
    spanning *n_columns* data columns."""
    return [outcome.failure_label()] + [""] * (n_columns - 1)
