"""Generators for every table in the paper (Tables 1-7).

Each ``tableN`` function takes a :class:`~repro.harness.runner.SuiteRunner`,
computes the table's underlying data (returned as a list of typed rows plus
summary statistics), and can render itself in the paper's layout via
``.render()``. Numbers are our measurements on the reproduction suite; the
*shape* (which predictors win, which heuristics cover what) is what the
reproduction is checked against — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import Prediction
from repro.core.evaluation import (
    big_branches, evaluate_predictions, evaluate_predictor,
)
from repro.core.heuristics import HEURISTIC_NAMES, applicable_heuristics
from repro.core.registry import HEURISTIC_REGISTRY
from repro.core.orders import (
    OrderData, build_order_data, pairwise_order, subset_experiment,
)
from repro.core.predictors import (
    HeuristicPredictor, LoopRandomPredictor, RandomPredictor, TakenPredictor,
)
from repro.errors import ReproError
from repro.harness.report import TextTable, cd_cell, mean_std, pct
from repro.harness.resilience import (
    RunOutcome, RunStatus, classify_failure, failure_cells,
)
from repro.harness.runner import BenchmarkRun, SuiteRunner

__all__ = [
    "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "heuristic_table", "order_data_for",
]


def _runs_and_failures(
        runner: SuiteRunner) -> tuple[list[BenchmarkRun], list[RunOutcome]]:
    """Healthy runs plus classified failures, in suite order.

    In strict mode any failure raises from inside ``all_outcomes`` (the
    historical behavior), so the failure list is only ever populated in
    degraded (``strict=False``) mode.
    """
    outcomes = runner.all_outcomes()
    return ([oc.run for oc in outcomes if oc.ok],
            [oc for oc in outcomes if oc.failed])


def heuristic_table(run: BenchmarkRun) -> dict[int, dict[str, Prediction]]:
    """Per-branch map of every applicable heuristic's prediction, cached on
    the run (Tables 3-5 and the ordering experiments all consume it)."""
    cached = getattr(run, "_heuristic_table", None)
    if cached is None:
        cached = {}
        for branch in run.analysis.non_loop_branches():
            pa = run.analysis.analysis_of(branch)
            cached[branch.address] = applicable_heuristics(branch, pa)
        run._heuristic_table = cached
    return cached


def order_data_for(run: BenchmarkRun) -> OrderData:
    """The vectorized order-evaluation table for one run (cached)."""
    cached = getattr(run, "_order_data", None)
    if cached is None:
        cached = build_order_data(run.name, run.analysis, run.profile)
        run._order_data = cached
    return cached


# -- Table 1 -------------------------------------------------------------------


@dataclass
class Table1Row:
    name: str
    description: str
    paper_analogue: str
    group: str
    code_size_kb: float
    procedures: int


@dataclass
class Table1:
    rows: list[Table1Row]
    failed: list[RunOutcome] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            ["Program", "Description", "Grp", "Size(KB)", "Procs"],
            title="Table 1: benchmarks, sorted by code size within group")
        last_group = None
        for row in self.rows:
            if last_group is not None and row.group != last_group:
                table.add_separator()
            last_group = row.group
            table.add_row(row.name, row.description, row.group,
                          f"{row.code_size_kb:.1f}", row.procedures)
        for oc in self.failed:
            table.add_row(oc.benchmark, *failure_cells(oc, 4))
        return table.render()


def table1(runner: SuiteRunner) -> Table1:
    """Benchmark listing with object-code sizes (compile only, no runs)."""
    from repro.bench.suite import get
    rows = []
    failed: list[RunOutcome] = []
    for name in runner.benchmark_names:
        if runner.is_skipped(name):
            failed.append(RunOutcome(name, "-", RunStatus.SKIPPED))
            continue
        try:
            executable, _ = runner.compiled(name)
        except ReproError as exc:
            if runner.strict:
                raise
            failed.append(RunOutcome(name, "-", classify_failure(exc),
                                     error=exc))
            continue
        benchmark = get(name)
        rows.append(Table1Row(
            name=name, description=benchmark.description,
            paper_analogue=benchmark.paper_analogue, group=benchmark.group,
            code_size_kb=executable.code_size_kb,
            procedures=len(executable.procedures)))
    rows.sort(key=lambda r: (r.group != "int", -r.code_size_kb))
    return Table1(rows, failed)


# -- Table 2 -------------------------------------------------------------------


@dataclass
class Table2Row:
    name: str
    loop_pred_miss: float
    loop_perfect: float
    non_loop_fraction: float
    target_miss: float
    random_miss: float
    non_loop_perfect: float
    big_count: int
    big_fraction: float


@dataclass
class Table2:
    rows: list[Table2Row]
    failed: list[RunOutcome] = field(default_factory=list)

    def summary(self) -> dict[str, tuple[float, float]]:
        """Mean/std of each column, each benchmark weighted equally."""
        return {
            "loop_pred": mean_std([r.loop_pred_miss for r in self.rows]),
            "loop_perfect": mean_std([r.loop_perfect for r in self.rows]),
            "non_loop_fraction": mean_std(
                [r.non_loop_fraction for r in self.rows]),
            "target": mean_std([r.target_miss for r in self.rows]),
            "random": mean_std([r.random_miss for r in self.rows]),
            "non_loop_perfect": mean_std(
                [r.non_loop_perfect for r in self.rows]),
        }

    def render(self) -> str:
        table = TextTable(
            ["Program", "Loop Prd/Prf", "%NL", "Tgt/Prf", "Rnd/Prf", "Big",
             "Big%"],
            title="Table 2: loop vs non-loop branches")
        for r in self.rows:
            table.add_row(
                r.name, cd_cell(r.loop_pred_miss, r.loop_perfect),
                pct(r.non_loop_fraction),
                cd_cell(r.target_miss, r.non_loop_perfect),
                cd_cell(r.random_miss, r.non_loop_perfect),
                r.big_count, pct(r.big_fraction))
        for oc in self.failed:
            table.add_row(oc.benchmark, *failure_cells(oc, 6))
        table.add_separator()
        s = self.summary()
        table.add_row("MEAN", cd_cell(s["loop_pred"][0], s["loop_perfect"][0]),
                      pct(s["non_loop_fraction"][0]),
                      cd_cell(s["target"][0], s["non_loop_perfect"][0]),
                      cd_cell(s["random"][0], s["non_loop_perfect"][0]),
                      "", "")
        table.add_row("Std.Dev",
                      cd_cell(s["loop_pred"][1], s["loop_perfect"][1]),
                      pct(s["non_loop_fraction"][1]),
                      cd_cell(s["target"][1], s["non_loop_perfect"][1]),
                      cd_cell(s["random"][1], s["non_loop_perfect"][1]),
                      "", "")
        return table.render()


def table2(runner: SuiteRunner) -> Table2:
    """Loop/non-loop breakdown, loop predictor, Tgt/Rnd baselines, big
    branches."""
    rows = []
    runs, failed = _runs_and_failures(runner)
    for run in runs:
        loop_random = LoopRandomPredictor(run.analysis)
        taken = TakenPredictor(run.analysis)
        random = RandomPredictor(run.analysis)
        loop_eval = evaluate_predictions(
            loop_random.predictions(), run.profile, run.loop_addresses)
        target_eval = evaluate_predictor(taken, run.profile,
                                         run.non_loop_addresses)
        random_eval = evaluate_predictor(random, run.profile,
                                         run.non_loop_addresses)
        big = big_branches(run.profile, run.analysis)
        rows.append(Table2Row(
            name=run.name,
            loop_pred_miss=loop_eval.miss_rate,
            loop_perfect=loop_eval.perfect_rate,
            non_loop_fraction=run.non_loop_fraction,
            target_miss=target_eval.miss_rate,
            random_miss=random_eval.miss_rate,
            non_loop_perfect=target_eval.perfect_rate,
            big_count=big.count,
            big_fraction=big.fraction_of_dynamic))
    return Table2(rows, failed)


# -- Table 3 -------------------------------------------------------------------


@dataclass
class HeuristicCell:
    """One benchmark x heuristic entry: dynamic coverage of non-loop
    branches and the miss/perfect rates over the covered subset."""

    coverage: float
    miss: float
    perfect: float

    @property
    def visible(self) -> bool:
        """The paper leaves cells under 1% coverage blank."""
        return self.coverage >= 0.01


@dataclass
class Table3Row:
    name: str
    non_loop_fraction: float
    cells: dict[str, HeuristicCell]


@dataclass
class Table3:
    rows: list[Table3Row]
    failed: list[RunOutcome] = field(default_factory=list)

    def summary(self) -> dict[str, tuple[tuple[float, float],
                                         tuple[float, float]]]:
        """Per heuristic: (mean/std of miss, mean/std of perfect) over
        visible cells only (blank entries are not counted, per the paper)."""
        out = {}
        for h in HEURISTIC_NAMES:
            visible = [r.cells[h] for r in self.rows if r.cells[h].visible]
            out[h] = (mean_std([c.miss for c in visible]),
                      mean_std([c.perfect for c in visible]))
        return out

    def render(self) -> str:
        columns = ["Program", "NL"] + [f"{h}" for h in HEURISTIC_NAMES]
        table = TextTable(
            columns,
            title="Table 3: heuristics applied individually "
                  "(coverage% miss/perfect; blank if <1% coverage)")
        for r in self.rows:
            cells = []
            for h in HEURISTIC_NAMES:
                c = r.cells[h]
                cells.append(f"{pct(c.coverage)} {cd_cell(c.miss, c.perfect)}"
                             if c.visible else "")
            table.add_row(r.name, pct(r.non_loop_fraction), *cells)
        for oc in self.failed:
            table.add_row(oc.benchmark,
                          *failure_cells(oc, 1 + len(HEURISTIC_NAMES)))
        table.add_separator()
        s = self.summary()
        table.add_row("MEAN", "", *[cd_cell(s[h][0][0], s[h][1][0])
                                    for h in HEURISTIC_NAMES])
        table.add_row("Std.Dev", "", *[cd_cell(s[h][0][1], s[h][1][1])
                                       for h in HEURISTIC_NAMES])
        return table.render()


def _subset_eval(run: BenchmarkRun, addresses: list[int],
                 predictions: dict[int, Prediction]):
    return evaluate_predictions(predictions, run.profile, addresses)


def table3(runner: SuiteRunner) -> Table3:
    """Each heuristic in isolation: coverage and miss rates."""
    rows = []
    runs, failed = _runs_and_failures(runner)
    for run in runs:
        htable = heuristic_table(run)
        executed_nl = run.executed_non_loop
        total_nl = run.dynamic_count(executed_nl)
        cells: dict[str, HeuristicCell] = {}
        for h in HEURISTIC_NAMES:
            covered = [a for a in executed_nl if h in htable[a]]
            dynamic = run.dynamic_count(covered)
            coverage = dynamic / total_nl if total_nl else 0.0
            if covered:
                result = _subset_eval(
                    run, covered, {a: htable[a][h] for a in covered})
                cells[h] = HeuristicCell(coverage, result.miss_rate,
                                         result.perfect_rate)
            else:
                cells[h] = HeuristicCell(0.0, 0.0, 0.0)
        rows.append(Table3Row(run.name, run.non_loop_fraction, cells))
    return Table3(rows, failed)


# -- Table 4 -------------------------------------------------------------------


@dataclass
class Table4:
    """Top orders from the subset-generalization experiment."""

    top_orders: list[tuple[tuple[str, ...], float, float]]
    #: (order, % of trials, overall miss rate)
    n_trials: int
    pairwise: tuple[str, ...]
    failed: list[str] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            ["% of Trials", "Miss Rate", "Order"],
            title=f"Table 4: the 10 most common orders from the "
                  f"subset experiment ({self.n_trials} trials)")
        for order, share, miss in self.top_orders:
            table.add_row(f"{100 * share:.2f}", f"{100 * miss:.2f}",
                          " ".join(order))
        note = ""
        if self.failed:
            note = f"\nFAILED (excluded): {', '.join(self.failed)}"
        return (table.render()
                + f"\nPairwise-analysis order: {' '.join(self.pairwise)}"
                + note)


def table4(runner: SuiteRunner, exclude: tuple[str, ...] = ("matmul",),
           k: int | None = None) -> Table4:
    """The C(N, N/2) best-order generalization experiment (the paper ran
    C(22,11), excluding matrix300 — we exclude its analogue, matmul)."""
    runs, failed = _runs_and_failures(runner)
    datasets = [order_data_for(run) for run in runs
                if run.name not in exclude]
    result = subset_experiment(datasets, k=k)
    top = [(order, freq / result.n_trials, miss)
           for order, freq, miss in result.top(10)]
    return Table4(top, result.n_trials, pairwise_order(datasets),
                  failed=[oc.benchmark for oc in failed])


# -- Table 5 -------------------------------------------------------------------


@dataclass
class Table5Row:
    name: str
    cells: dict[str, HeuristicCell]  #: keyed by heuristic name + "Default"


@dataclass
class Table5:
    order: tuple[str, ...]
    rows: list[Table5Row]
    failed: list[RunOutcome] = field(default_factory=list)

    def columns(self) -> list[str]:
        return list(self.order) + ["Default"]

    def summary(self) -> dict[str, tuple[tuple[float, float],
                                         tuple[float, float]]]:
        out = {}
        for h in self.columns():
            visible = [r.cells[h] for r in self.rows if r.cells[h].visible]
            out[h] = (mean_std([c.miss for c in visible]),
                      mean_std([c.perfect for c in visible]))
        return out

    def render(self) -> str:
        table = TextTable(
            ["Program"] + self.columns(),
            title="Table 5: heuristics in the prioritized order "
                  + " -> ".join(self.order))
        for r in self.rows:
            cells = []
            for h in self.columns():
                c = r.cells[h]
                cells.append(f"{pct(c.coverage)} {cd_cell(c.miss, c.perfect)}"
                             if c.visible else "")
            table.add_row(r.name, *cells)
        for oc in self.failed:
            table.add_row(oc.benchmark,
                          *failure_cells(oc, len(self.columns())))
        table.add_separator()
        s = self.summary()
        table.add_row("MEAN", *[cd_cell(s[h][0][0], s[h][1][0])
                                for h in self.columns()])
        table.add_row("Std.Dev", *[cd_cell(s[h][0][1], s[h][1][1])
                                   for h in self.columns()])
        return table.render()


def table5(runner: SuiteRunner,
           order: tuple[str, ...] | None = None) -> Table5:
    """Per-heuristic accounting when applied in a fixed priority order.

    *order* is any registry-resolvable priority chain (default: the
    paper's); ablated orders from
    :func:`~repro.core.registry.resolve_order` drop columns accordingly.
    """
    rows = []
    runs, failed = _runs_and_failures(runner)
    order = (HEURISTIC_REGISTRY.paper_order() if order is None
             else tuple(HEURISTIC_REGISTRY.get(n).name for n in order))
    for run in runs:
        predictor = HeuristicPredictor(run.analysis, order=order)
        predictions = predictor.predictions()
        executed_nl = run.executed_non_loop
        total_nl = run.dynamic_count(executed_nl)
        cells: dict[str, HeuristicCell] = {}
        for h in list(order) + ["Default"]:
            covered = [a for a in executed_nl
                       if predictor.attribution.get(a) == h]
            dynamic = run.dynamic_count(covered)
            coverage = dynamic / total_nl if total_nl else 0.0
            if covered:
                result = evaluate_predictions(predictions, run.profile,
                                              covered)
                cells[h] = HeuristicCell(coverage, result.miss_rate,
                                         result.perfect_rate)
            else:
                cells[h] = HeuristicCell(0.0, 0.0, 0.0)
        rows.append(Table5Row(run.name, cells))
    return Table5(tuple(order), rows, failed)


# -- Table 6 -------------------------------------------------------------------


@dataclass
class Table6Row:
    name: str
    heuristic_coverage: float       #: non-loop dynamic coverage (non-default)
    heuristic_miss: float           #: miss on covered non-loop branches
    heuristic_perfect: float
    with_default_miss: float        #: all non-loop branches
    with_default_perfect: float
    all_miss: float                 #: all branches (loop + non-loop)
    all_perfect: float
    loop_rand_miss: float           #: Loop+Rand comparator, all branches
    target_nl_miss: float           #: Tgt on non-loop (for Table 7)
    random_nl_miss: float           #: Rnd on non-loop (for Table 7)


@dataclass
class Table6:
    rows: list[Table6Row]
    failed: list[RunOutcome] = field(default_factory=list)

    def render(self) -> str:
        table = TextTable(
            ["Program", "Heuristics", "+Default", "All", "Loop+Rand"],
            title="Table 6: final results (coverage% miss/perfect)")
        for r in self.rows:
            table.add_row(
                r.name,
                f"{pct(r.heuristic_coverage)} "
                f"{cd_cell(r.heuristic_miss, r.heuristic_perfect)}",
                cd_cell(r.with_default_miss, r.with_default_perfect),
                cd_cell(r.all_miss, r.all_perfect),
                cd_cell(r.loop_rand_miss, r.all_perfect))
        for oc in self.failed:
            table.add_row(oc.benchmark, *failure_cells(oc, 4))
        return table.render()


def table6(runner: SuiteRunner,
           order: tuple[str, ...] | None = None) -> Table6:
    """The combined predictor's final results (*order* defaults to the
    registry's paper chain)."""
    rows = []
    runs, failed = _runs_and_failures(runner)
    for run in runs:
        predictor = HeuristicPredictor(run.analysis, order=order)
        predictions = predictor.predictions()
        loop_rand = LoopRandomPredictor(run.analysis)
        taken = TakenPredictor(run.analysis)
        random = RandomPredictor(run.analysis)

        executed_nl = run.executed_non_loop
        covered = [a for a in executed_nl
                   if predictor.attribution.get(a) not in (None, "Default")]
        total_nl = run.dynamic_count(executed_nl)
        coverage = run.dynamic_count(covered) / total_nl if total_nl else 0.0
        cov_eval = evaluate_predictions(predictions, run.profile, covered)
        nl_eval = evaluate_predictions(predictions, run.profile, executed_nl)
        all_eval = evaluate_predictions(predictions, run.profile)
        lr_eval = evaluate_predictor(loop_rand, run.profile)
        tgt_eval = evaluate_predictor(taken, run.profile, executed_nl)
        rnd_eval = evaluate_predictor(random, run.profile, executed_nl)
        rows.append(Table6Row(
            name=run.name,
            heuristic_coverage=coverage,
            heuristic_miss=cov_eval.miss_rate,
            heuristic_perfect=cov_eval.perfect_rate,
            with_default_miss=nl_eval.miss_rate,
            with_default_perfect=nl_eval.perfect_rate,
            all_miss=all_eval.miss_rate,
            all_perfect=all_eval.perfect_rate,
            loop_rand_miss=lr_eval.miss_rate,
            target_nl_miss=tgt_eval.miss_rate,
            random_nl_miss=rnd_eval.miss_rate))
    return Table6(rows, failed)


# -- Table 7 -------------------------------------------------------------------


@dataclass
class Table7:
    """Means/std-devs of Table 6, for all benchmarks and for "most" (the
    paper excludes programs where a few big branches account for >90% of
    dynamic non-loop branches: eqntott, grep, tomcatv, matrix300 — we apply
    the same >90% rule to our analogues)."""

    all_stats: dict[str, tuple[float, float]]
    most_stats: dict[str, tuple[float, float]]
    excluded: list[str]
    failed: list[str] = field(default_factory=list)

    _COLUMNS = ("heuristic_nl", "all", "loop_rand", "target_nl", "random_nl")

    def render(self) -> str:
        table = TextTable(
            ["Metric", "mean(all)", "std(all)", "mean(most)", "std(most)"],
            title=f"Table 7: summary (excluded from 'most': "
                  f"{', '.join(self.excluded) or 'none'})")
        labels = {
            "heuristic_nl": "Heuristic miss, non-loop",
            "all": "Heuristic miss, all branches",
            "loop_rand": "Loop+Rand miss, all branches",
            "target_nl": "Tgt miss, non-loop",
            "random_nl": "Rnd miss, non-loop",
        }
        for key in self._COLUMNS:
            a = self.all_stats[key]
            m = self.most_stats[key]
            table.add_row(labels[key], pct(a[0]), pct(a[1]), pct(m[0]),
                          pct(m[1]))
        rendered = table.render()
        if self.failed:
            rendered += f"\nFAILED (excluded): {', '.join(self.failed)}"
        return rendered


def table7(runner: SuiteRunner, big_threshold: float = 0.9,
           big_count_limit: int = 6,
           order: tuple[str, ...] | None = None) -> Table7:
    """The paper's exclusion rule, literally: programs where "over 90% of
    the non-loop branches are accounted for by a few branch instructions" —
    we read "a few" as at most *big_count_limit* big branches.  *order*
    (default: the paper chain) is forwarded to the underlying Table 6."""
    t6 = table6(runner, order=order)
    excluded = []
    runs, failed = _runs_and_failures(runner)
    for run in runs:
        big = big_branches(run.profile, run.analysis)
        if big.fraction_of_dynamic > big_threshold \
                and big.count <= big_count_limit:
            excluded.append(run.name)

    def stats(rows: list[Table6Row]) -> dict[str, tuple[float, float]]:
        return {
            "heuristic_nl": mean_std([r.with_default_miss for r in rows]),
            "all": mean_std([r.all_miss for r in rows]),
            "loop_rand": mean_std([r.loop_rand_miss for r in rows]),
            "target_nl": mean_std([r.target_nl_miss for r in rows]),
            "random_nl": mean_std([r.random_nl_miss for r in rows]),
        }

    most_rows = [r for r in t6.rows if r.name not in excluded]
    return Table7(stats(t6.rows), stats(most_rows), excluded,
                  failed=[oc.benchmark for oc in failed])
