"""Registered transformation passes and pipeline scheduling.

A *pass* is a named transform ``run(unit, am) -> changed`` over the same
unit type its :class:`~repro.passes.manager.AnalysisManager` serves.  Each
pass declares which analyses it ``preserves``; when a pass reports a
change, the pipeline invalidates every cached analysis the pass did not
promise to keep (a pass that reports *no* change preserves everything by
definition — that is what makes cross-pass analysis reuse sound).

:class:`PassPipeline` executes an ordered list of passes either once or to
a bounded fixed point, wrapping every pass execution in a telemetry span
(``pass:<name>``) and counting runs / changes per pass, so a
telemetry-enabled compile shows exactly which pass does the work.  An
optional ``after_pass`` observer hook is the seam the bcc CLI's
``--emit-ir-after`` dump rides on.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro import telemetry
from repro.errors import ReproError
from repro.passes.manager import AnalysisManager, AnalysisRegistry

__all__ = ["Pass", "FunctionPass", "PassRegistry", "PassPipeline",
           "PipelineError"]


class PipelineError(ReproError):
    """Bad pipeline spec: unknown pass name or malformed spec string."""


class Pass:
    """Base class: a named unit transform with a ``preserves`` contract.

    Subclasses set :attr:`name` and implement :meth:`run`.  ``preserves``
    names the analyses that stay valid *even when the pass reports a
    change*; everything else is invalidated by the pipeline.
    """

    name: str = "<unnamed>"
    preserves: frozenset[str] = frozenset()
    description: str = ""

    def run(self, unit, am: AnalysisManager) -> bool:
        """Transform *unit*; return True iff anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """Adapter: wrap a plain ``fn(unit, am) -> bool`` callable as a pass."""

    def __init__(self, name: str, fn: Callable[..., bool],
                 preserves: Iterable[str] = (),
                 description: str = "") -> None:
        self.name = name
        self._fn = fn
        self.preserves = frozenset(preserves)
        self.description = description or (fn.__doc__ or "").strip()

    def run(self, unit, am: AnalysisManager) -> bool:
        return self._fn(unit, am)


class PassRegistry:
    """Name -> pass, with comma-separated pipeline-spec parsing."""

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._passes: dict[str, Pass] = {}

    def register(self, name: str, *, preserves: Iterable[str] = (),
                 description: str = ""):
        """Decorator registering ``fn(unit, am) -> bool`` under *name*."""

        def decorator(fn):
            self.add(FunctionPass(name, fn, preserves=preserves,
                                  description=description))
            return fn

        return decorator

    def add(self, pass_: Pass) -> Pass:
        if pass_.name in self._passes:
            raise ValueError(f"pass {pass_.name!r} already registered in "
                             f"{self.namespace!r}")
        self._passes[pass_.name] = pass_
        return pass_

    def get(self, name: str) -> Pass:
        try:
            return self._passes[name]
        except KeyError:
            known = ", ".join(sorted(self._passes)) or "<none>"
            raise PipelineError(
                f"unknown pass {name!r} (known passes: {known})",
                phase="pipeline") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._passes))

    def __contains__(self, name: str) -> bool:
        return name in self._passes

    def parse(self, spec: str | Sequence[str]) -> list[Pass]:
        """Resolve a pipeline spec — ``"dce,simplify-cfg"`` or a sequence
        of names — into pass instances, validating every name."""
        if isinstance(spec, str):
            names = [part.strip() for part in spec.split(",") if part.strip()]
        else:
            names = list(spec)
        return [self.get(name) for name in names]


class PassPipeline:
    """Ordered pass execution with optional fixed-point scheduling.

    Parameters
    ----------
    passes:
        The passes, in execution order.
    fixed_point:
        Re-run the whole sequence until no pass reports a change (bounded
        by *max_rounds*).  ``False`` runs each pass exactly once.
    max_rounds:
        Fixed-point bound (the seed optimizer's historical 8).
    category:
        Telemetry span category for the per-pass spans.
    """

    def __init__(self, passes: Sequence[Pass], *, fixed_point: bool = False,
                 max_rounds: int = 8, category: str = "opt") -> None:
        self.passes = list(passes)
        self.fixed_point = fixed_point
        self.max_rounds = max_rounds if fixed_point else 1
        self.category = category

    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, unit, am: AnalysisManager | None = None,
            after_pass: Callable[[Pass, object, bool], None] | None = None,
            ) -> bool:
        """Run the pipeline over *unit*; returns True iff anything changed.

        *am* is created on demand when the first pass needs one is not
        supplied (passes receive it either way). *after_pass* is called as
        ``after_pass(pass_, unit, changed)`` after every pass execution —
        the ``--emit-ir-after`` seam.
        """
        if am is None:
            am = AnalysisManager(unit, _NULL_ANALYSES)
        tm = telemetry.get()
        any_changed = False
        for round_index in range(self.max_rounds):
            round_changed = False
            for pass_ in self.passes:
                with tm.span(f"pass:{pass_.name}", category=self.category,
                             round=round_index):
                    changed = bool(pass_.run(unit, am))
                tm.counter(f"pass.{pass_.name}.runs").inc()
                if changed:
                    tm.counter(f"pass.{pass_.name}.changed").inc()
                    am.invalidate(preserved=pass_.preserves)
                if after_pass is not None:
                    after_pass(pass_, unit, changed)
                round_changed |= changed
            any_changed |= round_changed
            if not round_changed:
                break
        return any_changed


#: Empty registry backing pipelines whose passes request no analyses;
#: keeps AnalysisManager construction uniform.
_NULL_ANALYSES = AnalysisRegistry("null")
