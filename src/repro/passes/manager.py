"""Analysis registration and cached, invalidatable analysis results.

An *analysis* is a pure function of one *unit* (an ``IRFunction``, a
``ControlFlowGraph``, ...) producing an immutable-by-convention result
(live-out sets, a dominator tree, natural-loop facts).  Analyses are
registered by name on an :class:`AnalysisRegistry`; an
:class:`AnalysisManager` is bound to one unit and memoizes results until a
transformation pass invalidates them.

Providers receive ``(unit, manager)`` so an analysis can depend on another
analysis through the same cache (e.g. natural loops consume the dominator
tree) — dependencies are therefore shared, never recomputed.

Every computation and every cache hit is counted through
:mod:`repro.telemetry` (``<prefix>.compute`` / ``<prefix>.reuse``, prefix
defaulting to ``analysis.<name>``), which is what lets tests *prove* reuse
instead of assuming it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro import telemetry

__all__ = ["AnalysisRegistry", "AnalysisManager", "UnknownAnalysisError"]


class UnknownAnalysisError(KeyError):
    """Requested analysis name is not registered."""


@dataclass(frozen=True)
class _AnalysisEntry:
    name: str
    provider: Callable[[Any, "AnalysisManager"], Any]
    counter_prefix: str
    description: str = ""


class AnalysisRegistry:
    """Name -> analysis provider, for one unit type (one per layer)."""

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace
        self._entries: dict[str, _AnalysisEntry] = {}

    def register(self, name: str, *, counter_prefix: str | None = None,
                 description: str = ""):
        """Decorator: register ``provider(unit, am) -> result`` as *name*.

        *counter_prefix* overrides the telemetry counter namespace
        (default ``analysis.<name>``), producing ``<prefix>.compute`` and
        ``<prefix>.reuse`` counters.
        """

        def decorator(provider):
            if name in self._entries:
                raise ValueError(
                    f"analysis {name!r} already registered in "
                    f"{self.namespace!r}")
            self._entries[name] = _AnalysisEntry(
                name=name, provider=provider,
                counter_prefix=counter_prefix or f"analysis.{name}",
                description=description or (provider.__doc__ or "").strip())
            return provider

        return decorator

    def entry(self, name: str) -> _AnalysisEntry:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise UnknownAnalysisError(
                f"unknown analysis {name!r} in registry "
                f"{self.namespace!r} (known: {known})") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def manager(self, unit) -> "AnalysisManager":
        """A fresh :class:`AnalysisManager` over *unit*."""
        return AnalysisManager(unit, self)


class AnalysisManager:
    """Per-unit cache of analysis results with explicit invalidation."""

    def __init__(self, unit, registry: AnalysisRegistry) -> None:
        self.unit = unit
        self.registry = registry
        self._cache: dict[str, Any] = {}

    def get(self, name: str):
        """The (possibly cached) result of analysis *name* on the unit."""
        entry = self.registry.entry(name)
        tm = telemetry.get()
        if name in self._cache:
            tm.counter(f"{entry.counter_prefix}.reuse").inc()
            return self._cache[name]
        tm.counter(f"{entry.counter_prefix}.compute").inc()
        result = entry.provider(self.unit, self)
        self._cache[name] = result
        return result

    def cached(self, name: str):
        """The cached result of *name*, or ``None`` if not computed."""
        return self._cache.get(name)

    def is_cached(self, name: str) -> bool:
        return name in self._cache

    def seed(self, name: str, result) -> None:
        """Pre-populate the cache (back-compat seam for eagerly computed
        results handed in from outside the manager)."""
        self.registry.entry(name)  # validate the name
        self._cache[name] = result

    def invalidate(self, preserved: frozenset[str] | set[str] = frozenset()
                   ) -> None:
        """Drop every cached result not named in *preserved* (what the
        pipeline calls after a pass reports a change)."""
        if not preserved:
            self._cache.clear()
            return
        self._cache = {name: result for name, result in self._cache.items()
                       if name in preserved}

    def invalidate_one(self, name: str) -> None:
        self._cache.pop(name, None)

    def cached_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._cache))
