"""Generic pass- and analysis-manager framework (LLVM-style, miniature).

The reproduction pipeline is really three pipelines stacked on top of each
other — the BLC optimizer's IR passes, the per-procedure binary CFG
analyses (dominators / postdominators / natural loops), and the
seven-heuristic priority chain.  This package provides the shared
machinery all three layers run on:

:mod:`repro.passes.manager`
    :class:`AnalysisRegistry` (named analysis providers over some *unit*
    type) and :class:`AnalysisManager` (lazily computed, memoized analysis
    results per unit, with explicit invalidation and compute/reuse
    telemetry counters).
:mod:`repro.passes.pipeline`
    :class:`Pass` (named transform with a declared ``preserves`` set),
    :class:`PassRegistry` (name -> pass factory, pipeline-spec parsing),
    and :class:`PassPipeline` (ordered execution with optional fixed-point
    scheduling, per-pass telemetry spans / change counters, and analysis
    invalidation driven by each pass's ``preserves`` declaration).

Concrete registrations live with their layers: :mod:`repro.bcc.opt`
registers the IR passes and the ``liveness`` analysis,
:mod:`repro.cfg.analysis` registers the CFG analyses, and
:mod:`repro.core.registry` hosts the (separate, but same-spirited)
heuristic registry.  See docs/passes.md for the contract.
"""

from repro.passes.manager import AnalysisManager, AnalysisRegistry
from repro.passes.pipeline import (
    FunctionPass, Pass, PassPipeline, PassRegistry, PipelineError,
)

__all__ = [
    "AnalysisManager", "AnalysisRegistry",
    "Pass", "FunctionPass", "PassRegistry", "PassPipeline", "PipelineError",
]
