"""Testing utilities: the fault-injection (chaos) framework.

``repro.testing.chaos`` fabricates broken executables, starved datasets,
and exhausted resource budgets so the resilience machinery
(:mod:`repro.errors`, :mod:`repro.harness.resilience`) can be exercised
deterministically. Production code must never import from here.
"""

from repro.testing.chaos import (
    FAULTS, clone_executable, corrupt_branch_targets, corrupt_opcode,
    sabotage,
)

__all__ = [
    "FAULTS", "clone_executable", "corrupt_branch_targets", "corrupt_opcode",
    "sabotage",
]
