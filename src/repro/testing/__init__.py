"""Testing utilities: fault injection and generative strategies.

``repro.testing.chaos`` fabricates broken executables, starved datasets,
and exhausted resource budgets so the resilience machinery
(:mod:`repro.errors`, :mod:`repro.harness.resilience`) can be exercised
deterministically.  ``repro.testing.strategies`` exposes the
:mod:`repro.gen` grammar as hypothesis strategies (``blc_programs``)
for property-based differential testing.  Production code must never
import from here.
"""

from repro.testing.chaos import (
    FAULTS, clone_executable, corrupt_branch_targets, corrupt_opcode,
    sabotage,
)

__all__ = [
    "FAULTS", "clone_executable", "corrupt_branch_targets", "corrupt_opcode",
    "sabotage", "blc_programs", "gen_knobs",
]

try:
    from repro.testing.strategies import blc_programs, gen_knobs
except ImportError:  # hypothesis not installed: chaos still usable
    pass
