"""Hypothesis strategies over the :mod:`repro.gen` grammar.

``blc_programs()`` draws complete, ready-to-compile generated programs —
lint-clean, verifier-clean, terminating within their paired fuel — so
property tests can assert compiler/simulator invariants over the whole
grammar instead of hand-written snippets.  Shrinking works on the
``(seed, index, knobs)`` triple: a failing case always reduces to a
reproducible generator invocation, never to an unprintable AST.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.gen.grammar import (
    TEMPLATE_LABELS, GenKnobs, GenProgram, generate_program,
)

__all__ = ["gen_knobs", "blc_programs"]


def gen_knobs(max_loops: int = 3, max_calls: int = 2,
              max_loop_depth: int = 3, max_constructs: int = 8,
              templates: tuple[str, ...] | None = None
              ) -> st.SearchStrategy[GenKnobs]:
    """Strategy over knob settings spanning the workload axes."""
    if templates is not None:
        unknown = sorted(set(templates) - set(TEMPLATE_LABELS))
        if unknown:
            raise ValueError(f"unknown template keys: {', '.join(unknown)}")
    return st.builds(
        GenKnobs,
        constructs=st.integers(min_value=2, max_value=max_constructs),
        max_loop_depth=st.integers(min_value=1, max_value=max_loop_depth),
        max_loops=st.integers(min_value=1, max_value=max(1, max_loops)),
        max_calls=st.integers(min_value=0, max_value=max_calls),
        branch_bias=st.sampled_from((0.6, 0.75, 0.85, 0.95)),
        pointer_density=st.sampled_from((0.0, 0.5, 1.0)),
        input_dependence=st.sampled_from((0.0, 0.5, 1.0)),
        templates=st.just(tuple(templates) if templates else None),
    )


def blc_programs(max_loops: int = 3, max_calls: int = 2,
                 max_loop_depth: int = 3, max_constructs: int = 8,
                 templates: tuple[str, ...] | None = None
                 ) -> st.SearchStrategy[GenProgram]:
    """Strategy over generated BLC programs (with datasets + labels).

    All arguments bound the drawn knobs; the seed/index space is wide
    enough that distinct examples are effectively distinct programs.
    """
    return st.builds(
        generate_program,
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=7),
        gen_knobs(max_loops=max_loops, max_calls=max_calls,
                  max_loop_depth=max_loop_depth,
                  max_constructs=max_constructs, templates=templates),
    )
