"""Fault injection for the experiment pipeline.

The chaos helpers fabricate the failure modes a long-running reproduction
actually meets — corrupted artifacts, starved inputs, runaway executions,
memory exhaustion — without touching the benchmark definitions. They
operate through the public sabotage seams on
:class:`~repro.harness.runner.SuiteRunner` (``poison_compile``,
``poison_executable``, ``limit_fuel``, ``limit_inputs``, ``limit_memory``,
``skip``), so the runner under test exercises exactly the code paths a
real fault would.

Guarantees the fault-injection test suite checks against:

* every injected fault surfaces as a typed
  :class:`~repro.errors.ReproError` (never a bare ``KeyError`` /
  ``IndexError`` / hang), and simulator-phase faults carry a populated
  :class:`~repro.errors.CrashReport`;
* corruption never aliases healthy state: executables are deep-cloned
  before mutation (:func:`clone_executable`), so the pristine compiled
  artifact memoized elsewhere is untouched.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager

from repro.errors import ReproError
from repro.harness.cache import CHAOS_LOCK_HOLD_ENV
from repro.harness.locking import CHAOS_LEASE_TTL_ENV
from repro.harness.parallel import (
    CHAOS_SLOW_WORKER_ENV, CHAOS_WORKER_CRASH_ENV,
)
from repro.harness.runner import SuiteRunner
from repro.isa.instructions import Instruction, Kind, Opcode
from repro.isa.program import Executable, Procedure, TEXT_BASE, WORD_SIZE
from repro.service.breaker import CHAOS_BREAKER_TRIP_ENV
from repro.sim.engine import FORCE_TIER0_ENV

__all__ = [
    "FAULTS", "ENV_SEAMS", "chaos_env", "clone_executable",
    "corrupt_branch_targets", "corrupt_opcode", "sabotage",
    "CHAOS_WORKER_CRASH_ENV", "CHAOS_SLOW_WORKER_ENV",
    "CHAOS_LOCK_HOLD_ENV", "CHAOS_LEASE_TTL_ENV", "CHAOS_BREAKER_TRIP_ENV",
    "FORCE_TIER0_ENV",
]

#: fault names accepted by :func:`sabotage` (parametrize tests over these)
FAULTS = ("compile", "opcode", "branch-target", "inputs", "fuel", "memory",
          "skip")

#: the process-level chaos seams, by short name.  These are injected via
#: environment variables (not runner seams) because their blast radius is
#: a *process*: worker death, a wedged/slow worker, lease-TTL expiry
#: under contention, artificially long lease holds, and a circuit
#: breaker forced open at construction.  Forked workers inherit them,
#: which is exactly the point.
ENV_SEAMS = {
    "worker-crash": CHAOS_WORKER_CRASH_ENV,    # <benchmark>
    "slow-worker": CHAOS_SLOW_WORKER_ENV,      # <benchmark|*>:<seconds>
    "lock-hold": CHAOS_LOCK_HOLD_ENV,          # <seconds>
    "lease-ttl": CHAOS_LEASE_TTL_ENV,          # <seconds>
    "breaker-trip": CHAOS_BREAKER_TRIP_ENV,    # any non-empty value
    "force-tier0": FORCE_TIER0_ENV,            # any non-empty value:
                                               # every Machine in the
                                               # process (and forked
                                               # workers) runs tier0
}


@contextmanager
def chaos_env(**seams: str | float | None):
    """Set process-level chaos seams for the duration of a block.

    Keyword names are :data:`ENV_SEAMS` keys with ``-`` spelled ``_``
    (``worker_crash="queens"``, ``lock_hold=0.2``); values are coerced
    to strings, ``None`` unsets the seam.  Previous values are restored
    on exit even when the block raises — chaos must never leak between
    tests.

    Note that already-forked worker processes keep the environment they
    were born with; arm seams *before* starting pools/engines when the
    fault must fire inside workers.
    """
    saved: dict[str, str | None] = {}
    try:
        for name, value in seams.items():
            env = ENV_SEAMS.get(name.replace("_", "-"))
            if env is None:
                raise ValueError(
                    f"unknown chaos seam {name!r} (expected one of "
                    f"{', '.join(k.replace('-', '_') for k in ENV_SEAMS)})")
            saved[env] = os.environ.get(env)
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = str(value)
        yield
    finally:
        for env, value in saved.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value

#: opcode that no dispatch arm implements — executing it must raise a typed
#: SimulationError, not corrupt state silently
_UNDEFINED_OPCODE = Opcode("ud2", Kind.NOP)


def clone_executable(executable: Executable) -> Executable:
    """A structurally independent copy of *executable*.

    The instruction list and procedure table are rebuilt so mutations to
    the clone can never leak into the original (which the
    :class:`SuiteRunner` may have memoized).  Instructions themselves are
    frozen dataclasses, so sharing them is safe until a corruptor replaces
    one wholesale.
    """
    procedures = [Procedure(p.name, p.start_index, p.end_index)
                  for p in executable.procedures]
    return Executable(
        instructions=list(executable.instructions),
        procedures=procedures,
        data=executable.data,
        symbols=dict(executable.symbols),
        entry=executable.entry,
    )


def _entry_index(executable: Executable) -> int:
    return (executable.entry - TEXT_BASE) // WORD_SIZE


def corrupt_opcode(executable: Executable,
                   index: int | None = None) -> Executable:
    """Clone *executable* and replace one instruction's opcode with an
    undefined one (default: the entry instruction, so the fault fires on
    the very first dispatch)."""
    corrupted = clone_executable(executable)
    if index is None:
        index = _entry_index(corrupted)
    inst = corrupted.instructions[index]
    corrupted.instructions[index] = dataclasses.replace(
        inst, op=_UNDEFINED_OPCODE)
    return corrupted


def corrupt_branch_targets(executable: Executable) -> Executable:
    """Clone *executable* and point every branch/jump/call target one page
    past the end of the text segment.

    The first taken transfer of control then lands outside the text
    segment, which the simulator must report as a typed ``pc out of
    range`` fault (with crash report), never an ``IndexError``.
    """
    corrupted = clone_executable(executable)
    bad_target = TEXT_BASE + WORD_SIZE * (len(corrupted.instructions) + 64)
    insts = corrupted.instructions
    for i, inst in enumerate(insts):
        if inst.target_address >= 0:
            insts[i] = dataclasses.replace(inst, target_address=bad_target)
    return corrupted


def sabotage(runner: SuiteRunner, name: str, fault: str,
             dataset: str | None = None) -> None:
    """Inject *fault* into benchmark *name* through *runner*'s chaos seams.

    *dataset* scopes the resource-limit faults (``inputs`` / ``fuel`` /
    ``memory``) to one dataset of the benchmark; ``None`` (the default)
    applies them to every dataset.  Artifact faults (``compile`` /
    ``opcode`` / ``branch-target``) and ``skip`` are inherently
    per-benchmark and ignore it.

    Worker-process faults are injected differently: set the
    ``REPRO_CHAOS_WORKER_CRASH`` environment variable to a benchmark name
    and any parallel shard for that benchmark kills its own worker
    process (``os._exit``) before running — exercising the
    :class:`~repro.errors.WorkerCrashError` path without a real segfault.

    Supported faults (see :data:`FAULTS`):

    ``compile``
        Poison the compilation cache with a typed compile-phase error.
    ``opcode``
        Replace the compiled artifact with an undefined-opcode clone
        (static analysis stays pristine, execution faults immediately).
    ``branch-target``
        Replace the compiled artifact with one whose transfers of control
        all point past the text segment.
    ``inputs``
        Truncate the dataset to zero inputs, starving the first read
        syscall (:class:`~repro.errors.InputExhausted`).
    ``fuel``
        Cap the instruction budget at 1 000 instructions, forcing
        :class:`~repro.errors.SimulationLimitExceeded`.
    ``memory``
        Cap data memory at a single 4 KiB page, forcing
        :class:`~repro.errors.MemoryError_` on the first stack access.
    ``skip``
        Mark the benchmark operator-skipped.
    """
    if fault == "compile":
        runner.poison_compile(name, ReproError(
            "chaos: injected compile failure", benchmark=name,
            phase="compile"))
    elif fault in ("opcode", "branch-target"):
        executable, analysis = runner.compiled(name)
        corruptor = (corrupt_opcode if fault == "opcode"
                     else corrupt_branch_targets)
        runner.poison_executable(name, corruptor(executable), analysis)
    elif fault == "inputs":
        runner.limit_inputs(name, 0, dataset=dataset)
    elif fault == "fuel":
        runner.limit_fuel(name, 1_000, dataset=dataset)
    elif fault == "memory":
        runner.limit_memory(name, 4096, dataset=dataset)
    elif fault == "skip":
        runner.skip(name, reason="chaos")
    else:
        raise ValueError(f"unknown chaos fault {fault!r} "
                         f"(expected one of {', '.join(FAULTS)})")
