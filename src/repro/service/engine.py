"""The fault-tolerant job engine: queue, dedupe, quarantine, breaker.

This is the service's brain.  Jobs flow::

    submit ──► quarantine check ──► in-flight dedupe ──► bounded queue
                                                              │
              circuit breaker ◄── engine-side failures        ▼
                                                     dispatcher tasks
                                                              │
                                                              ▼
                                            WorkerSupervisor (slots)

Every accepted job terminates in a typed state — that is the contract
the chaos drill enforces.  The moving parts:

* **bounded queue + dispatchers** — one dispatcher task per worker slot
  pulls records off an :class:`asyncio.Queue` whose size bound is the
  explicit backpressure limit (overflow is a typed rejection, not an
  unbounded backlog);
* **in-flight dedupe** — a submission whose cache key matches a job
  already queued or running becomes a *follower* of that primary: no
  second execution, no second store write, one shared terminal state;
* **poison-job quarantine** — a key that has killed
  ``quarantine_threshold`` workers is refused further workers; new and
  retried submissions for it terminate ``quarantined``;
* **circuit breaker** — *engine-side* failures (crashes, deadlines,
  undecodable results) feed the breaker; deterministic pipeline
  failures do not (a benchmark dividing by zero is the engine working
  exactly as designed).  While open, submissions shed as typed
  rejections;
* **crash redispatch** — the same :class:`~repro.harness.retry.RetryPolicy`
  spine the batch runners use, configured for worker-crash retries with
  exponential backoff.

Execution itself reuses the battle-tested shard worker
(:func:`repro.harness.parallel.run_shard`) inside supervised slots, so
the service inherits the artifact cache (now lease-guarded), negative
caching, transient-fuel retries, and the chaos seams wholesale.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from dataclasses import dataclass
from time import perf_counter, sleep

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.telemetry import tracing as _tracing
from repro.telemetry.export import slo_summary
from repro.bench.suite import get
from repro.errors import (
    JobDeadlineError, JobQuarantinedError, JobRejectedError, ReproError,
    WorkerCrashError, WorkerResultError,
)
from repro.harness.cache import ArtifactCache
from repro.harness.parallel import (
    CHAOS_WORKER_CRASH_ENV, ShardJob, ShardResult, _chaos_slow_delay,
    compile_artifact, run_shard,
)
from repro.harness.resilience import RunStatus, classify_failure
from repro.harness.retry import RetryPolicy
from repro.core.evaluation import evaluate_predictor
from repro.core.predictors import (
    BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor,
)
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import JobKind, JobRecord, JobRequest, JobState
from repro.service.supervisor import WorkerSupervisor

__all__ = ["ServiceConfig", "ServiceOrder", "JobEngine", "execute_order",
           "build_payload"]

#: default per-run instruction budget (mirrors the serial harness)
_DEFAULT_FUEL = 100_000_000


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`JobEngine` instance."""

    workers: int = 2                    #: supervised worker slots
    queue_limit: int = 64               #: bounded backlog (overflow rejects)
    deadline_s: float | None = 60.0     #: per-attempt service deadline
    cache_dir: str | None = None        #: shared artifact store root
    fuel_budget: int = _DEFAULT_FUEL
    retry_fuel_factor: int = 4          #: transient-fuel retry (in-worker)
    crash_retries: int = 1              #: redispatches after a worker crash
    quarantine_threshold: int = 2       #: worker deaths per key before poison
    breaker_failure_threshold: int = 5
    breaker_window_s: float = 30.0
    breaker_cooldown_s: float = 5.0
    breaker_half_open_probes: int = 1
    health_interval_s: float = 5.0      #: 0 disables the background loop
    health_timeout_s: float = 10.0
    lease_wait_s: float = 10.0          #: lock-aware read wait in workers
    start_method: str | None = None
    max_records: int = 4096             #: finished-record retention bound
    #: simulator execution engine for every job this service runs
    #: (``None``: resolve via REPRO_CHAOS_FORCE_TIER0 / REPRO_SIM_ENGINE,
    #: else tier1); folded into dedupe/cache keys so tiers never alias
    engine: str | None = None


@dataclass
class ServiceOrder:
    """Picklable work order shipped to a supervised worker."""

    kind: str          #: a :class:`JobKind` value
    shard: ShardJob


def execute_order(order: ServiceOrder) -> ShardResult:
    """Worker entry point for service jobs (module-level so it pickles).

    Simulate/predict orders reuse the shard worker verbatim; compile
    orders run just the compile+classify phase (with the same chaos
    seams, so drills exercise every job kind).
    """
    if order.kind != JobKind.COMPILE.value:
        return run_shard(order.shard)
    job = order.shard
    if os.environ.get(CHAOS_WORKER_CRASH_ENV) == job.benchmark:
        os._exit(17)
    delay = _chaos_slow_delay(job.benchmark)
    if delay > 0:
        sleep(delay)
    cache = ArtifactCache(job.cache_dir) if job.cache_dir else None
    try:
        executable, analysis = compile_artifact(
            get(job.benchmark), optimize=job.optimize, cache=cache)
    except ReproError as exc:
        return ShardResult(
            benchmark=job.benchmark, dataset=job.dataset,
            status=classify_failure(exc), error=exc,
            cache_stats=cache.stats() if cache is not None else {})
    except Exception as exc:
        wrapped = ReproError(
            f"compile order failed: {type(exc).__name__}: {exc}",
            benchmark=job.benchmark, phase="compile")
        return ShardResult(
            benchmark=job.benchmark, dataset=job.dataset,
            status=classify_failure(wrapped), error=wrapped,
            cache_stats=cache.stats() if cache is not None else {})
    return ShardResult(
        benchmark=job.benchmark, dataset=job.dataset, status=RunStatus.OK,
        executable=executable, analysis=analysis,
        cache_stats=cache.stats() if cache is not None else {})


def _rates(result) -> dict:
    return {"miss_rate": round(result.miss_rate, 6),
            "perfect_rate": round(result.perfect_rate, 6),
            "cd": result.cd()}


def build_payload(request: JobRequest, result: ShardResult) -> dict:
    """Wire-format result body for a successful execution.

    A pure function of (request, result) — the smoke drill recomputes it
    from a chaos-free serial run to assert byte-identity with what the
    service returned under fault injection.
    """
    out: dict = {"benchmark": result.benchmark,
                 "kind": request.kind.value}
    analysis = result.analysis
    if analysis is not None:
        loop = sum(1 for b in analysis.branches.values()
                   if b.is_loop_branch)
        out["branches"] = {"total": len(analysis.branches),
                           "loop": loop,
                           "non_loop": len(analysis.branches) - loop}
    if request.kind is JobKind.COMPILE:
        return out
    out["dataset"] = result.dataset
    out["instr_count"] = result.instr_count
    out["output"] = result.output[-2000:]
    if result.profile is not None:
        out["executed_branches"] = len(result.profile.executed_branches())
    if (request.kind is JobKind.PREDICT and analysis is not None
            and result.profile is not None):
        out["prediction"] = {
            "heuristic": _rates(evaluate_predictor(
                HeuristicPredictor(analysis), result.profile)),
            "btfnt": _rates(evaluate_predictor(
                BTFNTPredictor(analysis), result.profile)),
            "loop_rand": _rates(evaluate_predictor(
                LoopRandomPredictor(analysis), result.profile)),
        }
    return out


class JobEngine:
    """Accepts :class:`JobRequest`\\ s; guarantees each a typed ending."""

    def __init__(self, config: ServiceConfig | None = None,
                 exec_fn=execute_order) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.supervisor = WorkerSupervisor(
            workers=cfg.workers, exec_fn=exec_fn,
            start_method=cfg.start_method,
            health_interval_s=cfg.health_interval_s,
            health_timeout_s=cfg.health_timeout_s)
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_failure_threshold,
            window_s=cfg.breaker_window_s,
            cooldown_s=cfg.breaker_cooldown_s,
            half_open_probes=cfg.breaker_half_open_probes)
        self.cache = (ArtifactCache(cfg.cache_dir)
                      if cfg.cache_dir else None)
        self.records: dict[str, JobRecord] = {}
        self.counts = {state.value: 0 for state in JobState
                       if state.value not in ("queued", "running")}
        self.counts["submitted"] = 0
        self.counts["deduped"] = 0
        self._events: dict[str, asyncio.Event] = {}
        self._primary: dict[str, JobRecord] = {}     # key -> in-flight job
        self._followers: dict[str, list[JobRecord]] = {}
        self._crashes: dict[str, int] = {}           # key -> worker deaths
        self._queue: asyncio.Queue[JobRecord] | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._seq = itertools.count(1)
        self._started_at = time.time()
        self.started = False

    # -- life cycle ------------------------------------------------------------

    async def start(self) -> None:
        if self.started:
            return
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        await self.supervisor.start()
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{i}")
            for i in range(self.config.workers)]
        self.started = True

    async def stop(self) -> None:
        if not self.started:
            return
        self.started = False
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        await self.supervisor.stop()

    # -- submission ------------------------------------------------------------

    def submit(self, request: JobRequest,
               trace: _tracing.TraceContext | None = None) -> JobRecord:
        """Accept (or shed) one request; returns its record immediately.

        *trace* is the distributed-trace identity minted (or continued
        from an inbound ``traceparent``) at ingress; ``None`` leaves the
        job untraced.  The record may already be terminal (malformed
        request, breaker open, queue full, quarantined key); otherwise
        it is queued and :meth:`wait` resolves it.  Must run on the
        engine's event loop.
        """
        assert self._queue is not None, "engine not started"
        cfg = self.config
        tm = _telemetry.get()
        tm.counter("service.jobs_submitted").inc()
        self.counts["submitted"] += 1
        jid = f"job-{next(self._seq)}"
        _flight.record("job.submitted",
                       trace_id=trace.trace_id if trace else "",
                       job=jid, job_kind=request.kind.value,
                       benchmark=request.benchmark)
        try:
            key = request.cache_key(request.fuel_budget or cfg.fuel_budget,
                                    cfg.retry_fuel_factor,
                                    engine=cfg.engine)
        except ReproError as exc:
            record = JobRecord(id=jid, request=request, key="",
                               trace=trace)
            self._remember(record)
            record.finish(JobState.FAILED, error=exc)
            self._finalize(record)
            return record
        record = JobRecord(id=jid, request=request, key=key, trace=trace)
        self._remember(record)

        if self._crashes.get(key, 0) >= cfg.quarantine_threshold:
            record.finish(JobState.QUARANTINED, error=JobQuarantinedError(
                f"key has crashed {self._crashes[key]} workers; "
                f"quarantined as a poison job",
                benchmark=request.benchmark,
                dataset=request.dataset).attach_flight(_flight.dump()))
            self._finalize(record)
            return record

        primary = self._primary.get(key)
        if primary is not None and not primary.finished:
            record.deduped_into = primary.id
            self._followers.setdefault(primary.id, []).append(record)
            tm.counter("service.jobs_deduped").inc()
            self.counts["deduped"] += 1
            return record

        if self._queue.full():
            record.finish(JobState.REJECTED, error=JobRejectedError(
                f"queue full ({self._queue.qsize()} jobs backed up); "
                f"resubmit later",
                benchmark=request.benchmark, dataset=request.dataset))
            self._finalize(record)
            return record

        if not self.breaker.allow():
            record.finish(JobState.REJECTED, error=JobRejectedError(
                f"circuit breaker {self.breaker.state}: engine shedding "
                f"load; resubmit after cooldown",
                benchmark=request.benchmark, dataset=request.dataset))
            self._finalize(record)
            return record

        self._primary[key] = record
        self._queue.put_nowait(record)
        tm.gauge("service.queue_depth").set(self._queue.qsize())
        return record

    async def wait(self, job_id: str,
                   timeout_s: float | None = None) -> JobRecord:
        """Block until *job_id* reaches a terminal state."""
        record = self.records[job_id]
        event = self._events.get(job_id)
        if event is not None and not record.finished:
            await asyncio.wait_for(event.wait(), timeout_s)
        return record

    async def submit_and_wait(self, request: JobRequest,
                              timeout_s: float | None = None) -> JobRecord:
        record = self.submit(request)
        if record.finished:
            return record
        return await self.wait(record.id, timeout_s)

    # -- bookkeeping -----------------------------------------------------------

    def _remember(self, record: JobRecord) -> None:
        self.records[record.id] = record
        self._events[record.id] = asyncio.Event()
        if len(self.records) > self.config.max_records:
            for jid, old in list(self.records.items()):
                if old.finished:
                    del self.records[jid]
                    self._events.pop(jid, None)
                    self._followers.pop(jid, None)
                    break

    def _finalize(self, record: JobRecord) -> None:
        """Terminal bookkeeping: counters, dedupe propagation, wakeups."""
        self.counts[record.state.value] = (
            self.counts.get(record.state.value, 0) + 1)
        _telemetry.get().counter(
            f"service.jobs_{record.state.value}").inc()
        _flight.record(
            "job.finished",
            trace_id=record.trace.trace_id if record.trace else "",
            job=record.id, state=record.state.value)
        event = self._events.get(record.id)
        if event is not None:
            event.set()
        if self._primary.get(record.key) is record:
            del self._primary[record.key]
        for follower in self._followers.pop(record.id, []):
            follower.result = record.result
            follower.error = record.error
            follower.cache_hit = record.cache_hit
            follower.retried = record.retried
            follower.finished_at = time.time()
            follower.state = record.state
            self._finalize(follower)

    def stats(self) -> dict:
        """Live service snapshot (the ``/stats`` endpoint body)."""
        cfg = self.config
        tm = _telemetry.get()
        # refresh the SLO denominators the derived rates divide by:
        # lifetime so far, and the breaker's running OPEN episode
        tm.gauge("service.uptime_s").set(
            max(time.time() - self._started_at, 1e-9))
        tm.gauge("service.breaker_open_s").set(self.breaker.open_total_s())
        return {
            "jobs": dict(self.counts),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": len(self._primary),
            "workers": len(self.supervisor.slots),
            "worker_respawns": self.supervisor.respawns,
            "breaker": self.breaker.snapshot(),
            "quarantined_keys": sum(
                1 for n in self._crashes.values()
                if n >= cfg.quarantine_threshold),
            "cache": (self.cache.stats()
                      if self.cache is not None else None),
            "slo": slo_summary(tm.counters(), tm.gauges()),
        }

    # -- execution -------------------------------------------------------------

    def _order_for(self, request: JobRequest) -> ServiceOrder:
        cfg = self.config
        inputs: tuple = ()
        if request.kind is not JobKind.COMPILE:
            inputs = tuple(get(request.benchmark)
                           .dataset(request.dataset).inputs)
        shard = ShardJob(
            benchmark=request.benchmark, dataset=request.dataset,
            inputs=inputs,
            fuel_budget=request.fuel_budget or cfg.fuel_budget,
            retry_fuel_factor=cfg.retry_fuel_factor,
            optimize=request.optimize,
            engine=cfg.engine,
            cache_dir=(str(self.cache.root)
                       if self.cache is not None else None),
            lease_wait_s=cfg.lease_wait_s,
            collect_telemetry=True)
        return ServiceOrder(kind=request.kind.value, shard=shard)

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        tm = _telemetry.get()
        while True:
            record = await self._queue.get()
            tm.gauge("service.queue_depth").set(self._queue.qsize())
            try:
                await self._run_record(record)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: the loop must survive
                record.finish(JobState.FAILED, error=ReproError(
                    f"internal service fault: {type(exc).__name__}: {exc}",
                    benchmark=record.request.benchmark, phase="service"))
            finally:
                if not record.finished:
                    record.finish(JobState.FAILED, error=ReproError(
                        "job fell through the dispatcher without a "
                        "terminal state", phase="service"))
                self._finalize(record)
                self._queue.task_done()

    def _trace_attempt(self, record: JobRecord, exec_ctx, attempt: int,
                       dispatch_start: float, dispatched_at: float | None,
                       slot: int | None, end: float) -> None:
        """Append this attempt's ``dispatch`` and ``exec`` segment spans.

        The ``exec`` span reuses *exec_ctx*'s span id — the same id the
        worker parented its own spans on — so the stitched timeline
        forms one tree even though the two sides never spoke.
        """
        tm = _telemetry.get()
        if dispatched_at is None:
            dispatched_at = end
        tm.histogram("service.dispatch_s").observe(
            max(0.0, dispatched_at - dispatch_start))
        tm.histogram("service.exec_s").observe(max(0.0, end - dispatched_at))
        trace = record.trace
        if trace is None or exec_ctx is None:
            return
        record.trace_spans.append(_tracing.manual_span(
            trace, "dispatch", "service", dispatch_start, dispatched_at,
            attempt=attempt))
        args = {"attempt": attempt}
        if slot is not None:
            args["slot"] = slot
        record.trace_spans.append(_tracing.TraceSpan(
            name="exec", tier="service", trace_id=trace.trace_id,
            span_id=exec_ctx.span_id, parent_id=exec_ctx.parent_id,
            start_s=dispatched_at,
            duration_s=max(0.0, end - dispatched_at),
            process="service", args=args))

    async def _run_record(self, record: JobRecord) -> None:
        cfg = self.config
        tm = _telemetry.get()
        record.state = JobState.RUNNING
        record.started_at = time.time()
        trace = record.trace
        queue_wait = record.started_at - record.created_at
        tm.histogram("service.queue_wait_s").observe(max(0.0, queue_wait))
        if trace is not None:
            record.trace_spans.append(_tracing.manual_span(
                trace, "queue_wait", "queue", record.created_at,
                record.started_at))
        order = self._order_for(record.request)
        policy = RetryPolicy(max_attempts=1 + max(0, cfg.crash_retries),
                             retry_worker_crashes=True,
                             backoff_base_s=0.05, backoff_max_s=1.0)
        start = perf_counter()
        attempt = 0
        while True:
            attempt += 1
            record.attempts = attempt
            exec_ctx = None
            if trace is not None:
                # pre-mint the attempt's exec span id and ship it across
                # the fork: the worker parents its spans on it
                exec_ctx = trace.child()
                order.shard.trace_id = exec_ctx.trace_id
                order.shard.trace_parent = exec_ctx.span_id
            dispatch_start = time.time()
            handoff: dict = {"at": None, "slot": None}

            def _on_dispatch(slot_index: int, _h: dict = handoff) -> None:
                _h["at"] = time.time()
                _h["slot"] = slot_index

            try:
                result = await self.supervisor.run_job(
                    order, cfg.deadline_s, on_dispatch=_on_dispatch)
                self._trace_attempt(record, exec_ctx, attempt,
                                    dispatch_start, handoff["at"],
                                    handoff["slot"], time.time())
                break
            except WorkerCrashError as exc:
                self._trace_attempt(record, exec_ctx, attempt,
                                    dispatch_start, handoff["at"],
                                    handoff["slot"], time.time())
                record.crashes += 1
                crashes = self._crashes[record.key] = (
                    self._crashes.get(record.key, 0) + 1)
                self.breaker.record_failure()
                exc.with_context(benchmark=record.request.benchmark,
                                 dataset=record.request.dataset)
                if crashes >= cfg.quarantine_threshold:
                    tm.counter("service.jobs_poisoned").inc()
                    record.finish(JobState.QUARANTINED,
                                  error=JobQuarantinedError(
                        f"job crashed {crashes} workers "
                        f"(threshold {cfg.quarantine_threshold}); "
                        f"quarantined as a poison job",
                        benchmark=record.request.benchmark,
                        dataset=record.request.dataset,
                    ).attach_flight(_flight.dump()))
                    return
                if not policy.should_retry(exc, attempt):
                    exc.attach_flight(_flight.dump())
                    record.finish(JobState.FAILED, error=exc)
                    return
                tm.counter("service.job_redispatches").inc()
                _flight.record(
                    "job.redispatch",
                    trace_id=trace.trace_id if trace else "",
                    job=record.id, attempt=attempt, crashes=crashes)
                backoff_start = time.time()
                await asyncio.sleep(policy.backoff_s(attempt))
                if trace is not None:
                    record.trace_spans.append(_tracing.manual_span(
                        trace, "retry_backoff", "service", backoff_start,
                        time.time(), attempt=attempt))
            except (JobDeadlineError, WorkerResultError) as exc:
                self._trace_attempt(record, exec_ctx, attempt,
                                    dispatch_start, handoff["at"],
                                    handoff["slot"], time.time())
                self.breaker.record_failure()
                exc.with_context(benchmark=record.request.benchmark,
                                 dataset=record.request.dataset)
                exc.attach_flight(_flight.dump())
                record.finish(JobState.FAILED, error=exc)
                return
        # engine-side success (the pipeline may still have failed — that
        # is a healthy engine reporting a deterministic result)
        self.breaker.record_success()
        tm.histogram("service.job_duration_s").observe(
            perf_counter() - start)
        record.retried = result.retried
        record.cache_hit = result.cache_stats.get("hits", 0) > 0
        # re-stitch what the worker observed: its wall-clock trace spans
        # join the record's timeline, its telemetry snapshot folds into
        # the service sink (trace_id span tags survive the merge)
        record.trace_spans.extend(result.trace or [])
        if result.telemetry is not None:
            tm.merge_snapshot(result.telemetry)
        if result.ok:
            record.finish(JobState.DONE,
                          result=build_payload(record.request, result))
        else:
            record.finish(JobState.FAILED, error=result.error)
