"""Fault-tolerant prediction service.

The pipeline as a long-running, multi-tenant daemon: an asyncio job
engine that accepts compile / simulate / predict jobs over HTTP (or by
direct :meth:`~repro.service.engine.JobEngine.submit` calls), dedupes
in-flight work by artifact-cache key, and executes on a supervised
worker pool — health checks, automatic respawn, poison-job quarantine,
and a circuit breaker that sheds load as explicit typed degraded
responses instead of hanging.

The invariant (enforced by the chaos drill in CI and
``tests/test_service_chaos_drill.py``): **every accepted job terminates
in a typed state, and nothing the service does can corrupt the shared
artifact store** — cache writes are single-writer lease-guarded
(:mod:`repro.harness.locking`) and results stay byte-identical to a
serial run.

Entry points::

    python -m repro.service serve --port 8357    # run the daemon
    python -m repro.service smoke                # CI chaos drill

See docs/robustness.md for the supervision / breaker / lease model.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.engine import (
    JobEngine, ServiceConfig, ServiceOrder, build_payload, execute_order,
)
from repro.service.http import ServiceHTTP
from repro.service.jobs import (
    JobKind, JobRecord, JobRequest, JobState, TERMINAL_STATES,
)
from repro.service.supervisor import WorkerSlot, WorkerSupervisor

__all__ = [
    "BreakerState", "CircuitBreaker",
    "JobEngine", "ServiceConfig", "ServiceOrder", "build_payload",
    "execute_order",
    "ServiceHTTP",
    "JobKind", "JobRecord", "JobRequest", "JobState", "TERMINAL_STATES",
    "WorkerSlot", "WorkerSupervisor",
]
