"""Job model for the prediction service.

A :class:`JobRequest` names one unit of pipeline work — compile a
benchmark, simulate a (benchmark, dataset) pair, or run the full
predict pipeline (compile + simulate + branch-prediction summary).  The
engine wraps each accepted request in a :class:`JobRecord` that tracks
its life cycle and, crucially, always terminates in a **typed**
terminal state: ``done`` with a payload, or one of the degraded states
(``failed`` / ``rejected`` / ``quarantined``) carrying the structured
:class:`~repro.errors.ReproError` dict.  A job can be slow; it can
never be lost or stuck.

Jobs are deduplicated by :meth:`JobRequest.key` — the same
content-address recipe the artifact cache uses (source text, pass spec,
effective limits, version), so two tenants asking for the same work
share one execution *and* one cache entry.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.telemetry.tracing import TraceContext, TraceSpan, timeline

__all__ = ["JobKind", "JobState", "JobRequest", "JobRecord",
           "TERMINAL_STATES"]


class JobKind(enum.Enum):
    """What the job asks the pipeline to do."""

    COMPILE = "compile"      #: compile + classify branches (static only)
    SIMULATE = "simulate"    #: compile + profiled execution
    PREDICT = "predict"      #: simulate + heuristic prediction summary

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class JobState(enum.Enum):
    """Life cycle of one accepted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"                    #: healthy result payload
    FAILED = "failed"                #: typed pipeline failure (degraded)
    REJECTED = "rejected"            #: load shed: breaker open / queue full
    QUARANTINED = "quarantined"      #: poison job: crashed too many workers

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: states a record can finish in (its ``done`` event fires exactly once)
TERMINAL_STATES = frozenset({
    JobState.DONE, JobState.FAILED, JobState.REJECTED,
    JobState.QUARANTINED,
})


@dataclass(frozen=True)
class JobRequest:
    """One unit of requested work (immutable, hashable, dedupe-keyable)."""

    kind: JobKind
    benchmark: str
    dataset: str = "ref"
    optimize: bool = True
    #: per-run instruction budget override (``None``: engine default)
    fuel_budget: int | None = None

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        """Parse an untrusted request body; raises :class:`ReproError`
        (phase ``service``) on anything malformed."""
        if not isinstance(data, dict):
            raise ReproError("job request must be a JSON object",
                             phase="service")
        try:
            kind = JobKind(str(data.get("kind", "predict")))
        except ValueError:
            raise ReproError(
                f"unknown job kind {data.get('kind')!r} (expected one of "
                f"{', '.join(k.value for k in JobKind)})", phase="service")
        benchmark = data.get("benchmark")
        if not benchmark or not isinstance(benchmark, str):
            raise ReproError("job request needs a 'benchmark' name",
                             phase="service")
        dataset = data.get("dataset", "ref")
        if not isinstance(dataset, str):
            raise ReproError("'dataset' must be a string", phase="service")
        fuel = data.get("fuel_budget")
        if fuel is not None and (not isinstance(fuel, int) or fuel <= 0):
            raise ReproError("'fuel_budget' must be a positive integer",
                             phase="service")
        return cls(kind=kind, benchmark=benchmark, dataset=dataset,
                   optimize=bool(data.get("optimize", True)),
                   fuel_budget=fuel)

    def cache_key(self, fuel_budget: int, retry_fuel_factor: int,
                  max_memory_bytes: int | None = None,
                  engine: str | None = None) -> str:
        """The artifact-cache content key this job resolves to — also the
        engine's in-flight dedupe key, so concurrent identical requests
        collapse onto one execution and one store entry.

        Raises the typed lookup error for unknown benchmarks/datasets.
        """
        from repro.bench.suite import get
        from repro.harness.cache import compile_key, run_key
        try:
            bench = get(self.benchmark)
        except KeyError as exc:
            raise ReproError(f"unknown benchmark: {exc}",
                             benchmark=self.benchmark,
                             phase="service") from exc
        ckey = compile_key(self.benchmark, bench.source(), self.optimize)
        if self.kind is JobKind.COMPILE:
            return ckey
        try:
            ds = bench.dataset(self.dataset)
        except (KeyError, ValueError) as exc:
            raise ReproError(f"unknown dataset: {exc}",
                             benchmark=self.benchmark, dataset=self.dataset,
                             phase="service") from exc
        from repro.sim import resolve_engine_name
        return run_key(ckey, self.dataset, tuple(ds.inputs), fuel_budget,
                       max_memory_bytes, retry_fuel_factor,
                       engine=resolve_engine_name(engine))

    def to_dict(self) -> dict:
        return {"kind": self.kind.value, "benchmark": self.benchmark,
                "dataset": self.dataset, "optimize": self.optimize,
                "fuel_budget": self.fuel_budget}


@dataclass
class JobRecord:
    """One accepted job's life cycle, result, and provenance."""

    id: str
    request: JobRequest
    key: str                           #: dedupe / cache key ("" if unkeyable)
    state: JobState = JobState.QUEUED
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0                  #: execution attempts dispatched
    crashes: int = 0                   #: worker deaths this job caused
    retried: bool = False              #: a transient-fuel retry happened
    cache_hit: bool = False            #: payload came from the shared store
    deduped_into: str | None = None    #: id of the in-flight primary job
    #: distributed-trace identity minted at ingress (None for jobs
    #: submitted through a path that opted out of tracing)
    trace: TraceContext | None = None
    #: stitched wall-clock spans across every tier this job touched
    trace_spans: list[TraceSpan] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def finish(self, state: JobState, *, result: dict | None = None,
               error: ReproError | None = None) -> None:
        """Transition to a terminal state exactly once (idempotent —
        late results for an already-terminal record are dropped)."""
        if self.finished:
            return
        if state not in TERMINAL_STATES:
            raise ValueError(f"{state} is not terminal")
        self.state = state
        self.result = result
        if error is not None:
            self.error = error.to_dict()
        self.finished_at = time.time()

    def to_dict(self) -> dict:
        """The wire form (HTTP responses, CLI output)."""
        out = {
            "id": self.id,
            "state": self.state.value,
            "request": self.request.to_dict(),
            "key": self.key,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "retried": self.retried,
            "cache_hit": self.cache_hit,
        }
        if self.trace is not None:
            out["trace_id"] = self.trace.trace_id
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.deduped_into is not None:
            out["deduped_into"] = self.deduped_into
        return out

    def trace_dict(self) -> dict:
        """The ``GET /jobs/<id>/trace`` body: the job's stitched span
        timeline plus segment accounting (``queue_wait_s + dispatch_s +
        exec_s ≈ total_s``).  Empty-but-well-formed for untraced jobs.
        """
        if self.trace is None:
            return {"trace_id": None, "tiers": [], "segments": {},
                    "spans": [], "job": self.id, "state": self.state.value}
        end = self.finished_at if self.finished_at is not None else time.time()
        out = timeline(self.trace.trace_id, self.trace_spans,
                       total_s=end - self.created_at)
        out["job"] = self.id
        out["state"] = self.state.value
        return out
