"""CLI for the prediction service: ``serve`` and the ``smoke`` drill.

``serve`` runs the daemon::

    PYTHONPATH=src python -m repro.service serve --port 8357 \\
        --cache-dir .repro-cache

``smoke`` is the CI chaos drill: it starts a real engine + HTTP
listener in-process, injects worker-crash / slow-worker / lock-hold
chaos, pushes the mini benchmark suite (plus duplicates, to exercise
dedupe) through the HTTP front end, and then asserts the service
contract:

* every job reached a terminal state (nothing lost, nothing hung);
* every non-``done`` outcome carries a typed, coded error body;
* the Prometheus endpoint scrapes and reports the job counters;
* every successful payload is **byte-identical** to a chaos-free
  serial execution of the same request (no corruption, no partial
  results served from the shared store);
* one done predict job's ``/jobs/<id>/trace`` timeline spans every tier
  (ingress → queue → worker → cache) and its segment accounting
  (``queue_wait + dispatch + exec``) adds up to the end-to-end latency;
* the injected worker crash leaves a black box: the quarantined
  record's error carries a flight-recorder dump naming the failing
  job's trace.

Exit status 0 only when every assertion holds — wired into the CI
``service-smoke`` job.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile

from repro import telemetry as _telemetry
from repro.bench.suite import get
from repro.harness.cache import CHAOS_LOCK_HOLD_ENV
from repro.harness.locking import CHAOS_LEASE_TTL_ENV
from repro.harness.parallel import (
    CHAOS_SLOW_WORKER_ENV, CHAOS_WORKER_CRASH_ENV, ShardJob,
)
from repro.service.engine import (
    JobEngine, ServiceConfig, ServiceOrder, build_payload, execute_order,
)
from repro.service.http import ServiceHTTP
from repro.service.jobs import JobKind, JobRequest
from repro.telemetry.core import Telemetry

#: the drill's workload: every job kind over the fast mini suite
_MINI_SUITE = ("queens", "fields", "gauss")
_CHAOS_ENVS = (CHAOS_WORKER_CRASH_ENV, CHAOS_SLOW_WORKER_ENV,
               CHAOS_LOCK_HOLD_ENV, CHAOS_LEASE_TTL_ENV)


# -- tiny asyncio HTTP client (same loop as the server) -----------------------

async def _http(host: str, port: int, method: str, path: str,
                body: dict | None = None,
                headers: dict[str, str] | None = None):
    """One request/response round-trip; returns (status, parsed body)."""
    reader, writer = await asyncio.open_connection(host, port)
    data = json.dumps(body).encode() if body is not None else b""
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    writer.write(
        (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
         f"Content-Type: application/json\r\n"
         f"Content-Length: {len(data)}\r\n{extra}"
         f"Connection: close\r\n\r\n").encode() + data)
    await writer.drain()
    # read by Content-Length, never to EOF: a worker process forked
    # while this connection is open inherits the socket and would hold
    # EOF back until it exits
    head = b""
    while b"\r\n\r\n" not in head:
        chunk = await reader.read(4096)
        if not chunk:
            break
        head += chunk
    head, _, payload = head.partition(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if len(payload) < length:
        payload += await reader.readexactly(length - len(payload))
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    status = int(head.split()[1])
    text = payload.decode(errors="replace")
    if text.lstrip().startswith(("{", "[")):
        return status, json.loads(text)
    return status, text


# -- serve --------------------------------------------------------------------

async def _serve(args) -> int:
    config = ServiceConfig(
        workers=args.workers, cache_dir=args.cache_dir,
        deadline_s=args.deadline, queue_limit=args.queue_limit,
        engine=args.engine)
    engine = JobEngine(config)
    await engine.start()
    http = ServiceHTTP(engine, host=args.host, port=args.port)
    await http.start()
    print(f"repro.service listening on {http.address} "
          f"({args.workers} workers, cache={args.cache_dir or 'off'})",
          flush=True)
    try:
        await asyncio.Event().wait()  # until interrupted
    finally:
        await http.stop()
        await engine.stop()
    return 0


# -- smoke (chaos drill) ------------------------------------------------------

def _serial_reference(request: JobRequest, config: ServiceConfig,
                      cache_dir: str) -> dict | None:
    """Chaos-free in-process execution of *request* (the ground truth)."""
    inputs: tuple = ()
    if request.kind is not JobKind.COMPILE:
        inputs = tuple(get(request.benchmark)
                       .dataset(request.dataset).inputs)
    shard = ShardJob(
        benchmark=request.benchmark, dataset=request.dataset,
        inputs=inputs,
        fuel_budget=request.fuel_budget or config.fuel_budget,
        retry_fuel_factor=config.retry_fuel_factor,
        optimize=request.optimize, engine=config.engine,
        cache_dir=cache_dir)
    result = execute_order(
        ServiceOrder(kind=request.kind.value, shard=shard))
    return build_payload(request, result) if result.ok else None


async def _smoke(args) -> int:
    # arm the chaos seams BEFORE any worker can fork
    if args.chaos_crash:
        os.environ[CHAOS_WORKER_CRASH_ENV] = args.chaos_crash
    if args.chaos_slow:
        os.environ[CHAOS_SLOW_WORKER_ENV] = args.chaos_slow
    if args.chaos_lock_hold:
        os.environ[CHAOS_LOCK_HOLD_ENV] = str(args.chaos_lock_hold)
    if args.chaos_lease_ttl:
        os.environ[CHAOS_LEASE_TTL_ENV] = str(args.chaos_lease_ttl)

    config = ServiceConfig(
        workers=args.workers, cache_dir=args.cache_dir,
        deadline_s=args.deadline, health_interval_s=0,
        crash_retries=1, quarantine_threshold=2,
        engine=args.engine)
    engine = JobEngine(config)
    await engine.start()
    http = ServiceHTTP(engine)
    await http.start()
    print(f"smoke: service up at {http.address}, chaos="
          f"{ {k: os.environ[k] for k in _CHAOS_ENVS if k in os.environ} }",
          flush=True)

    requests = [JobRequest(kind=kind, benchmark=bench, dataset=args.dataset)
                for bench in _MINI_SUITE
                for kind in (JobKind.COMPILE, JobKind.PREDICT)]
    # duplicates ride along to exercise in-flight dedupe
    requests += [JobRequest(kind=JobKind.PREDICT, benchmark=bench,
                            dataset=args.dataset)
                 for bench in _MINI_SUITE]

    async def _submit(request: JobRequest):
        body = dict(request.to_dict(), wait=True,
                    wait_timeout_s=args.deadline * 4)
        return await _http(http.host, http.port, "POST", "/jobs", body)

    responses = await asyncio.gather(*(_submit(r) for r in requests))
    stats_status, stats = await _http(http.host, http.port, "GET", "/stats")
    metrics_status, metrics = await _http(http.host, http.port,
                                          "GET", "/metrics")

    # fetch the distributed trace of one successfully executed predict
    # job (a primary, not a dedupe follower — followers only carry the
    # ingress span of their own trace)
    trace_body = None
    for request, (_, record) in zip(requests, responses):
        if (isinstance(record, dict) and record.get("state") == "done"
                and record["request"]["kind"] == "predict"
                and "deduped_into" not in record):
            trace_status, trace_body = await _http(
                http.host, http.port, "GET",
                f"/jobs/{record['id']}/trace")
            if trace_status != 200:
                trace_body = None
            break
    await http.stop()
    await engine.stop()

    failures: list[str] = []
    if trace_body is None:
        failures.append("no done predict job yielded a /trace timeline")
    else:
        tiers = set(trace_body.get("tiers", []))
        missing = {"ingress", "queue", "worker", "cache"} - tiers
        if missing:
            failures.append(f"trace is missing tiers {sorted(missing)} "
                            f"(got {sorted(tiers)})")
        seg = trace_body.get("segments", {})
        total = seg.get("total_s", 0.0)
        accounted = seg.get("accounted_s", 0.0)
        if abs(total - accounted) > max(0.15, 0.25 * total):
            failures.append(
                f"trace segments unaccounted: queue_wait+dispatch+exec"
                f"={accounted:.3f}s vs end-to-end {total:.3f}s")
        print(f"trace: {trace_body.get('trace_id')} "
              f"tiers={sorted(tiers)} spans={len(trace_body.get('spans', []))} "
              f"accounted={accounted:.3f}s total={total:.3f}s", flush=True)

    # the injected worker crash must leave a black box: the quarantined
    # record's error carries the flight-recorder ring, and the ring
    # names the failing job's own trace
    if args.chaos_crash:
        crashed = [record for _, (_, record) in zip(requests, responses)
                   if isinstance(record, dict)
                   and record.get("state") == "quarantined"]
        if not crashed:
            failures.append("chaos-crash armed but nothing quarantined")
        else:
            record = crashed[0]
            events = record.get("error", {}).get("flight", [])
            if not events:
                failures.append("quarantined record has no flight-recorder "
                                "dump on its error")
            elif not any(e.get("trace_id") == record.get("trace_id")
                         for e in events):
                failures.append("flight dump never mentions the failing "
                                "job's trace_id")
            else:
                print(f"flight: crash black box has {len(events)} events "
                      f"incl. trace {record.get('trace_id')}", flush=True)
    done: list[tuple[JobRequest, dict]] = []
    for request, (status, record) in zip(requests, responses):
        label = f"{request.kind}/{request.benchmark}"
        if not isinstance(record, dict) or "state" not in record:
            failures.append(f"{label}: unparseable response ({status})")
            continue
        state = record["state"]
        if state in ("queued", "running"):
            failures.append(f"{label}: job never reached a terminal state")
        elif state == "done":
            done.append((request, record["result"]))
        elif not record.get("error", {}).get("code"):
            failures.append(f"{label}: degraded state {state!r} without "
                            f"a typed error body")
        else:
            print(f"smoke: {label} degraded (typed): "
                  f"{state} [{record['error']['code']}]", flush=True)

    if stats_status != 200:
        failures.append(f"/stats returned {stats_status}")
    if metrics_status != 200:
        failures.append(f"/metrics returned {metrics_status}")
    elif "repro_service_jobs_submitted_total" not in str(metrics):
        failures.append("/metrics is missing service job counters")

    # byte-identity: replay every successful request chaos-free, serially
    for env in _CHAOS_ENVS:
        os.environ.pop(env, None)
    with tempfile.TemporaryDirectory(prefix="repro-smoke-ref-") as ref_dir:
        for request, payload in done:
            reference = _serial_reference(request, config, ref_dir)
            if reference is None:
                failures.append(
                    f"{request.kind}/{request.benchmark}: serial reference "
                    f"failed but service reported done")
            elif (json.dumps(payload, sort_keys=True)
                    != json.dumps(reference, sort_keys=True)):
                failures.append(
                    f"{request.kind}/{request.benchmark}: payload deviates "
                    f"from the chaos-free serial run")

    print(json.dumps({
        "jobs": len(requests), "done": len(done),
        "degraded": len(requests) - len(done) - len(failures),
        "stats": stats if isinstance(stats, dict) else None,
        "failures": failures,
    }, indent=2, default=str), flush=True)
    if failures:
        print(f"smoke: FAILED ({len(failures)} violations)", file=sys.stderr)
        return 1
    print("smoke: OK — every job terminal+typed, payloads byte-identical "
          "to serial", flush=True)
    return 0


# -- entry --------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="fault-tolerant branch-prediction service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the HTTP daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8357)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--queue-limit", type=int, default=64)
    serve.add_argument("--deadline", type=float, default=60.0)
    serve.add_argument("--cache-dir", default=None)
    serve.add_argument("--engine", default=None,
                       choices=("tier0", "tier1"),
                       help="simulator engine for every job (default: "
                            "resolve via REPRO_CHAOS_FORCE_TIER0 / "
                            "REPRO_SIM_ENGINE, else tier1)")

    smoke = sub.add_parser("smoke", help="CI chaos drill")
    smoke.add_argument("--workers", type=int, default=2)
    smoke.add_argument("--dataset", default="small")
    smoke.add_argument("--deadline", type=float, default=60.0)
    smoke.add_argument("--cache-dir", default=None,
                       help="shared store root (default: fresh temp dir)")
    smoke.add_argument("--chaos-crash", default="fields",
                       metavar="BENCH", help="worker-crash chaos target "
                       "('' disables)")
    smoke.add_argument("--chaos-slow", default="queens:0.2",
                       metavar="BENCH:SECONDS")
    smoke.add_argument("--chaos-lock-hold", type=float, default=0.1,
                       metavar="SECONDS")
    smoke.add_argument("--chaos-lease-ttl", type=float, default=0.0,
                       metavar="SECONDS")
    smoke.add_argument("--engine", default=None,
                       choices=("tier0", "tier1"),
                       help="simulator engine for the drill (CI also runs "
                            "the smoke once under REPRO_CHAOS_FORCE_TIER0, "
                            "which overrides this)")

    args = parser.parse_args(argv)
    _telemetry.install(Telemetry(enabled=True))
    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:
            return 0
    if args.cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            args.cache_dir = tmp
            return asyncio.run(_smoke(args))
    return asyncio.run(_smoke(args))


if __name__ == "__main__":
    sys.exit(main())
