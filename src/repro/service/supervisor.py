"""Supervised process-pool worker slots for the prediction service.

The PR-5 :class:`~repro.harness.parallel.ParallelEngine` is a *batch*
engine: one shared pool per batch, and a worker death breaks the whole
pool (every sibling future poisons with ``BrokenProcessPool``) before
the crash-isolation retry cleans up.  A long-running service cannot
afford batch blast radius, so the supervisor partitions differently:
**one single-worker pool per slot**.  A dying worker breaks exactly its
own slot; the supervisor respawns the slot and the job engine decides
whether the *job* deserves another worker (or quarantine, if it keeps
killing them).

Supervision duties:

* **crash containment + respawn** — a ``BrokenProcessPool`` on one slot
  converts to a typed :class:`~repro.errors.WorkerCrashError` and the
  slot is respawned immediately (counted in ``service.worker_respawns``);
* **deadline enforcement** — a job that outlives its service deadline
  gets its worker *killed* (``SIGKILL``; a wedged simulator cannot be
  asked nicely) and surfaces as :class:`~repro.errors.JobDeadlineError`;
* **health checks** — idle slots are periodically pinged with a trivial
  round-trip; an unresponsive slot is killed and respawned before a
  real job is ever dispatched to it.

Slots are handed out through an :class:`asyncio.Queue`, which doubles
as the backpressure seam: dispatch naturally blocks while every worker
is busy.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Callable

import multiprocessing

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight
from repro.errors import JobDeadlineError, WorkerCrashError, WorkerResultError

__all__ = ["WorkerSlot", "WorkerSupervisor"]


def _health_ping() -> int:
    """Trivial round-trip executed inside a worker (module-level so it
    pickles)."""
    return os.getpid()


def _swallow(future) -> None:
    """Detach an abandoned executor future (killed worker) so its
    exception is consumed, not warned about at interpreter exit."""
    future.add_done_callback(
        lambda f: f.exception() if not f.cancelled() else None)


class WorkerSlot:
    """One supervised worker: a dedicated single-process pool."""

    def __init__(self, index: int, context) -> None:
        self.index = index
        self.context = context
        self.pool: ProcessPoolExecutor | None = None
        self.respawns = 0
        self.busy = False

    def spawn(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=1,
                                        mp_context=self.context)
        # force the worker process to fork NOW, not lazily at the first
        # job: a lazy fork would inherit whatever client sockets happen
        # to be open at dispatch time, keeping them alive (no EOF to the
        # peer) for the worker's whole lifetime
        _swallow(self.pool.submit(_health_ping))

    def kill(self) -> None:
        """Hard-kill the slot's worker process and retire the pool."""
        pool = self.pool
        self.pool = None
        if pool is None:
            return
        # the executor has no public "kill the worker" — reach into the
        # process table; shutdown() alone would block on the wedged job
        processes = getattr(pool, "_processes", None)
        if processes:
            for proc in list(processes.values()):
                try:
                    proc.kill()
                except (OSError, ValueError):
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def respawn(self) -> None:
        self.kill()
        self.respawns += 1
        _telemetry.get().counter("service.worker_respawns").inc()
        _flight.record("worker.respawn", slot=self.index,
                       respawns=self.respawns)
        self.spawn()


class WorkerSupervisor:
    """Owns the worker slots; runs jobs and health checks over them.

    Parameters
    ----------
    workers:
        Slot count (= max concurrently executing jobs).
    exec_fn:
        Module-level picklable function a job order is executed with
        (the engine passes its order executor; tests inject stubs).
    start_method:
        Multiprocessing start method (default: ``fork`` where
        available, matching the parallel engine).
    health_interval_s:
        Period of the background health-check loop (``0`` disables it;
        :meth:`health_check` stays callable directly).
    health_timeout_s:
        Ping round-trip budget before a slot is declared wedged.
    """

    def __init__(self, workers: int = 2,
                 exec_fn: Callable | None = None,
                 start_method: str | None = None,
                 health_interval_s: float = 5.0,
                 health_timeout_s: float = 10.0) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.context = multiprocessing.get_context(start_method)
        self.exec_fn = exec_fn
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.slots = [WorkerSlot(i, self.context) for i in range(workers)]
        self._free: asyncio.Queue[WorkerSlot] | None = None
        self._health_task: asyncio.Task | None = None
        self.started = False

    @property
    def respawns(self) -> int:
        return sum(slot.respawns for slot in self.slots)

    # -- life cycle ------------------------------------------------------------

    async def start(self) -> None:
        if self.started:
            return
        self._free = asyncio.Queue()
        for slot in self.slots:
            slot.spawn()
            self._free.put_nowait(slot)
        if self.health_interval_s > 0:
            self._health_task = asyncio.create_task(self._health_loop())
        self.started = True

    async def stop(self) -> None:
        if not self.started:
            return
        self.started = False
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for slot in self.slots:
            slot.kill()

    # -- job execution ---------------------------------------------------------

    async def run_job(self, order, deadline_s: float | None = None,
                      on_dispatch: Callable[[int], None] | None = None):
        """Execute *order* on the next free slot.

        *on_dispatch* (if given) fires with the slot index the moment a
        slot is acquired — the engine uses it to close the job's
        ``dispatch`` trace segment (slot-wait) and open ``exec``.

        Raises :class:`WorkerCrashError` (slot respawned),
        :class:`JobDeadlineError` (worker killed, slot respawned), or
        :class:`WorkerResultError` (undecodable result); anything else
        the order's own executor returned comes back as-is.
        """
        assert self._free is not None, "supervisor not started"
        slot = await self._free.get()
        slot.busy = True
        if on_dispatch is not None:
            on_dispatch(slot.index)
        try:
            return await self._run_on(slot, order, deadline_s)
        finally:
            slot.busy = False
            self._free.put_nowait(slot)

    async def _run_on(self, slot: WorkerSlot, order,
                      deadline_s: float | None):
        loop = asyncio.get_running_loop()
        start = perf_counter()
        future = loop.run_in_executor(slot.pool, self.exec_fn, order)
        try:
            if deadline_s is not None:
                result = await asyncio.wait_for(
                    asyncio.shield(future), deadline_s)
            else:
                result = await future
        except asyncio.TimeoutError:
            _swallow(future)
            _flight.record("worker.deadline_kill", slot=slot.index,
                           deadline_s=deadline_s,
                           elapsed_s=round(perf_counter() - start, 3))
            slot.respawn()
            raise JobDeadlineError(
                f"job exceeded its {deadline_s:.1f}s service deadline on "
                f"worker slot {slot.index} (elapsed "
                f"{perf_counter() - start:.1f}s); worker killed")
        except (BrokenProcessPool, OSError) as exc:
            slot.respawn()
            raise WorkerCrashError(
                f"worker slot {slot.index} died mid-job: "
                f"{type(exc).__name__}: {exc}")
        if result is None or isinstance(result, (int, str, bytes)):
            raise WorkerResultError(
                f"worker slot {slot.index} returned an unusable result "
                f"({type(result).__name__})")
        return result

    # -- health checks ---------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            await self.health_check()

    async def health_check(self) -> int:
        """Ping every currently-idle slot; kill + respawn unresponsive
        ones.  Returns the number of slots respawned."""
        assert self._free is not None, "supervisor not started"
        tm = _telemetry.get()
        idle: list[WorkerSlot] = []
        while True:
            try:
                idle.append(self._free.get_nowait())
            except asyncio.QueueEmpty:
                break
        respawned = 0
        loop = asyncio.get_running_loop()
        try:
            for slot in idle:
                tm.counter("service.health_checks").inc()
                future = loop.run_in_executor(slot.pool, _health_ping)
                try:
                    await asyncio.wait_for(asyncio.shield(future),
                                           self.health_timeout_s)
                except (asyncio.TimeoutError, BrokenProcessPool, OSError):
                    _swallow(future)
                    slot.respawn()
                    respawned += 1
        finally:
            for slot in idle:
                self._free.put_nowait(slot)
        return respawned
