"""Circuit breaker: shed load explicitly instead of hanging.

When the execution engine itself is unhealthy — workers crashing,
deadlines blowing, pools breaking — piling more jobs onto it multiplies
the damage: every queued job waits out a full crash-respawn cycle just
to learn what the last one already proved.  The breaker watches
*engine-side* failures (worker crashes, service deadlines — **not**
deterministic benchmark failures, which are successful job executions
from the engine's point of view) and trips **open** once they
accumulate; while open, the engine turns new submissions into immediate
typed :class:`~repro.errors.JobRejectedError` responses.  After a
cooldown the breaker goes **half-open** and admits a limited number of
probe jobs; a probe success closes it, a probe failure re-opens it.

The classic three-state machine (Nygard, *Release It!*), sized for this
service: failures are counted in a sliding window so one bad hour last
week cannot keep the breaker twitchy forever.

Chaos seam: ``REPRO_CHAOS_BREAKER_TRIP=1`` forces the breaker open at
construction — how tests and drills exercise the shed path on a healthy
engine.

Telemetry: ``service.breaker_state`` gauge (0 closed / 1 half-open /
2 open), ``service.breaker_trips`` counter, ``service.breaker_open_s``
gauge (cumulative seconds spent OPEN — the numerator of the
``breaker_open_duty_cycle`` SLO).  Every transition is also recorded on
the flight-recorder ring, so a failure's black box shows the breaker's
recent history.
"""

from __future__ import annotations

import enum
import os
import time
from collections import deque
from typing import Callable

from repro import telemetry as _telemetry
from repro.telemetry import flight as _flight

__all__ = ["BreakerState", "CircuitBreaker", "CHAOS_BREAKER_TRIP_ENV"]

#: force the breaker open at construction (chaos seam)
CHAOS_BREAKER_TRIP_ENV = "REPRO_CHAOS_BREAKER_TRIP"


class BreakerState(enum.Enum):
    CLOSED = "closed"          #: healthy: all traffic admitted
    OPEN = "open"              #: tripped: all traffic shed
    HALF_OPEN = "half-open"    #: probing: limited traffic admitted

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: gauge encoding (monotone in severity, so peak-merge keeps the worst)
_STATE_GAUGE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1,
                BreakerState.OPEN: 2}


class CircuitBreaker:
    """Sliding-window circuit breaker for engine-side failures.

    Parameters
    ----------
    failure_threshold:
        Trips open when this many failures land within *window_s*.
    window_s:
        Sliding failure-counting window.
    cooldown_s:
        Seconds to stay open before probing (half-open).
    half_open_probes:
        Concurrent probe admissions allowed while half-open.
    clock:
        Injectable monotonic time source (tests drive expiry with a
        fake; single-process state, so monotonic is right here).
    """

    def __init__(self, failure_threshold: int = 5, window_s: float = 30.0,
                 cooldown_s: float = 5.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.half_open_probes = max(1, half_open_probes)
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.trips = 0
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._probes_out = 0
        self._created = self.clock()
        self._open_total_s = 0.0        #: accumulated closed OPEN episodes
        if os.environ.get(CHAOS_BREAKER_TRIP_ENV):
            self._trip()
        else:
            self._publish()

    # -- state machine ---------------------------------------------------------

    def _publish(self) -> None:
        _telemetry.get().gauge("service.breaker_state").set(
            _STATE_GAUGE[self.state])

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self._opened_at = self.clock()
        self._probes_out = 0
        _telemetry.get().counter("service.breaker_trips").inc()
        _flight.record("breaker.open", trips=self.trips,
                       recent_failures=len(self._failures))
        self._publish()

    def _close_open_episode(self, now: float) -> None:
        """Account the OPEN episode ending now into the duty-cycle sum."""
        self._open_total_s += max(0.0, now - self._opened_at)
        _telemetry.get().gauge("service.breaker_open_s").set(
            self._open_total_s)

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window_s:
            self._failures.popleft()

    def allow(self) -> bool:
        """Whether a new job may be admitted right now.

        Open → ``False`` until the cooldown elapses, then half-open with
        a bounded number of probe admissions.  Every ``True`` from a
        half-open breaker **must** be matched by a later
        :meth:`record_success` or :meth:`record_failure`.
        """
        now = self.clock()
        if self.state is BreakerState.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probes_out = 0
            self._close_open_episode(now)
            _flight.record("breaker.half_open", trips=self.trips)
            self._publish()
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_out >= self.half_open_probes:
                return False
            self._probes_out += 1
            return True
        return True

    def record_success(self) -> None:
        """An admitted job executed without engine-side failure."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._failures.clear()
            self._probes_out = 0
            _flight.record("breaker.closed", trips=self.trips)
            self._publish()

    def record_failure(self) -> None:
        """An engine-side failure (worker crash, service deadline)."""
        now = self.clock()
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
            return
        self._failures.append(now)
        self._prune(now)
        if (self.state is BreakerState.CLOSED
                and len(self._failures) >= self.failure_threshold):
            self._trip()

    # -- introspection ---------------------------------------------------------

    def open_total_s(self) -> float:
        """Cumulative seconds spent OPEN (running episode included)."""
        total = self._open_total_s
        if self.state is BreakerState.OPEN:
            total += max(0.0, self.clock() - self._opened_at)
        return total

    def open_duty_cycle(self) -> float:
        """Fraction of this breaker's lifetime spent OPEN (0.0–1.0)."""
        lifetime = self.clock() - self._created
        if lifetime <= 0:
            return 0.0
        return min(1.0, self.open_total_s() / lifetime)

    def snapshot(self) -> dict:
        now = self.clock()
        self._prune(now)
        return {"state": self.state.value, "trips": self.trips,
                "recent_failures": len(self._failures),
                "open_total_s": round(self.open_total_s(), 6),
                "open_duty_cycle": round(self.open_duty_cycle(), 6),
                "cooldown_remaining_s": max(
                    0.0, self.cooldown_s - (now - self._opened_at))
                if self.state is BreakerState.OPEN else 0.0}
