"""Minimal stdlib HTTP/1.1 front end for the job engine.

No web framework in the toolchain, and none needed: the service speaks
a deliberately tiny dialect — one request per connection, JSON bodies,
``Connection: close`` — implemented directly over
:func:`asyncio.start_server`.  Malformed input never reaches the
engine: every parse/validation failure is its own typed 4xx JSON
response.

Routes::

    GET  /healthz          liveness (the engine accepted the socket)
    GET  /stats            JobEngine.stats() snapshot (incl. SLO rates)
    GET  /metrics          Prometheus text exposition of live telemetry
    POST /jobs             submit a JobRequest; {"wait": true} blocks
    GET  /jobs/<id>        poll one job record
    GET  /jobs/<id>/trace  the job's distributed-trace timeline

Status mapping: ``202`` queued/running, ``200`` done (or degraded-but-
typed terminal), ``400`` malformed, ``404`` unknown id/route, ``503``
load shed (breaker open / queue full) — the one distinction clients
retry on.

Tracing: every submission gets a :class:`~repro.telemetry.tracing.
TraceContext` at this ingress.  An inbound W3C ``traceparent`` header is
honored (same ``trace_id``, our root span parented on the caller's), so
external callers can stitch the service into their own traces; without
one a fresh root is minted.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import telemetry as _telemetry
from repro.errors import ReproError
from repro.service.engine import JobEngine
from repro.service.jobs import JobRequest, JobState
from repro.telemetry.export import to_prometheus
from repro.telemetry.tracing import TraceContext, TraceSpan, parse_traceparent

__all__ = ["ServiceHTTP"]

_MAX_BODY = 1 << 20  # 1 MiB request-body cap


class ServiceHTTP:
    """One HTTP listener bound to one :class:`JobEngine`."""

    def __init__(self, engine: JobEngine, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- wire handling ---------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, content_type, body = await self._respond(reader)
        except Exception as exc:  # defensive: never drop the connection
            status, content_type, body = 500, "application/json", json.dumps(
                {"error": {"code": "internal",
                           "message": f"{type(exc).__name__}: {exc}"}})
        payload = body.encode()
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _respond(self, reader) -> tuple[int, str, str]:
        received_at = time.time()
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return _json_error(400, "bad-request", "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            return _json_error(400, "bad-request",
                               "unreadable Content-Length")
        if content_length > _MAX_BODY:
            return _json_error(400, "bad-request", "request body too large")
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return await self._route(method, path, body, headers, received_at)

    # -- routing ---------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     headers: dict[str, str],
                     received_at: float) -> tuple[int, str, str]:
        if method == "GET" and path == "/healthz":
            return 200, "application/json", json.dumps({"ok": True})
        if method == "GET" and path == "/stats":
            return (200, "application/json",
                    json.dumps(self.engine.stats()))
        if method == "GET" and path == "/metrics":
            return (200, "text/plain; version=0.0.4",
                    to_prometheus(_telemetry.get()))
        if method == "POST" and path == "/jobs":
            return await self._submit(body, headers, received_at)
        if method == "GET" and path.startswith("/jobs/") \
                and path.endswith("/trace"):
            jid = path[len("/jobs/"):-len("/trace")]
            record = self.engine.records.get(jid)
            if record is None:
                return _json_error(404, "not-found", "unknown job id")
            return (200, "application/json",
                    json.dumps(record.trace_dict()))
        if method == "GET" and path.startswith("/jobs/"):
            record = self.engine.records.get(path[len("/jobs/"):])
            if record is None:
                return _json_error(404, "not-found", "unknown job id")
            return (_status_for(record), "application/json",
                    json.dumps(record.to_dict()))
        return _json_error(404, "not-found", f"no route {method} {path}")

    async def _submit(self, body: bytes, headers: dict[str, str],
                      received_at: float) -> tuple[int, str, str]:
        try:
            data = json.loads(body.decode() or "{}")
        except (ValueError, UnicodeDecodeError):
            return _json_error(400, "bad-request",
                               "request body is not valid JSON")
        try:
            request = JobRequest.from_dict(data)
        except ReproError as exc:
            return 400, "application/json", json.dumps(
                {"error": exc.to_dict()})
        wait = bool(data.get("wait", False))
        timeout_s = data.get("wait_timeout_s")
        trace = (parse_traceparent(headers.get("traceparent"))
                 or TraceContext.mint())
        record = self.engine.submit(request, trace=trace)
        # the trace's root span: request receipt up to submit-return
        # (HTTP parse + admission); queue/worker/cache spans all descend
        # from its span_id
        record.trace_spans.insert(0, TraceSpan(
            name="http.ingress", tier="ingress", trace_id=trace.trace_id,
            span_id=trace.span_id, parent_id=trace.parent_id,
            start_s=received_at,
            duration_s=max(0.0, time.time() - received_at),
            process="service", args={"route": "POST /jobs"}))
        if wait and not record.finished:
            try:
                await self.engine.wait(record.id, timeout_s)
            except asyncio.TimeoutError:
                pass  # report the live record as-is (202)
        return (_status_for(record), "application/json",
                json.dumps(record.to_dict()))


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _status_for(record) -> int:
    if not record.finished:
        return 202
    if record.state is JobState.REJECTED:
        return 503
    return 200


def _json_error(status: int, code: str, message: str):
    return status, "application/json", json.dumps(
        {"error": {"code": code, "message": message}})
