"""repro — reproduction of Ball & Larus, "Branch Prediction for Free" (PLDI 1993).

The package is layered bottom-up; see each subpackage for detail:

* :mod:`repro.isa` — MIPS-like instruction set, assembler, executables.
* :mod:`repro.passes` — generic pass/analysis-manager framework (registered
  passes, cached analyses with invalidation, per-pass telemetry).
* :mod:`repro.cfg` — control-flow graphs, dominators, natural loops.
* :mod:`repro.sim` — interpreter with edge profiling and trace analysis
  (the QPT stand-in).
* :mod:`repro.bcc` — an optimizing compiler for the BLC mini-C language
  targeting the ISA.
* :mod:`repro.bench` — the benchmark suite (BLC programs + datasets).
* :mod:`repro.core` — the paper's contribution: branch classification, the
  loop predictor, the seven non-loop heuristics, their combination, baseline
  predictors, evaluation metrics, ordering experiments, and the
  instructions-per-break-in-control machinery.
* :mod:`repro.harness` — regenerates every table and figure in the paper.

Quickstart::

    from repro import compile_and_link, run_with_profile
    from repro import classify_branches, HeuristicPredictor, evaluate_predictor

    exe = compile_and_link(open("prog.blc").read())
    profile = run_with_profile(exe, inputs=[42])
    predictor = HeuristicPredictor(classify_branches(exe))
    print(evaluate_predictor(predictor, profile).cd())   # e.g. "18/6"
"""

from repro._version import __version__
from repro.bcc import CompileError, compile_and_link, compile_to_asm
from repro.bench import suite
from repro.core import (
    BTFNTPredictor, BranchClass, BranchInfo, HEURISTIC_NAMES,
    HeuristicPredictor, LoopRandomPredictor, NotTakenPredictor, PAPER_ORDER,
    HEURISTIC_REGISTRY, PerfectPredictor, Prediction, ProgramAnalysis,
    RandomPredictor, TakenPredictor, classify_branches, evaluate_predictor,
    register_heuristic, resolve_order, sequence_experiment,
)
from repro.harness import SuiteRunner
from repro.passes import (
    AnalysisManager, AnalysisRegistry, FunctionPass, Pass, PassPipeline,
    PassRegistry,
)
from repro.isa import Executable, assemble
from repro.sim import (
    EdgeProfile, Machine, SequenceAnalyzer, run_with_profile,
    run_with_sequences,
)

__all__ = [
    "__version__",
    # toolchain
    "assemble", "Executable", "CompileError", "compile_and_link",
    "compile_to_asm",
    # simulation
    "Machine", "EdgeProfile", "SequenceAnalyzer", "run_with_profile",
    "run_with_sequences",
    # the paper's contribution
    "BranchClass", "BranchInfo", "Prediction", "ProgramAnalysis",
    "classify_branches", "HEURISTIC_NAMES", "PAPER_ORDER",
    "HeuristicPredictor", "PerfectPredictor", "LoopRandomPredictor",
    "RandomPredictor", "TakenPredictor", "NotTakenPredictor",
    "BTFNTPredictor", "evaluate_predictor", "sequence_experiment",
    "HEURISTIC_REGISTRY", "register_heuristic", "resolve_order",
    # pass framework
    "Pass", "FunctionPass", "PassRegistry", "PassPipeline",
    "AnalysisManager", "AnalysisRegistry",
    # suite & harness
    "suite", "SuiteRunner",
]
