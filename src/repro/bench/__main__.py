"""``python -m repro.bench`` — simulator micro-benchmarks.

``sim`` measures per-tier simulation throughput on the suite's hottest
benchmarks, pipeline-shaped: each measurement is one edge-profiling pass
plus one three-analyzer sequence pass over the same executable — exactly
the work the experiment harness performs per (benchmark, dataset), so
the numbers predict real report wall-clock, not an observer-free toy
loop.  Best-of-N per tier; instructions/second = (instructions retired
across both passes) / wall.

Output: a human table, an optional :data:`~repro.telemetry.export.
BENCH_SCHEMA` summary JSON (``-o``) whose gauges
``sim.instructions_per_sec.tier0`` / ``.tier1`` / ``sim.tier1_speedup``
feed ``python -m repro.telemetry diff``, and an optional in-place update
of the committed ``BENCH_pipeline.json`` (``--update-baseline``).

The ``--gate`` flag enforces the tiered-engine acceptance floor:

* Tier-1 throughput must be at least ``--min-tier1-x`` (default 5.0)
  times :data:`COMMITTED_BASELINE_IPS` — the simulator throughput
  committed in ``BENCH_pipeline.json`` *before* the tiered engine
  landed (the pre-decoding interpreter, i.e. the original Tier-0
  baseline the 5x target was set against).
* The *live* tier1/tier0 ratio must stay above ``--min-ratio``
  (default 2.5).  This is deliberately lower than 5: Tier-0 itself got
  ~1.8x faster than the committed baseline when dispatch moved to
  pre-decoded closures, which shrinks the live ratio without any
  Tier-1 regression.  See docs/performance.md ("Tiered execution
  engine") for the full accounting.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from time import perf_counter

from repro import telemetry

EXIT_OK = 0
EXIT_GATE = 1

#: the 5 benchmarks with the largest simulated-instruction budgets in the
#: suite (the "hottest" — superblock residency is highest here, so they
#: bound both tiers' best case and the report's wall-clock)
HOT_BENCHMARKS = ("kernels", "matmul", "mesh", "gauss", "cg")

#: ``sim.instructions_per_sec`` committed in ``BENCH_pipeline.json``
#: before the tiered engine existed (the fetch-decode-execute
#: interpreter measured by the PR-6 pipeline baseline).  The acceptance
#: gate "tier1 >= 5x the committed Tier-0 baseline" is anchored here,
#: NOT at the live tier0 gauge: re-measuring tier0 each run would move
#: the goalposts with the machine, and today's tier0 is itself much
#: faster than the engine the target was set against.
COMMITTED_BASELINE_IPS = 1_740_628


def _measure(name: str, dataset: str, engine: str, best: int,
             max_instructions: int) -> tuple[float, int]:
    """Best-of-*best* pipeline-shaped throughput for one benchmark.

    Returns (instructions/second, instructions per measurement).
    """
    from repro.bench.suite import get
    from repro.core.sequences import sequence_experiment
    from repro.harness.parallel import compile_artifact
    from repro.sim import EdgeProfile, Machine

    bench = get(name)
    executable, analysis = compile_artifact(bench)
    inputs = list(bench.dataset(dataset).inputs)
    best_ips = 0.0
    total = 0
    for _ in range(max(1, best)):
        start = perf_counter()
        profile = EdgeProfile()
        Machine(executable, inputs=list(inputs), observers=[profile],
                max_instructions=max_instructions, engine=engine).run()
        analyzers = sequence_experiment(
            executable, profile, inputs=list(inputs), analysis=analysis,
            max_instructions=max_instructions, engine=engine)
        wall = perf_counter() - start
        total = (profile.total_instructions
                 + next(iter(analyzers.values())).total_instructions)
        best_ips = max(best_ips, total / wall)
    return best_ips, total


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _cmd_sim(args: argparse.Namespace) -> int:
    benchmarks = [b for b in args.benchmarks.split(",") if b]
    results: dict[str, dict[str, float]] = {}
    print(f"{'benchmark':<10} {'tier0 M/s':>10} {'tier1 M/s':>10} "
          f"{'ratio':>6}   (best of {args.best}, pipeline-shaped)")
    for name in benchmarks:
        per = {}
        for tier in ("tier0", "tier1"):
            ips, instructions = _measure(
                name, args.dataset, tier, args.best, args.max_instructions)
            per[tier] = ips
            per[f"{tier}_instructions"] = instructions
        per["ratio"] = per["tier1"] / per["tier0"] if per["tier0"] else 0.0
        results[name] = per
        print(f"{name:<10} {per['tier0'] / 1e6:>10.2f} "
              f"{per['tier1'] / 1e6:>10.2f} {per['ratio']:>6.2f}",
              flush=True)

    tier0_ips = _geomean([r["tier0"] for r in results.values()])
    tier1_ips = _geomean([r["tier1"] for r in results.values()])
    ratio = tier1_ips / tier0_ips if tier0_ips else 0.0
    baseline_x = tier1_ips / COMMITTED_BASELINE_IPS
    print(f"{'geomean':<10} {tier0_ips / 1e6:>10.2f} "
          f"{tier1_ips / 1e6:>10.2f} {ratio:>6.2f}")
    print(f"tier1 vs committed baseline "
          f"({COMMITTED_BASELINE_IPS / 1e6:.2f} M/s): {baseline_x:.2f}x")

    payload = None
    if args.output or args.update_baseline:
        sink = telemetry.Telemetry()
        sink.gauge("sim.instructions_per_sec.tier0").set(tier0_ips)
        sink.gauge("sim.instructions_per_sec.tier1").set(tier1_ips)
        sink.gauge("sim.tier1_speedup").set(ratio)
        config = {
            "kind": "sim-bench",
            "benchmarks": sorted(benchmarks),
            "dataset": args.dataset,
            "best_of": args.best,
            "max_instructions": args.max_instructions,
        }
        payload = telemetry.summary_dict(sink, config=config)
        payload["sim_bench"] = {
            name: {k: v for k, v in per.items()}
            for name, per in results.items()
        }
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    if args.update_baseline:
        path = Path(args.update_baseline)
        baseline = json.loads(path.read_text())
        baseline.setdefault("gauges", {}).update({
            "sim.instructions_per_sec.tier0": tier0_ips,
            "sim.instructions_per_sec.tier1": tier1_ips,
            "sim.tier1_speedup": ratio,
        })
        baseline["sim_bench"] = payload["sim_bench"]
        path.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                        + "\n")
        print(f"updated gauges in {path}", file=sys.stderr)

    if args.gate:
        failures = []
        if baseline_x < args.min_tier1_x:
            failures.append(
                f"tier1 {tier1_ips / 1e6:.2f} M/s is "
                f"{baseline_x:.2f}x the committed baseline "
                f"(< {args.min_tier1_x:.1f}x gate)")
        if ratio < args.min_ratio:
            failures.append(
                f"live tier1/tier0 ratio {ratio:.2f} "
                f"< {args.min_ratio:.1f} gate")
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if failures:
            return EXIT_GATE
        print(f"gate ok: tier1 {baseline_x:.2f}x committed baseline "
              f"(>= {args.min_tier1_x:.1f}x), live ratio {ratio:.2f} "
              f"(>= {args.min_ratio:.1f})")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Simulator micro-benchmarks.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser(
        "sim", help="per-tier simulator throughput on the hottest "
                    "benchmarks")
    p_sim.add_argument("--benchmarks", default=",".join(HOT_BENCHMARKS),
                       help="comma-separated benchmark names (default: "
                            "the 5 hottest)")
    p_sim.add_argument("--dataset", default="ref")
    p_sim.add_argument("--best", type=int, default=3, metavar="N",
                       help="measurements per (benchmark, tier); the "
                            "fastest is kept (default 3)")
    p_sim.add_argument("--max-instructions", type=int,
                       default=200_000_000)
    p_sim.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="write a BENCH-schema summary JSON (for "
                            "'telemetry diff')")
    p_sim.add_argument("--update-baseline", default=None, metavar="PATH",
                       help="merge the per-tier gauges into an existing "
                            "baseline JSON (e.g. BENCH_pipeline.json)")
    p_sim.add_argument("--gate", action="store_true",
                       help="exit 1 unless tier1 beats the committed "
                            "baseline by --min-tier1-x and the live "
                            "ratio stays above --min-ratio")
    p_sim.add_argument("--min-tier1-x", type=float, default=5.0,
                       help="required tier1 multiple of the committed "
                            "pre-tiering baseline (default 5.0)")
    p_sim.add_argument("--min-ratio", type=float, default=2.5,
                       help="required live tier1/tier0 ratio "
                            "(default 2.5)")
    p_sim.set_defaults(func=_cmd_sim)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
