"""The benchmark suite (the paper's Table 1 stand-in).

Each :class:`Benchmark` is a BLC program in ``programs/`` plus a set of
:class:`Dataset` input vectors (the values its ``read_int`` calls consume).
The suite mirrors the paper's workload classes: an integer/pointer group
(interpreters, compilers, text tools, combinatorial search) and a
floating-point group (kernels, solvers, simulations), each program standing
in for a named benchmark from the paper.

Dataset sizes are tuned so a full-suite simulated execution stays in the
hundreds-of-thousands-to-millions of instructions per program — large enough
for stable dynamic branch statistics, small enough for an interpreted ISA.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from importlib import resources

from repro.bcc import compile_and_link
from repro.isa.program import Executable

__all__ = ["Dataset", "Benchmark", "suite", "get", "suite_names",
           "INT_GROUP", "FP_GROUP",
           "register", "unregister", "registered", "registered_names"]


@dataclass(frozen=True)
class Dataset:
    """One input vector for a benchmark (fed to its read syscalls)."""

    name: str
    inputs: tuple


@dataclass(frozen=True)
class Benchmark:
    """A suite member: program source + datasets + provenance.

    ``source_text`` carries the program inline for *synthetic* benchmarks
    (the :mod:`repro.gen` corpus registers thousands of them); suite
    members leave it ``None`` and read their ``programs/*.blc`` resource.
    """

    name: str
    group: str                 #: "int" or "fp"
    description: str
    paper_analogue: str        #: which Table 1 benchmark it stands in for
    datasets: tuple[Dataset, ...]
    #: inline BLC source for registered synthetic benchmarks (``None``:
    #: read ``programs/<name>.blc`` from the package)
    source_text: str | None = field(default=None, repr=False)

    def source(self) -> str:
        """The BLC source text."""
        if self.source_text is not None:
            return self.source_text
        path = resources.files("repro.bench").joinpath(
            f"programs/{self.name}.blc")
        return path.read_text()

    def compile(self, optimize: bool = True) -> Executable:
        """Compile (with the runtime linked) to an executable."""
        return compile_and_link(self.source(), filename=f"{self.name}.blc",
                                optimize=optimize)

    def dataset(self, name: str) -> Dataset:
        for ds in self.datasets:
            if ds.name == name:
                return ds
        raise KeyError(f"{self.name} has no dataset {name!r}")

    @property
    def default_dataset(self) -> Dataset:
        return self.datasets[0]


def _b(name: str, group: str, description: str, analogue: str,
       *datasets: tuple) -> Benchmark:
    return Benchmark(name, group, description, analogue,
                     tuple(Dataset(n, tuple(i)) for n, i in datasets))


_SUITE: tuple[Benchmark, ...] = (
    # -- integer / pointer group ------------------------------------------------
    _b("microlog", "int", "fact/rule unification with backtracking",
       "congress (Prolog-like interpreter)",
       ("ref", (40, 30, 7)), ("small", (24, 18, 3)), ("alt", (52, 24, 19))),
    _b("exprc", "int", "expression compiler: lex, parse, fold, emit, run",
       "gcc / lcc (compilers)",
       ("ref", (220, 5)), ("small", (90, 11)), ("alt", (260, 23))),
    _b("minilisp", "int", "Lisp interpreter with cons cells and closures",
       "xlisp (Lisp interpreter)",
       ("ref", (0, 12, 1)), ("small", (1, 60, 3)), ("alt", (2, 150, 3))),
    _b("scc", "int", "Tarjan SCC over pointer-linked digraphs",
       "qpt (profiling and tracing tool)",
       ("ref", (500, 4, 5)), ("small", (220, 3, 9)), ("alt", (560, 5, 31))),
    _b("wordfreq", "int", "word-frequency hashing and top-k report",
       "rn (news reader)",
       ("ref", (15000, 5, 10)), ("small", (6000, 9, 6)),
       ("alt", (18000, 13, 14))),
    _b("fields", "int", "record/field scanning with error handling",
       "awk (pattern scanner)",
       ("ref", (420, 5)), ("small", (180, 11)), ("alt", (480, 29))),
    _b("match", "int", "backtracking regex-lite over text lines",
       "grep (regular-expression search)",
       ("ref", (260, 5, 2)), ("small", (120, 9, 0)), ("alt", (300, 17, 1))),
    _b("lzw", "int", "LZW compress + decompress + verify",
       "compress (file compression)",
       ("ref", (8000, 5)), ("small", (4000, 9)), ("alt", (10000, 21))),
    _b("eqntott", "int", "boolean equations to sorted truth table",
       "eqntott (boolean eqns to truth table)",
       ("ref", (9, 50, 5)), ("small", (8, 40, 9)), ("alt", (10, 36, 3))),
    _b("cover", "int", "greedy two-level logic cube covering",
       "espresso (PLA minimization)",
       ("ref", (9, 42, 5)), ("small", (8, 34, 11)), ("alt", (9, 48, 3))),
    _b("knapsack", "int", "branch-and-bound 0/1 knapsack",
       "addalg (integer program solver)",
       ("ref", (36, 260, 5, 12)), ("small", (26, 160, 7, 8)), ("alt", (40, 300, 3, 9))),
    _b("queens", "int", "N-queens exhaustive backtracking",
       "qp / poly (polyominoes game)",
       ("ref", (8, 1)), ("small", (7, 1)), ("alt", (9, 1))),
    _b("flow", "int", "min-cost flow by successive shortest paths",
       "costScale (minimum cost flow)",
       ("ref", (100, 4, 60, 5)), ("small", (60, 3, 30, 9)),
       ("alt", (116, 5, 80, 3))),
    _b("sortmix", "int", "quicksort + heapsort workbench, cross-checked",
       "icc (C compiler; library-sort branch mix)",
       ("ref", (2500, 5)), ("small", (1000, 9)), ("alt", (3200, 3))),
    _b("huffman", "int", "Huffman coding: heap, tree build, bit codec",
       "compress (file compression, entropy-coding side)",
       ("ref", (9000, 5)), ("small", (4000, 9)), ("alt", (11000, 3))),
    # -- floating-point group ----------------------------------------------------
    _b("nbody", "fp", "2D n-body with cutoff and collision softening",
       "doduc / spice2g6 (simulations)",
       ("ref", (64, 12, 5)), ("small", (40, 10, 9)), ("alt", (90, 7, 3))),
    _b("quad", "fp", "recursive adaptive Simpson quadrature",
       "fpppp (two-electron integrals)",
       ("ref", (0, 25, 13)), ("small", (1, 14, 11)), ("alt", (2, 30, 12))),
    _b("cg", "fp", "conjugate gradient on a sparse SPD system",
       "dcg (conjugate gradient)",
       ("ref", (400, 60, 5)), ("small", (200, 40, 9)), ("alt", (560, 50, 3))),
    _b("gauss", "fp", "Gaussian elimination with partial pivoting",
       "sgefat (Gaussian elimination)",
       ("ref", (28, 3, 5)), ("small", (18, 4, 9)), ("alt", (36, 2, 3))),
    _b("mesh", "fp", "2D relaxation with max-residual scan",
       "tomcatv (vectorized mesh generation)",
       ("ref", (26, 24, )), ("small", (16, 22)), ("alt", (36, 12))),
    _b("kernels", "fp", "daxpy/dot/stencil/recurrence/shuffle battery",
       "dnasa7 (floating point kernels)",
       ("ref", (1500, 12, 5)), ("small", (700, 10, 9)),
       ("alt", (1900, 9, 3))),
    _b("matmul", "fp", "dense matrix multiply",
       "matrix300 (matrix multiply)",
       ("ref", (24, 2)), ("small", (16, 3)), ("alt", (34, 1))),
)

INT_GROUP = tuple(b.name for b in _SUITE if b.group == "int")
FP_GROUP = tuple(b.name for b in _SUITE if b.group == "fp")


def suite() -> list[Benchmark]:
    """All benchmarks, integer group first (the paper's Table 1 ordering)."""
    return list(_SUITE)


def suite_names() -> list[str]:
    return [b.name for b in _SUITE]


#: dynamically registered benchmarks (generated corpus programs) — an
#: in-memory extension of the fixed suite, resolvable through :func:`get`.
#: Parallel shard workers inherit it across the fork, so registered
#: programs flow through :class:`~repro.harness.parallel.ShardJob` like
#: suite members.
_REGISTERED: dict[str, Benchmark] = {}


def get(name: str) -> Benchmark:
    """Look up a benchmark by name (suite members, then registered)."""
    for b in _SUITE:
        if b.name == name:
            return b
    try:
        return _REGISTERED[name]
    except KeyError:
        raise KeyError(f"no benchmark named {name!r}") from None


def register(benchmark: Benchmark, replace: bool = False) -> Benchmark:
    """Register a synthetic benchmark so :func:`get` (and everything built
    on it: :class:`~repro.harness.runner.SuiteRunner`, shard workers, the
    SCEV trip checker) resolves it by name.

    Suite names are reserved; re-registering an existing name requires
    ``replace=True`` (same-content re-registration is always allowed).
    """
    if any(b.name == benchmark.name for b in _SUITE):
        raise ValueError(
            f"{benchmark.name!r} is a reserved suite benchmark name")
    existing = _REGISTERED.get(benchmark.name)
    if existing is not None and existing != benchmark and not replace:
        raise ValueError(
            f"benchmark {benchmark.name!r} is already registered with "
            f"different content (pass replace=True to override)")
    _REGISTERED[benchmark.name] = benchmark
    return benchmark


def unregister(name: str) -> None:
    """Drop one registered benchmark (unknown names are a no-op)."""
    _REGISTERED.pop(name, None)


def registered_names() -> list[str]:
    """Names of all dynamically registered benchmarks, sorted."""
    return sorted(_REGISTERED)


@contextmanager
def registered(benchmarks, replace: bool = False):
    """Scope-bound registration: register *benchmarks* on entry, drop
    them on exit (the test-suite-friendly form — no global leakage)."""
    benchmarks = list(benchmarks)
    added: list[str] = []
    try:
        for benchmark in benchmarks:
            register(benchmark, replace=replace)
            added.append(benchmark.name)
        yield benchmarks
    finally:
        for name in added:
            unregister(name)
