"""Benchmark suite: BLC programs + datasets mirroring the paper's Table 1."""

from repro.bench.suite import (
    Benchmark, Dataset, FP_GROUP, INT_GROUP, get, suite, suite_names,
)

__all__ = ["Benchmark", "Dataset", "suite", "suite_names", "get",
           "INT_GROUP", "FP_GROUP"]
