"""Distributed tracing: one causal identity across processes and tiers.

The prediction service executes one job in (at least) four places — the
HTTP front end, the asyncio engine, a forked worker process, and the
shared artifact store — each of which reports telemetry into its *own*
sink.  PR 6 made the service fault-tolerant but left those reports
unjoined: "why was this prediction slow?" had no answer because no
identity crossed the process boundary.  This module supplies that
identity and the plumbing to carry it:

* :class:`TraceContext` — a W3C-trace-context-shaped identity
  (``trace_id`` + ``span_id`` + ``parent_id``), minted at HTTP ingress
  (honoring an inbound ``traceparent`` header so external callers can
  stitch the service into *their* traces) and carried on
  :class:`~repro.service.jobs.JobRecord` /
  :class:`~repro.harness.parallel.ShardJob`;
* :class:`TraceSpan` — a plain-data, picklable, **wall-clock** span
  (``time.time()`` start, not a per-process ``perf_counter`` epoch), so
  spans recorded in a forked worker land on the same absolute timeline
  as the engine's without cross-process clock stitching;
* a thread-local *active context* (:func:`activate` / :func:`current`)
  that (a) collects :func:`span` timings into a per-job list the worker
  ships back inside its :class:`~repro.harness.parallel.ShardResult`,
  and (b) lets :class:`~repro.telemetry.core.Telemetry` tag every
  ordinary span with the active ``trace_id`` — which survives
  :meth:`~repro.telemetry.core.Telemetry.merge_snapshot` verbatim, so
  worker sinks re-stitch into the parent's at snapshot-merge time;
* :func:`timeline` — the ``GET /jobs/<id>/trace`` body: the ordered
  span list plus non-overlapping segment accounting
  (``queue_wait_s + dispatch_s + exec_s ≈ end-to-end``).

Everything here is inert unless a context is activated: :func:`span`
with no active context is a shared no-op, so batch harness runs pay
nothing.
"""

from __future__ import annotations

import os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "TraceContext", "TraceSpan", "activate", "current", "span",
    "manual_span", "timeline", "parse_traceparent", "SEGMENT_NAMES",
]

#: ``version-trace_id-span_id-flags`` per the W3C trace-context spec
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: timeline segment span names -> the ``segments`` key they accumulate in
SEGMENT_NAMES = {
    "queue_wait": "queue_wait_s",
    "dispatch": "dispatch_s",
    "exec": "exec_s",
    "retry_backoff": "retry_backoff_s",
    "cache.lease_wait": "lease_wait_s",
}


def _hex_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace (immutable, picklable).

    ``trace_id`` is shared by every span of one causal chain;
    ``span_id`` names the position itself; ``parent_id`` links upward
    (``""`` at the root).  The wire form is the W3C ``traceparent``
    header, so any W3C-speaking client or proxy interoperates.
    """

    trace_id: str            #: 32 lowercase hex chars
    span_id: str             #: 16 lowercase hex chars
    parent_id: str = ""      #: 16 hex chars, or "" for a root

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (new trace, new root span)."""
        return cls(trace_id=_hex_id(16), span_id=_hex_id(8))

    def child(self) -> "TraceContext":
        """A child position: same trace, new span, parented here."""
        return TraceContext(trace_id=self.trace_id, span_id=_hex_id(8),
                            parent_id=self.span_id)

    @property
    def traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this position."""
        return f"00-{self.trace_id}-{self.span_id}-01"


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse an inbound ``traceparent`` header into a *continuation*
    context: same trace, a fresh span parented on the caller's span.

    Returns ``None`` for anything malformed (wrong shape, non-hex,
    all-zero ids, the reserved ``ff`` version) — the caller mints a
    fresh root instead; a bad header can cost trace continuity, never
    a request.
    """
    if not header or not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, _flags = match.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=_hex_id(8),
                        parent_id=span_id)


@dataclass
class TraceSpan:
    """One completed wall-clock span of a distributed trace.

    Unlike :class:`~repro.telemetry.core.SpanRecord` (microseconds since
    a per-process ``perf_counter`` epoch), a ``TraceSpan`` is anchored
    at absolute ``time.time()`` — spans recorded in different processes
    compare directly.  Durations still come from ``perf_counter`` so
    they are monotonic.
    """

    name: str                #: e.g. ``"worker.simulate"``
    tier: str                #: ingress | queue | service | worker | cache
    trace_id: str
    span_id: str
    parent_id: str
    start_s: float           #: wall clock (``time.time()``)
    duration_s: float
    process: str = ""        #: e.g. ``"service"`` / ``"worker:4711"``
    args: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def to_dict(self) -> dict:
        out = {
            "name": self.name, "tier": self.tier,
            "trace_id": self.trace_id, "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "process": self.process,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out


# --------------------------------------------------------------------------
# thread-local active context + span collection
# --------------------------------------------------------------------------

_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current() -> TraceContext | None:
    """The innermost active trace context on this thread (or ``None``)."""
    stack = _stack()
    return stack[-1][0] if stack else None


@contextmanager
def activate(ctx: TraceContext | None, process: str = ""):
    """Make *ctx* the active context for the ``with`` block and collect
    every :func:`span` recorded under it.  Yields the collector list
    (populated as spans close).  ``None`` deactivates: :func:`span`
    becomes a no-op and the yielded list stays empty.
    """
    spans: list[TraceSpan] = []
    if ctx is None:
        yield spans
        return
    stack = _stack()
    stack.append((ctx, spans, process or f"pid:{os.getpid()}"))
    try:
        yield spans
    finally:
        stack.pop()


@contextmanager
def span(name: str, tier: str, **args):
    """Time one wall-clock span under the active context (no-op when no
    context is active).  Nested spans parent correctly: the span becomes
    the active position for its dynamic extent.
    """
    stack = _stack()
    if not stack:
        yield None
        return
    ctx, spans, process = stack[-1]
    child = ctx.child()
    stack.append((child, spans, process))
    wall = time.time()
    start = perf_counter()
    try:
        yield child
    finally:
        duration = perf_counter() - start
        stack.pop()
        spans.append(TraceSpan(
            name=name, tier=tier, trace_id=child.trace_id,
            span_id=child.span_id, parent_id=child.parent_id,
            start_s=wall, duration_s=duration, process=process,
            args=args))


def manual_span(ctx: TraceContext, name: str, tier: str, start_s: float,
                end_s: float, process: str = "service",
                parent_id: str | None = None, **args) -> TraceSpan:
    """A span built from explicit wall-clock timestamps (the engine
    reconstructs ``queue_wait`` retroactively — the job was not *doing*
    anything while queued, so nothing could have timed it live).
    Parented on *ctx* unless *parent_id* overrides.
    """
    return TraceSpan(
        name=name, tier=tier, trace_id=ctx.trace_id, span_id=_hex_id(8),
        parent_id=ctx.span_id if parent_id is None else parent_id,
        start_s=start_s, duration_s=max(0.0, end_s - start_s),
        process=process, args=args)


# --------------------------------------------------------------------------
# timelines (the /jobs/<id>/trace body)
# --------------------------------------------------------------------------

def timeline(trace_id: str, spans: list[TraceSpan],
             total_s: float | None = None) -> dict:
    """Assemble one job's spans into the wire-format trace timeline.

    ``segments`` carries the non-overlapping accounting the acceptance
    criterion checks: ``queue_wait_s + dispatch_s + exec_s`` (plus any
    ``retry_backoff_s``) should approximate ``total_s``;
    ``lease_wait_s`` is *inside* ``exec_s`` (a worker waiting on another
    tenant's writer lease is still occupying its slot), so it is
    reported but not added to ``accounted_s``.
    """
    ordered = sorted((s for s in spans if s.trace_id == trace_id),
                     key=lambda s: (s.start_s, s.span_id))
    segments = {key: 0.0 for key in SEGMENT_NAMES.values()}
    for record in ordered:
        key = SEGMENT_NAMES.get(record.name)
        if key is not None:
            segments[key] += record.duration_s
    accounted = (segments["queue_wait_s"] + segments["dispatch_s"]
                 + segments["exec_s"] + segments["retry_backoff_s"])
    segments = {k: round(v, 6) for k, v in segments.items()}
    segments["accounted_s"] = round(accounted, 6)
    if total_s is not None:
        segments["total_s"] = round(total_s, 6)
    return {
        "trace_id": trace_id,
        "tiers": sorted({s.tier for s in ordered}),
        "segments": segments,
        "spans": [s.to_dict() for s in ordered],
    }
