"""End-to-end telemetry for the reproduction pipeline.

The paper's own contribution is measurement infrastructure (QPT edge
profiles, miss rates, IPBC); this package turns the same lens on the
pipeline itself: where wall-clock goes across compile → assemble →
simulate → analyze, which simulated PCs dominate interpreter time, and
whether a change regressed throughput.

Layout
------
:mod:`repro.telemetry.core`
    Metric registry (counters / gauges / histograms / labeled counters)
    plus hierarchical wall-clock spans, behind the single injection seam
    :func:`get` / :func:`install` / :func:`use` (no-op by default).
:mod:`repro.telemetry.export`
    Chrome trace-event JSON, JSONL event log, Prometheus text
    exposition, human summary, and the machine-readable summary used for
    baselines; :func:`write_report` emits all of them plus a manifest.
:mod:`repro.telemetry.tracing`
    Distributed tracing: W3C-style :class:`TraceContext` minted at HTTP
    ingress, picklable wall-clock :class:`TraceSpan` records collected
    across the fork boundary, per-job timelines (``/jobs/<id>/trace``).
:mod:`repro.telemetry.flight`
    Always-on lock-free flight recorder: a bounded ring of recent
    structured events dumped into crash reports and quarantine records.
:mod:`repro.telemetry.manifest`
    Run provenance (git sha, interpreter, platform, seed, config hash).
:mod:`repro.telemetry.bench`
    Baseline loading/validation and regression diffing
    (``BENCH_pipeline.json``).
:mod:`repro.telemetry.logging_setup`
    Shared structured logging + ``--log-level``/``--quiet`` CLI flags.

Run ``python -m repro.telemetry --help`` for the summarize/diff/record
CLI, and see docs/observability.md for the metric catalog and span
hierarchy.
"""

from repro.telemetry.bench import (
    DiffResult, MalformedReport, Regression, diff_reports, load_report,
)
from repro.telemetry.core import (
    Counter, Gauge, Histogram, HistogramState, LabeledCounter, SpanRecord,
    Telemetry, TelemetrySnapshot, get, install, use,
)
from repro.telemetry.export import (
    BENCH_SCHEMA, REPORT_FILES, slo_summary, summary_dict, summary_table,
    to_chrome_trace, to_jsonl, to_prometheus, write_report,
)
from repro.telemetry.flight import FlightEvent, FlightRecorder
from repro.telemetry.tracing import TraceContext, TraceSpan, parse_traceparent
from repro.telemetry.logging_setup import (
    add_logging_args, configure_from_args, get_logger, setup_logging,
)
from repro.telemetry.manifest import config_hash, run_manifest

__all__ = [
    "Counter", "Gauge", "Histogram", "HistogramState", "LabeledCounter",
    "SpanRecord", "Telemetry", "TelemetrySnapshot", "get", "install", "use",
    "TraceContext", "TraceSpan", "parse_traceparent",
    "FlightRecorder", "FlightEvent",
    "to_chrome_trace", "to_jsonl", "to_prometheus", "summary_table",
    "summary_dict", "slo_summary", "write_report", "REPORT_FILES",
    "BENCH_SCHEMA",
    "run_manifest", "config_hash",
    "load_report", "diff_reports", "DiffResult", "Regression",
    "MalformedReport",
    "setup_logging", "add_logging_args", "configure_from_args",
    "get_logger",
]
