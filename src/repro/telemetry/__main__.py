"""``python -m repro.telemetry`` — summarize, diff, and record telemetry.

Subcommands:

``summarize PATH``
    Pretty-print a telemetry summary JSON (``telemetry.json`` from a
    ``--telemetry`` run, or a ``BENCH_pipeline.json`` baseline).  PATH
    may be the file or the report directory containing it.

``diff BASELINE CURRENT [--threshold F] [--min-seconds S]``
    Compare two summaries and flag wall-clock regressions: any span
    whose total grew by >= threshold (default 0.20 = 20%) or throughput
    gauge that dropped by the same fraction.  Exit codes: 0 = ok,
    1 = regression found, 2 = malformed input.  This is the CI gate for
    the perf trajectory.

``record -o OUT.json [--benchmarks A,B] [--dataset ref] [--hot-pc N]
[--jobs N] [--cache DIR]``
    Run a small reference pipeline (compile + simulate the selected
    benchmarks) under telemetry and write the summary JSON — how
    ``BENCH_pipeline.json`` baselines are produced.  ``--jobs N`` shards
    the pipeline across worker processes (their telemetry snapshots are
    merged into the summary); ``--cache DIR`` reuses the persistent
    artifact cache.

``trace SOURCE``
    Flame-style rendering of one distributed-trace timeline.  SOURCE is
    either a file holding a ``/jobs/<id>/trace`` JSON body or the
    endpoint URL itself (``http://host:port/jobs/<id>/trace`` — fetched
    with the stdlib, no client dependency).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import telemetry
from repro.telemetry.bench import MalformedReport, diff_reports, load_report
from repro.telemetry.logging_setup import (
    add_logging_args, configure_from_args,
)

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MALFORMED = 2


def _resolve(path: str) -> Path:
    """Accept either a summary file or a report directory."""
    p = Path(path)
    if p.is_dir():
        return p / "telemetry.json"
    return p


def _cmd_summarize(args: argparse.Namespace) -> int:
    try:
        payload = load_report(_resolve(args.path))
    except MalformedReport as exc:
        print(f"error[malformed-report]: {exc}", file=sys.stderr)
        return EXIT_MALFORMED
    manifest = payload["manifest"]
    print(f"run: {manifest.get('created_utc')}  "
          f"git={str(manifest.get('git_sha'))[:12]}  "
          f"python={manifest.get('python')}  "
          f"config={manifest.get('config_hash')}")
    spans = payload["spans"]
    if spans:
        print(f"{'span':<36} {'count':>6} {'total':>10} {'mean':>10}")
        for name, entry in sorted(spans.items(),
                                  key=lambda kv: -kv[1]["total_s"]):
            print(f"{name:<36} {int(entry['count']):>6} "
                  f"{entry['total_s']:>9.3f}s {entry['mean_s']:>9.4f}s")
    for kind in ("counters", "gauges"):
        block = payload[kind]
        if block:
            print(f"{kind}:")
            for name, value in sorted(block.items()):
                print(f"  {name:<44} {value:>16,.1f}" if
                      isinstance(value, float) else
                      f"  {name:<44} {value:>16,}")
    histograms = payload.get("histograms") or {}
    if histograms:
        print("histograms (tail latencies):")
        for name, h in sorted(histograms.items()):
            print(f"  {name:<36} count={int(h.get('count', 0)):>6} "
                  f"p50={h.get('p50', 0.0):.4g} "
                  f"p95={h.get('p95', 0.0):.4g} "
                  f"p99={h.get('p99', 0.0):.4g}")
    # derived SLO rates: stored by new summaries, recomputed for old ones
    from repro.telemetry.export import slo_summary
    slo = payload.get("slo") or slo_summary(payload.get("counters", {}),
                                            payload.get("gauges", {}))
    if any(slo.values()):
        print("slo:")
        for name, value in sorted(slo.items()):
            print(f"  {name:<44} {value:>16.6f}")
    print(f"span depth: {payload.get('max_span_depth', '?')}, "
          f"recorded: {payload.get('spans_recorded', '?')}")
    return EXIT_OK


def _cmd_trace(args: argparse.Namespace) -> int:
    source = args.source
    try:
        if source.startswith(("http://", "https://")):
            from urllib.request import urlopen
            with urlopen(source, timeout=10) as resp:
                payload = json.loads(resp.read().decode())
        else:
            payload = json.loads(Path(source).read_text())
    except Exception as exc:
        print(f"error[unreadable-trace]: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return EXIT_MALFORMED
    trace_id = payload.get("trace_id")
    spans = payload.get("spans") or []
    if not trace_id or not spans:
        print("error[unreadable-trace]: no spans (untraced job?)",
              file=sys.stderr)
        return EXIT_MALFORMED
    print(f"trace {trace_id}  job={payload.get('job', '?')} "
          f"state={payload.get('state', '?')} "
          f"tiers={','.join(payload.get('tiers', []))}")
    seg = payload.get("segments", {})
    if seg:
        parts = " ".join(f"{k}={v:.3f}s" for k, v in seg.items()
                         if k not in ("accounted_s", "total_s") and v)
        print(f"segments: {parts}  (accounted "
              f"{seg.get('accounted_s', 0.0):.3f}s / total "
              f"{seg.get('total_s', 0.0):.3f}s)")
    # flame rows: offset-aligned bars on a shared wall-clock baseline
    t0 = min(s["start_s"] for s in spans)
    horizon = max(s["start_s"] + s["duration_s"] for s in spans) - t0
    width = 32
    for s in spans:
        off = s["start_s"] - t0
        dur = s["duration_s"]
        lead = int(off / horizon * width) if horizon > 0 else 0
        fill = max(1, int(dur / horizon * width)) if horizon > 0 else width
        bar = " " * lead + "█" * min(fill, width - lead)
        print(f"  {off:>8.3f}s {dur:>8.3f}s  {bar:<{width}}  "
              f"[{s.get('tier', '?'):<7}] {s['name']} "
              f"({s.get('process', '')})")
    # rollup: where did the time go, per tier
    by_tier: dict[str, float] = {}
    for s in spans:
        by_tier[s.get("tier", "?")] = (by_tier.get(s.get("tier", "?"), 0.0)
                                       + s["duration_s"])
    print("by tier: " + "  ".join(
        f"{tier}={total:.3f}s" for tier, total in
        sorted(by_tier.items(), key=lambda kv: -kv[1])))
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        baseline = load_report(_resolve(args.baseline))
        current = load_report(_resolve(args.current))
    except MalformedReport as exc:
        print(f"error[malformed-report]: {exc}", file=sys.stderr)
        return EXIT_MALFORMED
    result = diff_reports(baseline, current, threshold=args.threshold,
                          min_seconds=args.min_seconds)
    print(result.describe(args.threshold))
    return EXIT_OK if result.ok else EXIT_REGRESSION


def _cmd_record(args: argparse.Namespace) -> int:
    # local import: keep the CLI importable without the harness
    from repro.harness.runner import SuiteRunner

    benchmarks = [b for b in args.benchmarks.split(",") if b] or None
    sink = telemetry.Telemetry()
    with telemetry.use(sink):
        runner = SuiteRunner(benchmarks=benchmarks,
                             pc_sample_interval=args.hot_pc,
                             parallelism=args.jobs,
                             cache_dir=args.cache)
        with sink.span("pipeline", category="bench",
                       dataset=args.dataset):
            if args.jobs > 1:
                runner.prefetch(args.dataset)
            for name in runner.benchmark_names:
                runner.run(name, args.dataset)
    config = {
        "kind": "pipeline",
        "benchmarks": sorted(runner.benchmark_names),
        "dataset": args.dataset,
        "hot_pc": args.hot_pc,
        "max_instructions": runner.max_instructions,
        "jobs": args.jobs,
    }
    payload = telemetry.summary_dict(sink, config=config)
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['spans'])} span kinds, "
          f"{payload['counters'].get('sim.instructions', 0):,} simulated "
          f"instructions)", file=sys.stderr)
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize, diff, and record pipeline telemetry.")
    add_logging_args(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize",
                           help="pretty-print a telemetry summary JSON")
    p_sum.add_argument("path", help="summary file or report directory")
    p_sum.set_defaults(func=_cmd_summarize)

    p_diff = sub.add_parser(
        "diff", help="compare two summaries; exit 1 on a regression")
    p_diff.add_argument("baseline")
    p_diff.add_argument("current")
    p_diff.add_argument("--threshold", type=float, default=0.20,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.20)")
    p_diff.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore spans shorter than this in the "
                             "baseline (default 0.005)")
    p_diff.set_defaults(func=_cmd_diff)

    p_rec = sub.add_parser(
        "record", help="run a reference pipeline and write its summary")
    p_rec.add_argument("-o", "--output", required=True,
                       help="output summary JSON path")
    p_rec.add_argument("--benchmarks", default="queens,fields",
                       help="comma-separated benchmark names "
                            "(default: queens,fields)")
    p_rec.add_argument("--dataset", default="ref")
    p_rec.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard the pipeline across N worker processes "
                            "(merged telemetry; see docs/performance.md)")
    p_rec.add_argument("--cache", default=None, metavar="DIR",
                       help="persistent artifact cache directory "
                            "(off by default for honest timings)")
    p_rec.add_argument("--hot-pc", type=int, default=None, metavar="N",
                       help="sample the simulated pc every N instructions")
    p_rec.set_defaults(func=_cmd_record)

    p_trace = sub.add_parser(
        "trace", help="flame-style rendering of one distributed trace")
    p_trace.add_argument("source",
                         help="trace JSON file or /jobs/<id>/trace URL")
    p_trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    configure_from_args(args)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
