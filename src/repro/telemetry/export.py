"""Telemetry exporters: Chrome trace JSON, JSONL, Prometheus text, summary.

Four formats, one source of truth (:class:`~repro.telemetry.Telemetry`):

* :func:`to_chrome_trace` — Chrome trace-event format (the ``{"traceEvents":
  [...]}`` object form) loadable in Perfetto / ``chrome://tracing``; spans
  become complete (``"ph": "X"``) events.
* :func:`to_jsonl` — newline-delimited JSON event log (one span or metric
  per line), greppable and streamable.
* :func:`to_prometheus` — Prometheus text exposition (``repro_`` namespace,
  dots mapped to underscores) for scraping or pushgateway upload.
* :func:`summary_table` — human-readable report: span aggregates, counters,
  gauges, histogram stats, hottest sampled PCs.

:func:`write_report` writes all of them plus a run manifest and the
machine-readable ``telemetry.json`` summary consumed by
``python -m repro.telemetry diff``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.telemetry.core import Telemetry
from repro.telemetry.manifest import run_manifest

__all__ = [
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "summary_table",
    "summary_dict",
    "slo_summary",
    "write_report",
    "REPORT_FILES",
    "BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro.telemetry.bench/v1"

#: Files produced by :func:`write_report` (name -> description).
REPORT_FILES = {
    "trace.json": "Chrome trace-event JSON (open in Perfetto)",
    "events.jsonl": "JSONL event log",
    "metrics.prom": "Prometheus text exposition",
    "summary.txt": "human-readable summary table",
    "manifest.json": "run provenance manifest",
    "telemetry.json": "machine-readable summary (diff/baseline input)",
}


# --------------------------------------------------------------------------
# Chrome trace-event format
# --------------------------------------------------------------------------

def to_chrome_trace(telemetry: Telemetry,
                    process_name: str = "repro-pipeline") -> dict:
    """The trace as a Chrome trace-event JSON object.

    Spans are emitted as complete events (``ph: "X"``) with microsecond
    timestamps relative to the telemetry epoch; counters are attached as
    a final counter (``ph: "C"``) sample so they show up as tracks.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    threads = {}
    for span in telemetry.spans:
        tid = threads.setdefault(span.thread_id, len(threads) + 1)
        args = {str(k): v for k, v in span.args.items()}
        args["depth"] = span.depth
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    # Cross-process flow events: spans tagged with the same distributed
    # trace_id (see repro.telemetry.tracing) get a Perfetto flow arrow
    # connecting them in causal (start-time) order, so one service job's
    # chain — ingress → queue → worker → cache — reads as one line even
    # though its spans were recorded by different processes/threads.
    flows: dict[str, list] = {}
    for span in telemetry.spans:
        trace_id = span.args.get("trace_id")
        if trace_id:
            flows.setdefault(str(trace_id), []).append(span)
    for trace_id, chain in sorted(flows.items()):
        if len(chain) < 2:
            continue
        chain.sort(key=lambda s: (s.start_us, s.span_id))
        for i, span in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == len(chain) - 1 else "t")
            event = {
                "name": f"trace:{trace_id[:8]}", "cat": "trace", "ph": ph,
                "id": trace_id, "ts": span.start_us, "pid": 1,
                "tid": threads.setdefault(span.thread_id, len(threads) + 1),
            }
            if ph == "f":
                event["bp"] = "e"
            events.append(event)
    counters = telemetry.counters()
    if counters:
        last_us = max((s.start_us + s.duration_us for s in telemetry.spans),
                      default=0)
        events.append({
            "name": "counters", "ph": "C", "ts": last_us, "pid": 1,
            "tid": 0, "args": {k: v for k, v in counters.items()},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------------------
# JSONL event log
# --------------------------------------------------------------------------

def to_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per line: spans first (in start order), then the
    final metric values."""
    lines = []
    for span in sorted(telemetry.spans, key=lambda s: s.start_us):
        lines.append(json.dumps({
            "event": "span", "name": span.name, "cat": span.category,
            "start_us": span.start_us, "duration_us": span.duration_us,
            "span_id": span.span_id, "parent_id": span.parent_id,
            "depth": span.depth, "args": span.args,
        }, sort_keys=True))
    for name, value in telemetry.counters().items():
        lines.append(json.dumps(
            {"event": "counter", "name": name, "value": value},
            sort_keys=True))
    for name, value in telemetry.gauges().items():
        lines.append(json.dumps(
            {"event": "gauge", "name": name, "value": value},
            sort_keys=True))
    for name, hist in telemetry.histograms().items():
        lines.append(json.dumps({
            "event": "histogram", "name": name, "count": hist.count,
            "sum": hist.sum, "min": hist.min, "max": hist.max,
            "buckets": {str(k): v for k, v in sorted(hist.buckets.items())},
        }, sort_keys=True))
    for name, fam in telemetry.labeled_counters().items():
        lines.append(json.dumps({
            "event": "labeled_counter", "name": name,
            "values": dict(sorted(fam.values.items())),
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def to_prometheus(telemetry: Telemetry) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for name, value in telemetry.counters().items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in telemetry.gauges().items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in telemetry.histograms().items():
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} summary")
        for key, value in hist.percentiles().items():
            quantile = float(key[1:]) / 100.0
            lines.append(f'{metric}{{quantile="{quantile:g}"}} {value:.6g}')
        lines.append(f"{metric}_count {hist.count}")
        lines.append(f"{metric}_sum {hist.sum}")
    for name, fam in telemetry.labeled_counters().items():
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for label, value in sorted(fam.values.items()):
            lines.append(f'{metric}{{key="{label}"}} {value}')
    for name, agg in telemetry.span_aggregates().items():
        metric = _prom_name("span." + name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {int(agg['count'])}")
        lines.append(f"{metric}_sum {agg['total_s']:.6f}")
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------
# human summary + machine summary
# --------------------------------------------------------------------------

def summary_table(telemetry: Telemetry, top_pcs: int = 10) -> str:
    """Fixed-width human summary of spans, metrics, and hot PCs."""
    out: list[str] = []
    agg = telemetry.span_aggregates()
    if agg:
        out.append("spans (wall clock):")
        out.append(f"  {'name':<36} {'count':>6} {'total':>10} "
                   f"{'mean':>10} {'max':>10}")
        for name, entry in sorted(agg.items(),
                                  key=lambda kv: -kv[1]["total_s"]):
            out.append(
                f"  {name:<36} {int(entry['count']):>6} "
                f"{entry['total_s']:>9.3f}s {entry['mean_s']:>9.4f}s "
                f"{entry['max_s']:>9.4f}s")
    counters = telemetry.counters()
    if counters:
        out.append("counters:")
        for name, value in counters.items():
            out.append(f"  {name:<44} {value:>14,}")
    gauges = telemetry.gauges()
    if gauges:
        out.append("gauges:")
        for name, value in gauges.items():
            out.append(f"  {name:<44} {value:>14,.1f}")
    for name, hist in telemetry.histograms().items():
        pct = hist.percentiles()
        out.append(f"histogram {name}: count={hist.count} "
                   f"mean={hist.mean:.2f} min={hist.min} max={hist.max} "
                   f"p50={pct['p50']:.4g} p95={pct['p95']:.4g} "
                   f"p99={pct['p99']:.4g}")
    for name, fam in telemetry.labeled_counters().items():
        top = fam.top(top_pcs)
        if top:
            out.append(f"top {name}:")
            for label, value in top:
                out.append(f"  {label:<44} {value:>14,}")
    if telemetry.spans_dropped:
        out.append(f"(!) {telemetry.spans_dropped} spans dropped "
                   f"past max_spans={telemetry.max_spans}")
    return "\n".join(out) + ("\n" if out else "")


def slo_summary(counters: dict[str, int],
                gauges: dict[str, float]) -> dict[str, float]:
    """Derived service-level indicators from raw counters/gauges.

    Pure arithmetic over already-exported names, so it works identically
    on a live sink (``/stats``), a recorded ``telemetry.json``, or the
    committed baseline; missing counters read as 0 and empty
    denominators yield a rate of 0.0 rather than an error.

    * ``cache_hit_rate`` — artifact-cache hits / (hits + misses); the
      PR-6 "warm-cache hit-rate SLO" follow-on.
    * ``job_error_rate`` — failed+quarantined / jobs that ran to a
      terminal state (done + failed + quarantined).
    * ``job_rejection_rate`` — shed load (queue-full + breaker) /
      submissions.
    * ``breaker_open_duty_cycle`` — fraction of service lifetime the
      circuit breaker spent OPEN (``service.breaker_open_s`` /
      ``service.uptime_s`` gauges).
    * ``sim_trace_cache_hit_rate`` — Tier-1 superblock trace-cache hits
      / lookups (``sim.tier1.trace_cache_hits`` / ``..._misses``); low
      values mean simulation time is going to block formation, not
      block execution.
    """
    def count(name: str) -> float:
        return float(counters.get(name, 0))

    def rate(num: float, den: float) -> float:
        return round(num / den, 6) if den > 0 else 0.0

    hits = count("harness.artifact_cache.hit")
    misses = count("harness.artifact_cache.miss")
    errored = count("service.jobs_failed") + count("service.jobs_quarantined")
    completed = count("service.jobs_done") + errored
    rejected = count("service.jobs_rejected")
    submitted = count("service.jobs_submitted")
    uptime = float(gauges.get("service.uptime_s", 0.0))
    open_s = float(gauges.get("service.breaker_open_s", 0.0))
    trace_hits = count("sim.tier1.trace_cache_hits")
    trace_misses = count("sim.tier1.trace_cache_misses")
    return {
        "cache_hit_rate": rate(hits, hits + misses),
        "job_error_rate": rate(errored, completed),
        "job_rejection_rate": rate(rejected, submitted),
        "breaker_open_duty_cycle": rate(open_s, uptime),
        "sim_trace_cache_hit_rate": rate(trace_hits,
                                         trace_hits + trace_misses),
    }


def summary_dict(telemetry: Telemetry, config: dict | None = None,
                 seed: int | None = None) -> dict:
    """Machine-readable summary — the ``telemetry.json`` /
    ``BENCH_pipeline.json`` payload consumed by the diff CLI."""
    counters = telemetry.counters()
    gauges = telemetry.gauges()
    histograms = {}
    for name, hist in telemetry.histograms().items():
        entry = {"count": hist.count, "sum": hist.sum, "mean": hist.mean,
                 "min": hist.min, "max": hist.max}
        entry.update(hist.percentiles())
        histograms[name] = entry
    return {
        "schema": BENCH_SCHEMA,
        "manifest": run_manifest(config, seed),
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "slo": slo_summary(counters, gauges),
        "spans": telemetry.span_aggregates(),
        "max_span_depth": telemetry.max_span_depth(),
        "spans_recorded": len(telemetry.spans),
        "spans_dropped": telemetry.spans_dropped,
    }


def write_report(telemetry: Telemetry, outdir: Path | str,
                 config: dict | None = None,
                 seed: int | None = None) -> dict[str, Path]:
    """Write every export format into *outdir*; returns name -> path.

    Files written are exactly :data:`REPORT_FILES`.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}

    trace = outdir / "trace.json"
    trace.write_text(json.dumps(to_chrome_trace(telemetry)) + "\n")
    paths["trace.json"] = trace

    events = outdir / "events.jsonl"
    events.write_text(to_jsonl(telemetry))
    paths["events.jsonl"] = events

    prom = outdir / "metrics.prom"
    prom.write_text(to_prometheus(telemetry))
    paths["metrics.prom"] = prom

    summary = outdir / "summary.txt"
    summary.write_text(summary_table(telemetry))
    paths["summary.txt"] = summary

    payload = summary_dict(telemetry, config, seed)
    manifest = outdir / "manifest.json"
    manifest.write_text(json.dumps(payload["manifest"], indent=2,
                                   sort_keys=True) + "\n")
    paths["manifest.json"] = manifest

    machine = outdir / "telemetry.json"
    machine.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    paths["telemetry.json"] = machine
    return paths
