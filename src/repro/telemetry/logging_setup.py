"""Shared structured-logging setup for every repro CLI.

One format, one knob set (``--log-level``/``--quiet``), everywhere:

    2026-08-06T12:00:01Z INFO  repro.harness: suite run started (21 benchmarks)

Diagnostic chatter that used to be ad-hoc ``print(..., file=sys.stderr)``
calls goes through ``logging`` under the ``repro`` namespace so users can
silence (``--quiet``) or amplify (``--log-level debug``) it uniformly.
Report *output* (tables, program stdout) stays on stdout untouched —
logging is for diagnostics, not results.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

__all__ = ["setup_logging", "add_logging_args",
           "configure_from_args", "get_logger"]

_LEVELS = ("debug", "info", "warning", "error")


class _UTCFormatter(logging.Formatter):
    converter = staticmethod(time.gmtime)

    def formatTime(self, record, datefmt=None):  # noqa: N802 (stdlib API)
        return time.strftime("%Y-%m-%dT%H:%M:%SZ",
                             self.converter(record.created))


def setup_logging(level: str = "info", quiet: bool = False,
                  stream=None) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree and return its root.

    *quiet* raises the bar to ERROR regardless of *level*.  Idempotent:
    repeated calls replace the handler instead of stacking duplicates.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {', '.join(_LEVELS)}")
    logger = logging.getLogger("repro")
    effective = logging.ERROR if quiet else getattr(logging, level.upper())
    logger.setLevel(effective)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(_UTCFormatter(
        "%(asctime)s %(levelname)-5s %(name)s: %(message)s"))
    for old in list(logger.handlers):
        logger.removeHandler(old)
    logger.addHandler(handler)
    # keep propagation on: the root logger normally has no handlers (so
    # nothing duplicates), and test harnesses / host applications that do
    # install root handlers still observe our records
    logger.propagate = True
    return logger


def add_logging_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--log-level`` / ``--quiet`` flags."""
    group = parser.add_argument_group("logging")
    group.add_argument("--log-level", choices=_LEVELS, default="info",
                       help="diagnostic verbosity (default: info)")
    group.add_argument("--quiet", action="store_true",
                       help="suppress diagnostics below ERROR")


def configure_from_args(args: argparse.Namespace) -> logging.Logger:
    """Call :func:`setup_logging` from parsed CLI args."""
    return setup_logging(level=getattr(args, "log_level", "info"),
                         quiet=getattr(args, "quiet", False))


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
