"""Perf-trajectory baselines: load, validate, and diff telemetry summaries.

``BENCH_pipeline.json`` (committed at the repo root) is a
:data:`~repro.telemetry.export.BENCH_SCHEMA` summary of a small reference
pipeline run.  :func:`diff_reports` compares two such summaries and flags
wall-clock regressions: a span whose ``total_s`` grew by at least
``threshold`` (fractional; 0.20 = 20% slower), a throughput gauge
(any name containing ``_per_sec``, e.g. the per-tier
``sim.instructions_per_sec.tier0/.tier1`` pair recorded by
``python -m repro.bench sim``) that dropped by at least the same
fraction, or a latency
histogram (name ending ``_s``/``_seconds``) whose p95 tail grew past it.

Spans shorter than *min_seconds* in the baseline are ignored — timer noise
on sub-millisecond phases is not a regression signal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.export import BENCH_SCHEMA

__all__ = ["MalformedReport", "Regression", "DiffResult",
           "load_report", "diff_reports"]


class MalformedReport(ValueError):
    """The file is not a valid telemetry summary."""


@dataclass
class Regression:
    """One flagged slowdown between baseline and current."""

    kind: str         #: "span", "gauge", or "histogram" (p95 tail)
    name: str
    baseline: float
    current: float
    ratio: float      #: current/baseline for spans, baseline/current for gauges

    def describe(self) -> str:
        unit = "/s" if self.kind == "gauge" else "s"
        label = f"{self.kind} {self.name}"
        if self.kind == "histogram":
            label += " p95"
        return (f"{label}: {self.baseline:.4f}{unit} -> "
                f"{self.current:.4f}{unit} ({(self.ratio - 1) * 100:+.1f}%)")


@dataclass
class DiffResult:
    """Outcome of comparing two telemetry summaries."""

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    compared_spans: int = 0
    compared_gauges: int = 0
    compared_histograms: int = 0
    missing_in_current: list[str] = field(default_factory=list)
    manifest_mismatch: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self, threshold: float) -> str:
        lines = [f"compared {self.compared_spans} spans, "
                 f"{self.compared_gauges} gauges, "
                 f"{self.compared_histograms} histogram tails "
                 f"(threshold {threshold * 100:.0f}%)"]
        for note in self.manifest_mismatch:
            lines.append(f"note: {note}")
        for name in self.missing_in_current:
            lines.append(f"note: series {name!r} missing from current run")
        for reg in self.regressions:
            lines.append(f"REGRESSION {reg.describe()}")
        for imp in self.improvements:
            lines.append(f"improved {imp.describe()}")
        lines.append("RESULT: " + ("ok" if self.ok else
                                   f"{len(self.regressions)} regression(s)"))
        return "\n".join(lines)


def load_report(path: Path | str) -> dict:
    """Load and validate one telemetry summary JSON.

    Raises :class:`MalformedReport` on anything that is not a
    well-formed :data:`BENCH_SCHEMA` document — the CI smoke job depends
    on this to catch corrupted exports.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise MalformedReport(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MalformedReport(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise MalformedReport(f"{path}: top level must be an object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise MalformedReport(
            f"{path}: schema {payload.get('schema')!r}, "
            f"expected {BENCH_SCHEMA!r}")
    for key, kind in (("counters", dict), ("gauges", dict),
                      ("spans", dict), ("manifest", dict)):
        if not isinstance(payload.get(key), kind):
            raise MalformedReport(f"{path}: missing or invalid {key!r}")
    for name, entry in payload["spans"].items():
        if not isinstance(entry, dict) or "total_s" not in entry:
            raise MalformedReport(
                f"{path}: span {name!r} lacks 'total_s'")
    # "histograms" arrived with the percentile work — absent in older
    # baselines, so optional; but if present it must be well-formed
    histograms = payload.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            raise MalformedReport(f"{path}: invalid 'histograms'")
        for name, entry in histograms.items():
            if not isinstance(entry, dict):
                raise MalformedReport(
                    f"{path}: histogram {name!r} must be an object")
    return payload


def diff_reports(baseline: dict, current: dict,
                 threshold: float = 0.20,
                 min_seconds: float = 0.005) -> DiffResult:
    """Compare two loaded summaries; see the module docstring."""
    result = DiffResult()

    base_m, cur_m = baseline.get("manifest", {}), current.get("manifest", {})
    for key in ("config_hash", "python", "machine"):
        if base_m.get(key) != cur_m.get(key):
            result.manifest_mismatch.append(
                f"manifest {key} differs "
                f"({base_m.get(key)!r} vs {cur_m.get(key)!r})")

    for name, base_entry in baseline["spans"].items():
        base_total = float(base_entry["total_s"])
        cur_entry = current["spans"].get(name)
        if cur_entry is None:
            result.missing_in_current.append(name)
            continue
        if base_total < min_seconds:
            continue
        result.compared_spans += 1
        cur_total = float(cur_entry["total_s"])
        ratio = cur_total / base_total if base_total > 0 else float("inf")
        record = Regression("span", name, base_total, cur_total, ratio)
        if ratio >= 1.0 + threshold:
            result.regressions.append(record)
        elif ratio <= 1.0 - threshold:
            result.improvements.append(record)

    # Tail-latency gating: p95 on duration histograms (both reports must
    # carry the histogram — older baselines without "histograms" simply
    # compare zero tails).  Only seconds-shaped names are compared; size
    # histograms regressing is not a latency signal.
    for name, base_entry in (baseline.get("histograms") or {}).items():
        if not (name.endswith("_s") or name.endswith("_seconds")):
            continue
        cur_entry = (current.get("histograms") or {}).get(name)
        if cur_entry is None:
            result.missing_in_current.append(name)
            continue
        base_p95 = float(base_entry.get("p95", 0.0))
        cur_p95 = float(cur_entry.get("p95", 0.0))
        if base_p95 < min_seconds:
            continue
        result.compared_histograms += 1
        ratio = cur_p95 / base_p95
        record = Regression("histogram", name, base_p95, cur_p95, ratio)
        if ratio >= 1.0 + threshold:
            result.regressions.append(record)
        elif ratio <= 1.0 - threshold:
            result.improvements.append(record)

    for name, base_value in baseline["gauges"].items():
        # throughput gauges: "*_per_sec" plus tier-suffixed variants like
        # "sim.instructions_per_sec.tier1" (the sim micro-benchmark)
        if "_per_sec" not in name or base_value <= 0:
            continue
        cur_value = current["gauges"].get(name)
        if cur_value is None or cur_value <= 0:
            continue
        result.compared_gauges += 1
        ratio = float(base_value) / float(cur_value)  # >1 means slower now
        record = Regression("gauge", name, float(base_value),
                            float(cur_value), ratio)
        if ratio >= 1.0 + threshold:
            result.regressions.append(record)
        elif ratio <= 1.0 - threshold:
            result.improvements.append(record)

    return result
