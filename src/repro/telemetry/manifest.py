"""Run manifests: provenance stamped next to every telemetry report.

A manifest answers "what exactly produced these numbers?" — git commit,
interpreter, platform, seed, and a stable hash of the run configuration —
so two ``BENCH_pipeline.json`` files can be compared knowing whether the
code or only the machine changed.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["config_hash", "run_manifest", "write_manifest"]

MANIFEST_SCHEMA = "repro.telemetry.manifest/v1"


def config_hash(config: dict) -> str:
    """Stable short hash of a JSON-serializable configuration dict."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _git_sha() -> str | None:
    """Best-effort current commit; None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_manifest(config: dict | None = None,
                 seed: int | None = None) -> dict:
    """Build the provenance manifest for the current process/run.

    *config* is whatever dict describes the run (CLI flags, benchmark
    subset, fuel budget); its stable hash lands in ``config_hash`` so
    reports from differently-configured runs are never silently diffed.
    """
    config = config or {}
    return {
        "schema": MANIFEST_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "seed": seed,
        "config": config,
        "config_hash": config_hash(config),
    }


def write_manifest(path: Path | str, config: dict | None = None,
                   seed: int | None = None) -> dict:
    """Write a manifest JSON to *path* and return it."""
    manifest = run_manifest(config, seed)
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")
    return manifest
