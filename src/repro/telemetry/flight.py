"""Flight recorder: an always-on, lock-free black box of recent events.

Metrics tell you *how often* things happen; the flight recorder tells
you *what just happened* — the last-N structured events (job state
transitions, crash redispatches, lease steals, breaker flips, worker
respawns) leading up to a failure.  When a worker dies, a job is
quarantined, or a deadline kill fires, the ring is dumped into the
:class:`~repro.errors.CrashReport` / error context so every failure
ships its own black box.

Design constraints, in order:

1. **Always on.**  Unlike :mod:`repro.telemetry.core` (opt-in sink),
   the recorder defaults to a live 256-slot ring.  That only works if
   recording is near-free, hence:
2. **Lock-free.**  One ``itertools.count()`` draw (a single atomic C
   call under the GIL) claims a sequence number; ``slots[seq % cap]``
   stores the event.  No lock, no allocation beyond the event tuple,
   no I/O.  Concurrent writers may interleave arbitrarily — :func:`dump`
   reorders by sequence number, and a torn slot (overwritten while
   dumping) is simply dropped rather than blocking a writer.
3. **Bounded.**  The ring never grows; old events fall off the end.
   ``capacity=0`` disables recording entirely (used by the overhead
   guard-rail test as the baseline arm).

Like the telemetry sink, the recorder is per-process: forked workers
get a copy-on-write ring that diverges from the parent's, which is what
you want — a worker's black box describes *that worker's* last moments,
and :class:`~repro.errors.ReproError` carries the dump back across the
process boundary as plain dicts.
"""

from __future__ import annotations

import itertools
import time
from typing import Any

from repro.telemetry import tracing

__all__ = ["FlightRecorder", "FlightEvent", "get", "install", "record", "dump"]

DEFAULT_CAPACITY = 256

#: events attached to an error are trimmed to this many (wire-size cap)
ATTACH_LIMIT = 32


class FlightEvent:
    """One recorded event: ``(seq, ts, kind, trace_id, fields)``.

    A plain ``__slots__`` class (not a dataclass) to keep the record
    path allocation-light.
    """

    __slots__ = ("seq", "ts", "kind", "trace_id", "fields")

    def __init__(self, seq: int, ts: float, kind: str, trace_id: str,
                 fields: dict[str, Any]):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.trace_id = trace_id
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"seq": self.seq, "ts": round(self.ts, 6),
                               "kind": self.kind}
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.fields:
            out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightEvent({self.to_dict()!r})"


class FlightRecorder:
    """Bounded lock-free ring of :class:`FlightEvent`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._seq = itertools.count()
        self._slots: list[FlightEvent | None] = [None] * capacity

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, kind: str, trace_id: str = "", **fields: Any) -> None:
        """Record one event.  Lock-free: safe from any thread; callers
        never block on each other.  When *trace_id* is empty the active
        :mod:`~repro.telemetry.tracing` context (if any) is used, so
        call sites inside a traced job need not thread the id through.
        """
        if self.capacity == 0:
            return
        if not trace_id:
            ctx = tracing.current()
            if ctx is not None:
                trace_id = ctx.trace_id
        seq = next(self._seq)
        self._slots[seq % self.capacity] = FlightEvent(
            seq, time.time(), kind, trace_id, fields)

    def dump(self) -> list[dict[str, Any]]:
        """The ring's current contents as dicts, oldest first.

        Reads race with writers by design: an event overwritten
        mid-dump shows up as its replacement (higher seq) or not at
        all — never as a torn record, because slot stores are atomic
        list-item assignments.
        """
        events = [e for e in self._slots if e is not None]
        events.sort(key=lambda e: e.seq)
        return [e.to_dict() for e in events]

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for e in self._slots if e is not None)


# --------------------------------------------------------------------------
# module seam (mirrors repro.telemetry.get/install, but default-enabled)
# --------------------------------------------------------------------------

_recorder = FlightRecorder()


def get() -> FlightRecorder:
    """The process-wide flight recorder (always-on by default)."""
    return _recorder


def install(recorder: FlightRecorder) -> FlightRecorder:
    """Replace the process-wide recorder; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def record(kind: str, trace_id: str = "", **fields: Any) -> None:
    """Record on the process-wide ring (module-level convenience)."""
    _recorder.record(kind, trace_id=trace_id, **fields)


def dump() -> list[dict[str, Any]]:
    """Dump the process-wide ring (module-level convenience)."""
    return _recorder.dump()
