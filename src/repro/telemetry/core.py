"""Telemetry core: metric registry + hierarchical wall-clock spans.

Design constraints (see docs/observability.md):

* **Single injection seam.**  Every instrumented layer obtains its
  telemetry sink via :func:`repro.telemetry.get`, which returns the
  process-wide active :class:`Telemetry` — by default a *disabled*
  instance whose recording methods are no-ops.  Nothing in the pipeline
  constructs its own sink, so one :func:`install` (or the ``use()``
  context manager) turns the whole compile → assemble → simulate →
  analyze pipeline observable at once.

* **No-op default, hot-loop safe.**  A disabled :class:`Telemetry`
  records nothing and allocates nothing per event.  Hot paths (the
  simulator dispatch loop) additionally *batch*: they accumulate plain
  local integers and publish once per run, so the disabled-mode cost on
  the per-instruction path is zero telemetry calls (enforced by
  ``tests/test_telemetry_overhead.py``).

* **Thread safety.**  The registry and all metric mutations take a
  single re-entrant lock; the span stack is thread-local, so concurrent
  runners produce correctly-nested spans per thread.

Metric name convention: dotted lowercase paths (``sim.instructions``,
``harness.cache.hit``).  Exporters map them to each format's own
conventions (Prometheus: dots become underscores under a ``repro_``
namespace).
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro.telemetry import tracing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "LabeledCounter",
    "SpanRecord",
    "Telemetry",
    "TelemetrySnapshot",
    "get",
    "install",
    "use",
]


# --------------------------------------------------------------------------
# metric instruments
# --------------------------------------------------------------------------

class Counter:
    """Monotonically increasing count (events, cache hits, retries)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-value metric (instructions/sec, memory pages)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


#: sentinel bucket for observations <= 0 (sorts below every real bucket)
_ZERO_BUCKET = -1074


def _bucket_index(value: float) -> int:
    """Log2 bucket for *value*: bucket *j* holds ``2**(j-1) < v <= 2**j``.

    ``math.frexp`` gives ``value = m * 2**e`` with ``0.5 <= m < 1``, so
    the bucket is ``e`` — except exact powers of two (``m == 0.5``),
    which sit on the closed upper edge of bucket ``e - 1``.  Negative
    indices cover fractions (bucket -1 = (0.25, 0.5], ...), which is
    what makes sub-second latencies distinguishable.
    """
    if value <= 0:
        return _ZERO_BUCKET
    m, e = math.frexp(value)
    return e - 1 if m == 0.5 else e


def _bucket_edges(index: int) -> tuple[float, float]:
    if index <= _ZERO_BUCKET:
        return (0.0, 0.0)
    return (math.ldexp(1.0, index - 1), math.ldexp(1.0, index))


def _estimate_percentiles(count: int, minimum: float | None,
                          maximum: float | None, buckets: dict[int, int],
                          qs: tuple[float, ...] = (0.5, 0.95, 0.99),
                          ) -> dict[str, float]:
    """Percentile estimates from a log2-bucketed distribution.

    Walks the cumulative bucket counts to the target rank, then
    interpolates linearly inside the landing bucket ``(2**(j-1), 2**j]``
    and clamps to the exact observed ``[min, max]`` — so a single-sample
    histogram reports that sample for every quantile, and estimates can
    never leave the observed range.  Worst-case bucket-shape error is
    2× (one bucket spans a factor of two), which is plenty for tail
    *gating* (a real p95 regression moves buckets, not fractions).
    """
    out: dict[str, float] = {}
    ordered = sorted(buckets.items())
    lo_clamp = minimum if minimum is not None else 0.0
    hi_clamp = maximum if maximum is not None else 0.0
    for q in qs:
        key = f"p{q * 100:g}"
        if count <= 0 or not ordered:
            out[key] = 0.0
            continue
        rank = q * count
        cum = 0
        estimate = hi_clamp
        for index, n in ordered:
            cum += n
            if cum >= rank and n > 0:
                lo, hi = _bucket_edges(index)
                frac = (rank - (cum - n)) / n
                estimate = lo + frac * (hi - lo)
                break
        out[key] = min(max(estimate, lo_clamp), hi_clamp)
    return out


class Histogram:
    """Distribution of observed values in power-of-two buckets.

    Tracks ``count``/``sum``/``min``/``max`` exactly and the shape in
    log2 buckets (bucket *j* holds values ``v`` with ``2**(j-1) < v <=
    2**j``; negative *j* covers fractions, so sub-second durations keep
    their shape; ``v <= 0`` collapses into a sentinel bottom bucket).
    Cheap enough for per-phase durations and per-function sizes; not
    meant for per-instruction use.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}
        self._lock = lock

    def observe(self, value: float, n: int = 1) -> None:
        """Record *value*; *n* > 1 records it *n* times in one locked
        update (bulk path for per-run aggregates like superblock
        residency, where one length is observed thousands of times)."""
        with self._lock:
            self.count += n
            self.sum += value * n
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            bucket = _bucket_index(value)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99),
                    ) -> dict[str, float]:
        """Estimated quantiles (``{"p50": ..., "p95": ..., "p99": ...}``);
        see :func:`_estimate_percentiles` for accuracy bounds."""
        with self._lock:
            return _estimate_percentiles(self.count, self.min, self.max,
                                         dict(self.buckets), qs)


class LabeledCounter:
    """A family of counters keyed by one label value (e.g. the sampled
    hot-PC histogram ``sim.hot_pc{pc="0x400120"}``)."""

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self.values: dict[str, int] = {}
        self._lock = lock

    def inc(self, label: str, amount: int = 1) -> None:
        with self._lock:
            self.values[label] = self.values.get(label, 0) + amount

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The *n* largest (label, count) pairs, descending."""
        with self._lock:
            items = sorted(self.values.items(),
                           key=lambda kv: kv[1], reverse=True)
        return items[:n]


# --------------------------------------------------------------------------
# spans
# --------------------------------------------------------------------------

@dataclass
class SpanRecord:
    """One completed wall-clock span."""

    name: str                     #: e.g. ``"bcc.parse"``
    category: str                 #: coarse grouping (``compile``/``sim``/...)
    start_us: int                 #: microseconds since telemetry epoch
    duration_us: int
    span_id: int
    parent_id: int                #: 0 = root
    depth: int                    #: 1 = root span
    thread_id: int
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.duration_us / 1e6


class _NullContext:
    """Reusable no-op context manager for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _NullCounter:
    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0
    buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        pass

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99),
                    ) -> dict[str, float]:
        return {f"p{q * 100:g}": 0.0 for q in qs}


class _NullLabeledCounter:
    __slots__ = ()
    name = "<disabled>"
    values: dict[str, int] = {}

    def inc(self, label: str, amount: int = 1) -> None:
        pass

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        return []


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_LABELED = _NullLabeledCounter()


# --------------------------------------------------------------------------
# mergeable snapshots (the parallel harness's shard-result currency)
# --------------------------------------------------------------------------

@dataclass
class HistogramState:
    """Plain-data image of one :class:`Histogram` (picklable, lock-free)."""

    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None
    buckets: dict[int, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99),
                    ) -> dict[str, float]:
        """Estimated quantiles; same math as :meth:`Histogram.percentiles`."""
        return _estimate_percentiles(self.count, self.min, self.max,
                                     self.buckets, qs)


@dataclass
class TelemetrySnapshot:
    """A picklable, *mergeable* image of one :class:`Telemetry` sink.

    This is how parallel shard workers report telemetry back to the
    parent process: the worker records into its own private sink, calls
    :meth:`Telemetry.snapshot` at the end of the job, and ships the
    snapshot (plain dataclasses all the way down — no locks, no thread
    state) inside its result.  The parent folds every shard into its own
    sink with :meth:`Telemetry.merge_snapshot`, which sums counters,
    peak-merges gauges, pointwise-adds histograms, and re-parents the
    shard's span forest under whatever span is currently open (the
    harness opens a ``parallel:shard`` span per worker result).
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramState] = field(default_factory=dict)
    labeled: dict[str, dict[str, int]] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    spans_dropped: int = 0

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms
                    or self.labeled or self.spans)


# --------------------------------------------------------------------------
# the registry
# --------------------------------------------------------------------------

class Telemetry:
    """Thread-safe registry of metrics plus hierarchical spans.

    Parameters
    ----------
    enabled:
        ``False`` produces a *disabled* sink: every recording method is a
        no-op returning shared null instruments, and ``span()`` yields a
        shared null context manager.  This is the process default.
    max_spans:
        Memory bound on recorded spans; past it new spans are dropped
        (counted in ``telemetry.spans_dropped``) rather than growing
        without bound.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.epoch = perf_counter()
        self.spans: list[SpanRecord] = []
        self.spans_dropped = 0
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._next_span_id = 1

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._lock)
        return metric

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._lock)
        return metric

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, self._lock)
        return metric

    def labeled_counter(self, name: str) -> LabeledCounter:
        if not self.enabled:
            return _NULL_LABELED
        with self._lock:
            metric = self._labeled.get(name)
            if metric is None:
                metric = self._labeled[name] = LabeledCounter(name, self._lock)
        return metric

    # -- spans -------------------------------------------------------------

    def _stack(self) -> list[tuple[int, int]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    @contextmanager
    def _span_cm(self, name: str, category: str, args: dict):
        stack = self._stack()
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        parent_id = stack[-1][0] if stack else 0
        depth = len(stack) + 1
        stack.append((span_id, depth))
        start = perf_counter()
        try:
            yield
        finally:
            end = perf_counter()
            stack.pop()
            # Tag spans recorded under an active distributed-trace context
            # with its trace_id: merge_snapshot copies span args verbatim,
            # so the tag survives the worker→parent snapshot merge and the
            # trace can be re-stitched across process boundaries.
            ctx = tracing.current()
            if ctx is not None:
                args = {**args, "trace_id": ctx.trace_id}
            record = SpanRecord(
                name=name, category=category,
                start_us=int((start - self.epoch) * 1e6),
                duration_us=int((end - start) * 1e6),
                span_id=span_id, parent_id=parent_id, depth=depth,
                thread_id=threading.get_ident(), args=args)
            with self._lock:
                if len(self.spans) < self.max_spans:
                    self.spans.append(record)
                else:
                    self.spans_dropped += 1

    def span(self, name: str, category: str = "pipeline", **args):
        """Context manager timing one hierarchical wall-clock span.

        Nesting is tracked per thread; exporters reconstruct the tree
        from ``parent_id``/``depth``.  ``**args`` become span attributes
        (Chrome trace ``args``, JSONL fields).
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return self._span_cm(name, category, args)

    # -- introspection -----------------------------------------------------

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def labeled_counters(self) -> dict[str, LabeledCounter]:
        with self._lock:
            return dict(sorted(self._labeled.items()))

    def span_aggregates(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregates: count, total/mean/max seconds."""
        with self._lock:
            spans = list(self.spans)
        agg: dict[str, dict[str, float]] = {}
        for span in spans:
            entry = agg.setdefault(span.name, {
                "count": 0, "total_s": 0.0, "max_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration_s
            entry["max_s"] = max(entry["max_s"], span.duration_s)
        for entry in agg.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return dict(sorted(agg.items()))

    def max_span_depth(self) -> int:
        with self._lock:
            return max((s.depth for s in self.spans), default=0)

    # -- snapshots / merging -----------------------------------------------

    def current_span_id(self) -> int:
        """Id of the innermost open span on this thread (0 = none)."""
        stack = self._stack()
        return stack[-1][0] if stack else 0

    def _current_depth(self) -> int:
        stack = self._stack()
        return stack[-1][1] if stack else 0

    def snapshot(self) -> TelemetrySnapshot:
        """A picklable, mergeable image of this sink's current state.

        Disabled sinks return an empty snapshot.  The image is deep
        enough that later mutation of this sink never leaks into it.
        """
        if not self.enabled:
            return TelemetrySnapshot()
        with self._lock:
            return TelemetrySnapshot(
                counters={n: c.value for n, c in
                          sorted(self._counters.items())},
                gauges={n: g.value for n, g in sorted(self._gauges.items())},
                histograms={
                    n: HistogramState(h.count, h.sum, h.min, h.max,
                                      dict(h.buckets))
                    for n, h in sorted(self._histograms.items())},
                labeled={n: dict(lc.values) for n, lc in
                         sorted(self._labeled.items())},
                spans=list(self.spans),
                spans_dropped=self.spans_dropped,
            )

    def merge_snapshot(self, snapshot: TelemetrySnapshot,
                       start_offset_us: int = 0) -> None:
        """Fold a worker *snapshot* into this sink (deterministically).

        * counters and labeled counters are **summed**;
        * gauges are **peak-merged** (``max``), so merge order across
          shards cannot change the result;
        * histograms are pointwise-added (count/sum/buckets summed,
          min/max widened);
        * spans get fresh ids and are **re-parented**: snapshot roots
          (``parent_id == 0``) become children of the innermost span
          currently open on this thread, depths shift accordingly, and
          every start time is displaced by *start_offset_us* (the
          parent-clock offset of the shard — worker spans are recorded
          against the worker's own epoch).

        No-op on a disabled sink.
        """
        if not self.enabled:
            return
        for name, value in sorted(snapshot.counters.items()):
            self.counter(name).inc(value)
        for name, value in sorted(snapshot.gauges.items()):
            gauge = self.gauge(name)
            with self._lock:
                gauge.value = max(gauge.value, float(value))
        for name, state in sorted(snapshot.histograms.items()):
            histogram = self.histogram(name)
            with self._lock:
                histogram.count += state.count
                histogram.sum += state.sum
                for bound in (state.min, ):
                    if bound is not None and (histogram.min is None
                                              or bound < histogram.min):
                        histogram.min = bound
                for bound in (state.max, ):
                    if bound is not None and (histogram.max is None
                                              or bound > histogram.max):
                        histogram.max = bound
                for bucket, count in sorted(state.buckets.items()):
                    histogram.buckets[bucket] = (
                        histogram.buckets.get(bucket, 0) + count)
        for name, values in sorted(snapshot.labeled.items()):
            labeled = self.labeled_counter(name)
            for label, count in sorted(values.items()):
                labeled.inc(label, count)
        if snapshot.spans:
            parent = self.current_span_id()
            depth_shift = self._current_depth()
            with self._lock:
                base = self._next_span_id
                self._next_span_id += len(snapshot.spans)
            id_map = {record.span_id: base + i
                      for i, record in enumerate(snapshot.spans)}
            for record in snapshot.spans:
                adopted = SpanRecord(
                    name=record.name, category=record.category,
                    start_us=record.start_us + start_offset_us,
                    duration_us=record.duration_us,
                    span_id=id_map[record.span_id],
                    parent_id=id_map.get(record.parent_id, parent),
                    depth=record.depth + depth_shift,
                    thread_id=record.thread_id,
                    args=dict(record.args))
                with self._lock:
                    if len(self.spans) < self.max_spans:
                        self.spans.append(adopted)
                    else:
                        self.spans_dropped += 1
        with self._lock:
            self.spans_dropped += snapshot.spans_dropped


# --------------------------------------------------------------------------
# the injection seam
# --------------------------------------------------------------------------

_DISABLED = Telemetry(enabled=False)
_active = _DISABLED
_seam_lock = threading.Lock()


def get() -> Telemetry:
    """The process-wide active telemetry sink (disabled no-op by default).

    This is the single seam every instrumented layer goes through; see
    the module docstring.
    """
    return _active


def install(telemetry: Telemetry | None) -> Telemetry:
    """Install *telemetry* as the active sink (``None`` restores the
    disabled default); returns the previously active sink."""
    global _active
    with _seam_lock:
        previous = _active
        _active = telemetry if telemetry is not None else _DISABLED
    return previous


@contextmanager
def use(telemetry: Telemetry):
    """Scoped :func:`install`: active within the ``with`` block only."""
    previous = install(telemetry)
    try:
        yield telemetry
    finally:
        install(previous)
