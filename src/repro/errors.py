"""Unified error taxonomy for the reproduction pipeline.

Every failure anywhere in the compile -> analyze -> simulate -> report
pipeline is (or is converted into) a :class:`ReproError`.  The base class
carries *structured* diagnostic context — which benchmark and dataset were
running, which pipeline phase failed, the faulting pc and instruction count —
so the harness can classify failures by machine instead of by parsing
message strings.  Simulator-side errors additionally carry a
:class:`CrashReport` snapshot (registers, reconstructed call stack, recent
branch outcomes) for post-mortem debugging.

Hierarchy::

    ReproError                      # base; every pipeline failure
    ├── CompileError                # repro.bcc front/back-end (phase=compile)
    ├── AssemblerError              # repro.isa assembler (phase=assemble)
    ├── SimulationError             # repro.sim faults (phase=simulate)
    │   ├── SimulationLimitExceeded # instruction-fuel budget exhausted
    │   ├── SimulationTimeout       # wall-clock watchdog deadline passed
    │   ├── InputExhausted          # a read syscall starved
    │   └── MemoryError_            # bad/misaligned access, page budget
    ├── WorkerError                 # parallel harness (phase=parallel)
    │   ├── WorkerCrashError        # shard process died without a result
    │   └── WorkerResultError       # shard returned an unusable result
    ├── CacheLockError              # shared-store locking (phase=cache)
    └── ServiceError                # prediction service (phase=service)
        ├── JobRejectedError        # breaker open / queue full: load shed
        ├── JobQuarantinedError     # poison job isolated after crashes
        └── JobDeadlineError        # service deadline passed; worker killed

``CompileError`` and ``AssemblerError`` keep their historical homes
(:mod:`repro.bcc.errors`, :mod:`repro.isa.assembler`) and subclass
:class:`ReproError` from there; the simulator errors are defined here and
re-exported from :mod:`repro.sim` for backwards compatibility.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "ReproError",
    "CrashReport",
    "CallFrame",
    "SimulationError",
    "SimulationLimitExceeded",
    "SimulationTimeout",
    "InputExhausted",
    "MemoryError_",
    "WorkerError",
    "WorkerCrashError",
    "WorkerResultError",
    "CacheLockError",
    "ServiceError",
    "JobRejectedError",
    "JobQuarantinedError",
    "JobDeadlineError",
    "PHASES",
]

#: Pipeline phases a failure can be attributed to.
PHASES = ("compile", "verify", "assemble", "link", "analyze", "simulate",
          "parallel", "cache", "service", "report")

#: Structured context slots every ReproError carries.
CONTEXT_FIELDS = ("benchmark", "dataset", "phase", "pc", "instr_count")


@dataclass
class CallFrame:
    """One reconstructed frame of the simulated call stack."""

    callee: str           #: procedure name (or hex address if unresolvable)
    call_site: int        #: address of the ``jal``/``jalr`` instruction
    return_address: int   #: where the callee will return to

    def format(self) -> str:
        return (f"{self.callee} (called from 0x{self.call_site:x}, "
                f"returns to 0x{self.return_address:x})")


@dataclass
class CrashReport:
    """Post-mortem snapshot of a :class:`~repro.sim.Machine` at fault time.

    Attached to the raised :class:`ReproError` by ``Machine.run`` so that a
    harness catching the error can log *where* and *in what state* the
    simulated program died without re-running it.
    """

    pc: int                                   #: faulting pc (text address)
    instruction: str                          #: disassembly of the faulting inst
    instr_count: int                          #: instructions retired at fault
    registers: list[int] = field(default_factory=list)
    fp_registers: list[float] = field(default_factory=list)
    call_stack: list[CallFrame] = field(default_factory=list)
    #: last N conditional-branch outcomes, oldest first: (address, taken)
    branch_history: list[tuple[int, bool]] = field(default_factory=list)
    output_tail: str = ""                     #: tail of program output at fault
    #: flight-recorder dump at fault time: the last-N structured events
    #: (state transitions, retries, lease steals...) as plain dicts — the
    #: process's black box, not just the simulated machine's
    flight: list[dict] = field(default_factory=list)

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"crash at pc=0x{self.pc:x}: {self.instruction}",
            f"  instructions retired: {self.instr_count}",
        ]
        if self.call_stack:
            lines.append("  call stack (innermost first):")
            for frame in reversed(self.call_stack):
                lines.append(f"    {frame.format()}")
        if self.branch_history:
            hist = " ".join(f"0x{a:x}:{'T' if t else 'N'}"
                            for a, t in self.branch_history[-8:])
            lines.append(f"  recent branches: {hist}")
        if self.registers:
            regs = ", ".join(f"r{i}={v}" for i, v in
                             enumerate(self.registers) if v)
            lines.append(f"  registers: {regs or '(all zero)'}")
        if self.output_tail:
            lines.append(f"  output tail: {self.output_tail!r}")
        if self.flight:
            lines.append(f"  flight recorder (last {len(self.flight)} "
                         f"events, oldest first):")
            for event in self.flight[-8:]:
                fields = " ".join(f"{k}={v}" for k, v in event.items()
                                  if k not in ("seq", "ts", "kind"))
                lines.append(f"    [{event.get('seq', '?')}] "
                             f"{event.get('kind', '?')} {fields}".rstrip())
        return "\n".join(lines)


_CAMEL_RE = re.compile(r"(?<!^)(?=[A-Z])")


class ReproError(Exception):
    """Base class for every pipeline failure, with structured context.

    Parameters other than *message* are keyword-only structured context;
    any of them may be left ``None`` and filled in later (e.g. the harness
    annotates ``benchmark``/``dataset`` when it catches an error raised deep
    inside the simulator) via :meth:`with_context`.
    """

    #: default pipeline phase, overridden per subclass / instance
    phase: str | None = None

    def __init__(self, message: str, *, benchmark: str | None = None,
                 dataset: str | None = None, phase: str | None = None,
                 pc: int | None = None,
                 instr_count: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.benchmark = benchmark
        self.dataset = dataset
        if phase is not None:
            self.phase = phase
        self.pc = pc
        self.instr_count = instr_count
        self.crash_report: CrashReport | None = None
        self.flight: list[dict] | None = None

    # -- classification --------------------------------------------------------

    @property
    def code(self) -> str:
        """Stable machine-readable identifier, e.g. ``simulation-timeout``."""
        name = type(self).__name__.rstrip("_")
        return _CAMEL_RE.sub("-", name).lower()

    # -- context ---------------------------------------------------------------

    def with_context(self, **context) -> "ReproError":
        """Fill in any *unset* context fields (never overwrites) and return
        ``self`` so callers can ``raise exc.with_context(...)``."""
        for key, value in context.items():
            if key not in CONTEXT_FIELDS:
                raise TypeError(f"unknown context field {key!r}")
            if value is not None and getattr(self, key, None) is None:
                setattr(self, key, value)
        return self

    def attach_crash_report(self, report: CrashReport) -> "ReproError":
        """Attach a post-mortem snapshot (first one wins) and absorb its
        pc / instruction count into the structured context."""
        if self.crash_report is None:
            self.crash_report = report
            self.with_context(pc=report.pc, instr_count=report.instr_count)
        return self

    def attach_flight(self, events: list[dict],
                      limit: int = 32) -> "ReproError":
        """Attach a flight-recorder dump (first one wins, trimmed to the
        last *limit* events so wire/pickle size stays bounded).  Plain
        dicts only — the error pickles across process boundaries."""
        if self.flight is None and events:
            self.flight = [dict(e) for e in events[-limit:]]
        return self

    # -- rendering -------------------------------------------------------------

    def to_dict(self) -> dict:
        """Machine-classifiable summary (no crash-report payload; the
        flight-recorder dump rides along when one was attached)."""
        out = {"code": self.code, "message": self.message}
        for key in CONTEXT_FIELDS:
            value = getattr(self, key, None)
            if value is not None:
                out[key] = value
        flight = getattr(self, "flight", None)
        if flight:
            out["flight"] = flight
        return out

    def oneline(self) -> str:
        """One-line structured rendering for CLI stderr output."""
        parts = [f"error[{self.code}]"]
        for key in ("benchmark", "dataset", "phase"):
            value = getattr(self, key, None)
            if value is not None:
                parts.append(f"{key}={value}")
        if self.pc is not None:
            parts.append(f"pc=0x{self.pc:x}")
        if self.instr_count is not None:
            parts.append(f"n={self.instr_count}")
        return f"{' '.join(parts)}: {self.message}"


# -- simulator-side errors ---------------------------------------------------


class SimulationError(ReproError):
    """Raised on invalid execution (bad pc, bad syscall, internal fault...)."""

    phase = "simulate"


class SimulationLimitExceeded(SimulationError):
    """Raised when the instruction-fuel budget is exhausted."""


class SimulationTimeout(SimulationLimitExceeded):
    """Raised when the watchdog's wall-clock deadline passes.

    Subclasses :class:`SimulationLimitExceeded` because both are resource
    limits, but the harness treats timeouts as *non*-transient (retrying
    with more fuel will not beat a wall clock).
    """


class InputExhausted(SimulationError):
    """Raised when a read syscall finds no more input."""


class MemoryError_(SimulationError):
    """Raised on misaligned / invalid memory access or page-budget
    exhaustion.  (Trailing underscore avoids shadowing the builtin.)"""


# -- parallel-harness errors --------------------------------------------------


class WorkerError(ReproError):
    """A parallel-harness shard failed outside the simulated pipeline.

    These wrap failures of the *execution engine itself* (the pool, the
    worker process, result transport) rather than of the benchmark under
    test, so the degraded-mode tables can render them as a distinct
    ``FAILED:worker-failed`` bucket and operators know to look at the
    machine, not the program.
    """

    phase = "parallel"


class WorkerCrashError(WorkerError):
    """A shard's worker process died before returning a result (killed,
    segfaulted interpreter, OOM-killed, broken pool)."""


class WorkerResultError(WorkerError):
    """A shard returned a result the parent could not decode or that
    failed validation (pickling error, schema drift between versions)."""


# -- shared-store locking errors ----------------------------------------------


class CacheLockError(ReproError):
    """A single-writer lease on a shared artifact-store key could not be
    acquired before the deadline.

    Raised only by the *waiting* acquire paths (callers that opted into
    blocking); opportunistic writers treat contention as "someone else
    is already producing this content" and skip silently.
    """

    phase = "cache"


# -- prediction-service errors ------------------------------------------------


class ServiceError(ReproError):
    """The prediction service could not execute a job.

    These describe the *service's* decision about a job (shed, isolate,
    abandon) rather than a pipeline failure inside it — every one is a
    deliberate, typed degraded response, never a hang.
    """

    phase = "service"


class JobRejectedError(ServiceError):
    """The service shed this job instead of queueing it: the circuit
    breaker is open, or the bounded queue is full.  Resubmit later."""


class JobQuarantinedError(ServiceError):
    """The job was classified as poison: it crashed its worker process
    on enough consecutive attempts that the supervisor refuses to feed
    it more workers."""


class JobDeadlineError(ServiceError):
    """The job exceeded its service-level deadline; the worker running
    it was killed and respawned (distinct from the simulator's own
    :class:`SimulationTimeout`, which fires inside a healthy worker)."""
