"""Executable and procedure containers.

An :class:`Executable` is the analogue of the MIPS a.out files QPT consumed:
a flat text segment of instructions grouped into named procedures, plus an
initialized data segment and a symbol table. All analyses (CFG construction,
branch classification, the heuristics) and the simulator operate on this
representation, mirroring the paper's "information available from an
executable file" constraint.

Memory layout (SPIM-like):

* text at ``TEXT_BASE`` (0x0040_0000), 4 bytes per instruction;
* data at ``DATA_BASE`` (0x1000_0000) with ``$gp`` preset to ``GP_VALUE``
  (0x1000_8000) so the first 64 KiB of globals are addressable as
  ``imm($gp)``;
* heap grows up from the end of the data segment (``sbrk`` syscall);
* stack grows down from ``STACK_TOP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction

__all__ = [
    "TEXT_BASE",
    "DATA_BASE",
    "GP_VALUE",
    "STACK_TOP",
    "WORD_SIZE",
    "Procedure",
    "Executable",
]

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
GP_VALUE = 0x1000_8000
STACK_TOP = 0x7FFF_FFFC
WORD_SIZE = 4


@dataclass
class Procedure:
    """A named, contiguous run of instructions in the text segment."""

    name: str
    start_index: int
    end_index: int  #: exclusive
    executable: "Executable" = field(repr=False, default=None)

    @property
    def instructions(self) -> list[Instruction]:
        return self.executable.instructions[self.start_index:self.end_index]

    @property
    def start_address(self) -> int:
        return TEXT_BASE + WORD_SIZE * self.start_index

    @property
    def end_address(self) -> int:
        """Address one past the last instruction."""
        return TEXT_BASE + WORD_SIZE * self.end_index

    def __len__(self) -> int:
        return self.end_index - self.start_index

    def contains_address(self, addr: int) -> bool:
        return self.start_address <= addr < self.end_address


class Executable:
    """A linked program: text, data, and symbols.

    Parameters
    ----------
    instructions:
        Flat list of instructions; entry *i* lives at ``TEXT_BASE + 4*i``.
        Instructions must already have ``address`` and ``target_address``
        resolved (the assembler does this).
    procedures:
        Ordered, non-overlapping cover of the instruction list.
    data:
        Initialized data-segment image, based at ``DATA_BASE``.
    symbols:
        Label name -> absolute address (text or data).
    entry:
        Address where execution starts (defaults to the first instruction).
    """

    def __init__(
        self,
        instructions: list[Instruction],
        procedures: list[Procedure],
        data: bytes = b"",
        symbols: dict[str, int] | None = None,
        entry: int | None = None,
    ) -> None:
        self.instructions = instructions
        self.procedures = procedures
        for proc in procedures:
            proc.executable = self
        self.data = bytes(data)
        self.symbols = dict(symbols or {})
        self.entry = entry if entry is not None else TEXT_BASE
        self._procs_by_name = {p.name: p for p in procedures}
        # heap begins after data, 8-byte aligned
        self.heap_start = (DATA_BASE + len(self.data) + 7) & ~7

    # -- lookup --------------------------------------------------------------

    def procedure(self, name: str) -> Procedure:
        """Return the procedure named *name* (KeyError if absent)."""
        return self._procs_by_name[name]

    def procedure_names(self) -> list[str]:
        return [p.name for p in self.procedures]

    def instruction_at(self, addr: int) -> Instruction:
        """Return the instruction at text address *addr*."""
        index = (addr - TEXT_BASE) // WORD_SIZE
        if not 0 <= index < len(self.instructions) or addr % WORD_SIZE:
            raise IndexError(f"no instruction at address 0x{addr:x}")
        return self.instructions[index]

    def procedure_containing(self, addr: int) -> Procedure:
        """Return the procedure whose text range contains *addr*."""
        lo, hi = 0, len(self.procedures)
        while lo < hi:
            mid = (lo + hi) // 2
            proc = self.procedures[mid]
            if addr < proc.start_address:
                hi = mid
            elif addr >= proc.end_address:
                lo = mid + 1
            else:
                return proc
        raise IndexError(f"address 0x{addr:x} is not inside any procedure")

    # -- stats ---------------------------------------------------------------

    @property
    def text_size(self) -> int:
        """Text segment size in bytes."""
        return WORD_SIZE * len(self.instructions)

    @property
    def code_size_kb(self) -> float:
        """Object-code size in KiB (text + data), as reported in Table 1."""
        return (self.text_size + len(self.data)) / 1024.0

    def conditional_branches(self):
        """Yield ``(procedure, index_within_procedure, instruction)`` for
        every two-way conditional branch in the program."""
        for proc in self.procedures:
            for i, inst in enumerate(proc.instructions):
                if inst.is_conditional_branch:
                    yield proc, i, inst

    # -- rendering -------------------------------------------------------------

    def listing(self) -> str:
        """Human-readable disassembly listing of the whole text segment."""
        lines: list[str] = []
        for proc in self.procedures:
            lines.append(f"\n{proc.name}:  # 0x{proc.start_address:x}")
            for inst in proc.instructions:
                lines.append(f"  0x{inst.address:x}: {inst.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<Executable {len(self.procedures)} procs, "
                f"{len(self.instructions)} insts, "
                f"{len(self.data)} data bytes>")
