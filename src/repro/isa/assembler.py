"""Two-pass assembler for the MIPS-like target ISA.

Turns textual assembly (as produced by the BLC code generator, or written by
hand in tests and examples) into a linked :class:`~repro.isa.program.Executable`.

Supported syntax::

            .data
    msg:    .asciiz "hello\\n"
    tab:    .word 1, 2, -3, 0x10
    pi:     .double 3.14159
    buf:    .space 400
            .align 3
            .text
            .ent main
    main:   addiu $sp, $sp, -32
            lw    $t0, tab($gp)      # gp-relative symbolic addressing
            la    $t1, buf           # expands to lui+ori
            beq   $t0, $zero, L2
    L1:     ...
            .end main

Pseudo-instructions expanded here: ``move``, ``li``, ``la``, ``b``, ``not``,
``neg``, ``l.d``/``s.d`` (aliases for ``ldc1``/``sdc1``).

Procedures are delimited by ``.ent name`` / ``.end name`` — the unit QPT
analyzed — and every instruction must be inside one.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.errors import ReproError
from repro.isa.instructions import Instruction, Kind, Opcode, OPCODES_BY_NAME
from repro.isa.program import (
    DATA_BASE, GP_VALUE, TEXT_BASE, WORD_SIZE, Executable, Procedure,
)
from repro.isa.registers import (
    GP, RA, ZERO, is_fp_register_name, parse_fp_register, parse_register,
)

__all__ = ["AssemblerError", "assemble"]


class AssemblerError(ReproError):
    """Raised for any syntax or semantic error in assembly input.

    Part of the unified :class:`~repro.errors.ReproError` taxonomy
    (phase ``assemble``)."""

    phase = "assemble"

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"', "r": "\r", "'": "'"}


def _unescape(body: str, line: int) -> bytes:
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AssemblerError("dangling escape in string", line)
            esc = body[i]
            if esc not in _ESCAPES:
                raise AssemblerError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
        else:
            out.append(ch)
        i += 1
    return "".join(out).encode("latin-1")


def _parse_int(text: str, line: int) -> int:
    text = text.strip()
    try:
        if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
            body = _unescape(text[1:-1], line)
            if len(body) != 1:
                raise AssemblerError(f"bad char literal {text}", line)
            return body[0]
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", line) from None


@dataclass
class _Line:
    number: int
    label: str | None
    mnemonic: str | None
    operands: list[str]
    directive_arg: str | None = None


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on commas that are not inside quotes."""
    ops: list[str] = []
    depth_quote = False
    cur = []
    i = 0
    while i < len(rest):
        ch = rest[i]
        if ch == '"' and (i == 0 or rest[i - 1] != "\\"):
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            ops.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
        i += 1
    tail = "".join(cur).strip()
    if tail:
        ops.append(tail)
    return ops


def _tokenize(source: str) -> list[_Line]:
    lines: list[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        # strip comments (# to end of line, respecting string quotes)
        text = ""
        in_quote = False
        for i, ch in enumerate(raw):
            if ch == '"' and (i == 0 or raw[i - 1] != "\\"):
                in_quote = not in_quote
            if ch == "#" and not in_quote:
                break
            text += ch
        text = text.strip()
        if not text:
            continue
        label = None
        m = _LABEL_RE.match(text)
        if m:
            label = m.group(1)
            text = text[m.end():].strip()
        if not text:
            lines.append(_Line(number, label, None, []))
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        lines.append(_Line(number, label, mnemonic, _split_operands(rest)))
    return lines


_MEM_OPERAND_RE = re.compile(r"^(-?[\w.$'\\]*(?:[+-]\d+)?)\((\$\w+)\)$")
_SYM_PLUS_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)([+-]\d+)?$")


def _pseudo_size(mnemonic: str, operands: list[str], line: int) -> int:
    """Number of real instructions a (pseudo-)instruction expands to."""
    if mnemonic == "la":
        return 2
    if mnemonic == "li":
        value = _parse_int(operands[1], line)
        return 1 if -32768 <= value <= 32767 else 2
    return 1


class _Assembler:
    def __init__(self, source: str) -> None:
        self.lines = _tokenize(source)
        self.symbols: dict[str, int] = {}
        self.data = bytearray()
        self.instructions: list[Instruction] = []
        self.procedures: list[Procedure] = []
        #: (data offset, symbol, line) for `.word <label>` entries
        self._word_patches: list[tuple[int, str, int]] = []

    # -- pass 1: addresses & symbols ---------------------------------------

    def _pass1(self) -> None:
        segment = "text"
        text_index = 0
        for ln in self.lines:
            if ln.label is not None:
                addr = (TEXT_BASE + WORD_SIZE * text_index if segment == "text"
                        else DATA_BASE + len(self.data))
                if ln.label in self.symbols:
                    raise AssemblerError(f"duplicate label {ln.label!r}", ln.number)
                self.symbols[ln.label] = addr
            if ln.mnemonic is None:
                continue
            m = ln.mnemonic
            if m.startswith("."):
                if m == ".data":
                    segment = "data"
                elif m == ".text":
                    segment = "text"
                elif m in (".ent", ".end", ".globl"):
                    pass
                elif segment != "data":
                    raise AssemblerError(f"directive {m} outside .data", ln.number)
                elif m == ".word":
                    self._align(4)
                    if ln.label is not None:
                        self.symbols[ln.label] = DATA_BASE + len(self.data)
                    for op in ln.operands:
                        op = op.strip()
                        if op and (op[0].isalpha() or op[0] in "_.$"):
                            # symbolic word: patched after all symbols known
                            self._word_patches.append(
                                (len(self.data), op, ln.number))
                            self.data += b"\0\0\0\0"
                        else:
                            value = _parse_int(op, ln.number) & 0xFFFFFFFF
                            self.data += value.to_bytes(4, "little")
                elif m == ".double":
                    self._align(8)
                    if ln.label is not None:
                        self.symbols[ln.label] = DATA_BASE + len(self.data)
                    for op in ln.operands:
                        try:
                            self.data += struct.pack("<d", float(op))
                        except ValueError:
                            raise AssemblerError(f"bad double {op!r}", ln.number) from None
                elif m == ".byte":
                    for op in ln.operands:
                        self.data += struct.pack("<b", _parse_int(op, ln.number))
                elif m == ".space":
                    self.data += bytes(_parse_int(ln.operands[0], ln.number))
                elif m == ".asciiz":
                    op = ln.operands[0]
                    if not (op.startswith('"') and op.endswith('"')):
                        raise AssemblerError(".asciiz needs a quoted string", ln.number)
                    self.data += _unescape(op[1:-1], ln.number) + b"\0"
                elif m == ".align":
                    self._align(1 << _parse_int(ln.operands[0], ln.number))
                else:
                    raise AssemblerError(f"unknown directive {m}", ln.number)
                continue
            if segment != "text":
                raise AssemblerError("instruction in .data segment", ln.number)
            text_index += _pseudo_size(m, ln.operands, ln.number)

    def _align(self, n: int) -> None:
        while len(self.data) % n:
            self.data.append(0)

    # -- pass 2: encode ------------------------------------------------------

    def _pass2(self) -> None:
        segment = "text"
        current_proc: str | None = None
        proc_start = 0
        for ln in self.lines:
            if ln.mnemonic is None:
                continue
            m = ln.mnemonic
            if m.startswith("."):
                if m == ".data":
                    segment = "data"
                elif m == ".text":
                    segment = "text"
                elif m == ".ent":
                    if current_proc is not None:
                        raise AssemblerError(
                            f".ent {ln.operands[0]} inside procedure {current_proc}",
                            ln.number)
                    current_proc = ln.operands[0]
                    proc_start = len(self.instructions)
                elif m == ".end":
                    if current_proc is None:
                        raise AssemblerError(".end outside procedure", ln.number)
                    if ln.operands and ln.operands[0] != current_proc:
                        raise AssemblerError(
                            f".end {ln.operands[0]} does not match .ent {current_proc}",
                            ln.number)
                    self.procedures.append(
                        Procedure(current_proc, proc_start, len(self.instructions)))
                    current_proc = None
                continue
            if segment != "text":
                continue
            if current_proc is None:
                raise AssemblerError(
                    f"instruction {m!r} outside any .ent/.end procedure", ln.number)
            for inst in self._encode(m, ln.operands, ln.number):
                self.instructions.append(inst)
        if current_proc is not None:
            raise AssemblerError(f"procedure {current_proc} missing .end")

    def _addr_of(self, label: str, line: int) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblerError(f"undefined label {label!r}", line) from None

    def _reg(self, text: str, line: int) -> int:
        try:
            return parse_register(text.strip())
        except ValueError as exc:
            raise AssemblerError(str(exc), line) from None

    def _freg(self, text: str, line: int) -> int:
        try:
            return parse_fp_register(text.strip())
        except ValueError as exc:
            raise AssemblerError(str(exc), line) from None

    def _mem(self, text: str, line: int) -> tuple[int, int]:
        """Parse a memory operand ``disp(reg)`` or ``sym(reg)`` -> (base, disp)."""
        m = _MEM_OPERAND_RE.match(text.strip())
        if not m:
            raise AssemblerError(f"bad memory operand {text!r}", line)
        disp_text, reg_text = m.groups()
        base = self._reg(reg_text, line)
        if not disp_text:
            disp = 0
        elif disp_text.lstrip("-").replace("x", "0", 1).isalnum() and (
                disp_text.lstrip("-")[0].isdigit() or disp_text.startswith("'")):
            disp = _parse_int(disp_text, line)
        else:
            m_sym = _SYM_PLUS_RE.match(disp_text)
            if not m_sym:
                raise AssemblerError(f"bad displacement {disp_text!r}", line)
            sym, delta = m_sym.groups()
            addr = self._addr_of(sym, line) + (int(delta) if delta else 0)
            if base == GP:
                disp = addr - GP_VALUE
            elif base == ZERO:
                disp = addr
            else:
                raise AssemblerError(
                    f"symbolic displacement needs $gp or $zero base: {text!r}", line)
        if not -32768 <= disp <= 32767:
            raise AssemblerError(f"displacement out of 16-bit range: {disp}", line)
        return base, disp

    def _encode(self, m: str, ops: list[str], line: int) -> list[Instruction]:
        def I(**kw) -> Instruction:
            return Instruction(source_line=line, **kw)

        # pseudo-instructions first
        if m == "move":
            return [I(op=OPCODES_BY_NAME["addu"], rd=self._reg(ops[0], line),
                      rs=self._reg(ops[1], line), rt=ZERO)]
        if m == "not":
            return [I(op=OPCODES_BY_NAME["nor"], rd=self._reg(ops[0], line),
                      rs=self._reg(ops[1], line), rt=ZERO)]
        if m == "neg":
            return [I(op=OPCODES_BY_NAME["sub"], rd=self._reg(ops[0], line),
                      rs=ZERO, rt=self._reg(ops[1], line))]
        if m == "b":
            return [I(op=OPCODES_BY_NAME["j"], label=ops[0])]
        if m == "li":
            rt = self._reg(ops[0], line)
            value = _parse_int(ops[1], line)
            if -32768 <= value <= 32767:
                return [I(op=OPCODES_BY_NAME["addiu"], rt=rt, rs=ZERO, imm=value)]
            uval = value & 0xFFFFFFFF
            return [I(op=OPCODES_BY_NAME["lui"], rt=rt, imm=(uval >> 16) & 0xFFFF),
                    I(op=OPCODES_BY_NAME["ori"], rt=rt, rs=rt, imm=uval & 0xFFFF)]
        if m == "la":
            rt = self._reg(ops[0], line)
            addr = self._addr_of(ops[1], line)
            return [I(op=OPCODES_BY_NAME["lui"], rt=rt, imm=(addr >> 16) & 0xFFFF),
                    I(op=OPCODES_BY_NAME["ori"], rt=rt, rs=rt, imm=addr & 0xFFFF)]
        if m == "l.d":
            m = "ldc1"
        elif m == "s.d":
            m = "sdc1"

        opcode = OPCODES_BY_NAME.get(m)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {m!r}", line)
        k = opcode.kind
        try:
            if k is Kind.ALU_R:
                return [I(op=opcode, rd=self._reg(ops[0], line),
                          rs=self._reg(ops[1], line), rt=self._reg(ops[2], line))]
            if k in (Kind.ALU_I, Kind.SHIFT_I):
                return [I(op=opcode, rt=self._reg(ops[0], line),
                          rs=self._reg(ops[1], line), imm=_parse_int(ops[2], line))]
            if k is Kind.LUI:
                return [I(op=opcode, rt=self._reg(ops[0], line),
                          imm=_parse_int(ops[1], line))]
            if k in (Kind.LOAD, Kind.STORE):
                base, disp = self._mem(ops[1], line)
                return [I(op=opcode, rt=self._reg(ops[0], line), rs=base, imm=disp)]
            if k in (Kind.FP_LOAD, Kind.FP_STORE):
                base, disp = self._mem(ops[1], line)
                return [I(op=opcode, ft=self._freg(ops[0], line), rs=base, imm=disp)]
            if k is Kind.BRANCH2:
                return [I(op=opcode, rs=self._reg(ops[0], line),
                          rt=self._reg(ops[1], line), label=ops[2])]
            if k is Kind.BRANCH1:
                return [I(op=opcode, rs=self._reg(ops[0], line), label=ops[1])]
            if k is Kind.FP_BRANCH:
                return [I(op=opcode, label=ops[0])]
            if k in (Kind.JUMP, Kind.CALL):
                return [I(op=opcode, label=ops[0])]
            if k is Kind.JUMP_REG:
                return [I(op=opcode, rs=self._reg(ops[0], line))]
            if k is Kind.CALL_REG:
                if len(ops) == 1:
                    return [I(op=opcode, rd=RA, rs=self._reg(ops[0], line))]
                return [I(op=opcode, rd=self._reg(ops[0], line),
                          rs=self._reg(ops[1], line))]
            if k is Kind.FP_R:
                if m in ("neg.d", "abs.d", "mov.d", "sqrt.d"):
                    return [I(op=opcode, fd=self._freg(ops[0], line),
                              fs=self._freg(ops[1], line))]
                return [I(op=opcode, fd=self._freg(ops[0], line),
                          fs=self._freg(ops[1], line), ft=self._freg(ops[2], line))]
            if k is Kind.FP_CMP:
                return [I(op=opcode, fs=self._freg(ops[0], line),
                          ft=self._freg(ops[1], line))]
            if k is Kind.FP_MOVE:
                if m == "mtc1":
                    return [I(op=opcode, rt=self._reg(ops[0], line),
                              fs=self._freg(ops[1], line))]
                if m == "mfc1":
                    return [I(op=opcode, rt=self._reg(ops[0], line),
                              fs=self._freg(ops[1], line))]
                return [I(op=opcode, fd=self._freg(ops[0], line),
                          fs=self._freg(ops[1], line))]
            if k in (Kind.SYSCALL, Kind.NOP):
                return [I(op=opcode)]
        except IndexError:
            raise AssemblerError(f"missing operand for {m}", line) from None
        raise AssemblerError(f"cannot encode {m}", line)

    # -- finalize ------------------------------------------------------------

    def _resolve(self) -> None:
        resolved: list[Instruction] = []
        for index, inst in enumerate(self.instructions):
            addr = TEXT_BASE + WORD_SIZE * index
            target = -1
            if inst.label is not None:
                target = self._addr_of(inst.label, inst.source_line)
            resolved.append(Instruction(
                op=inst.op, rd=inst.rd, rs=inst.rs, rt=inst.rt,
                fd=inst.fd, fs=inst.fs, ft=inst.ft, imm=inst.imm,
                label=inst.label, address=addr, target_address=target,
                source_line=inst.source_line))
        self.instructions = resolved

    def assemble(self) -> Executable:
        self._pass1()
        for offset, sym, line in self._word_patches:
            addr = self._addr_of(sym, line) & 0xFFFFFFFF
            self.data[offset:offset + 4] = addr.to_bytes(4, "little")
        self._pass2()
        self._resolve()
        entry = None
        for name in ("__start", "main"):
            if name in self.symbols:
                entry = self.symbols[name]
                break
        return Executable(self.instructions, self.procedures,
                          data=bytes(self.data), symbols=self.symbols,
                          entry=entry)


def assemble(source: str) -> Executable:
    """Assemble *source* text into a linked :class:`Executable`.

    Telemetry: wrapped in an ``isa.assemble`` span; counts assembled
    instructions, procedures, and data bytes (all no-ops when telemetry
    is disabled, the default).
    """
    from repro import telemetry
    tm = telemetry.get()
    with tm.span("isa.assemble", category="compile"):
        executable = _Assembler(source).assemble()
    if tm.enabled:
        tm.counter("asm.instructions").inc(len(executable.instructions))
        tm.counter("asm.procedures").inc(len(executable.procedures))
        tm.counter("asm.data_bytes").inc(len(executable.data))
    return executable
