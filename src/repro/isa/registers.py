"""Register definitions for the MIPS-like target ISA.

The register file mirrors the MIPS R2000 conventions that the Ball-Larus
heuristics depend on:

* ``$sp`` addresses procedure-local (stack) storage,
* ``$gp`` addresses global storage — the Pointer heuristic ignores loads
  relative to ``$gp``,
* ``$zero`` is hard-wired to zero, so ``beq $zero, rM`` is the canonical
  null-pointer test the Pointer heuristic looks for.

Integer registers are named ``$0``..``$31`` with the standard MIPS aliases;
floating-point registers are ``$f0``..``$f31`` and each holds one
double-precision value (we do not model even/odd register pairing).
"""

from __future__ import annotations

__all__ = [
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "REG_NAMES",
    "REG_NUMBERS",
    "ZERO",
    "AT",
    "V0",
    "V1",
    "A0",
    "A1",
    "A2",
    "A3",
    "T_REGS",
    "S_REGS",
    "K0",
    "K1",
    "GP",
    "SP",
    "FP",
    "RA",
    "F0",
    "F12",
    "FP_ARG_REGS",
    "FP_TEMP_REGS",
    "FP_SAVED_REGS",
    "reg_name",
    "fp_reg_name",
    "parse_register",
    "is_fp_register_name",
]

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Canonical MIPS names, indexed by register number.
REG_NAMES = (
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
)

#: Map from every accepted spelling ("$t0", "$8", "t0") to register number.
REG_NUMBERS: dict[str, int] = {}
for _num, _name in enumerate(REG_NAMES):
    REG_NUMBERS[_name] = _num
    REG_NUMBERS[_name[1:]] = _num
    REG_NUMBERS[f"${_num}"] = _num

ZERO = 0
AT = 1
V0 = 2
V1 = 3
A0 = 4
A1 = 5
A2 = 6
A3 = 7
T_REGS = (8, 9, 10, 11, 12, 13, 14, 15, 24, 25)
S_REGS = (16, 17, 18, 19, 20, 21, 22, 23)
K0 = 26
K1 = 27
GP = 28
SP = 29
FP = 30
RA = 31

F0 = 0
F12 = 12
#: FP argument registers ($f12, $f14) per the MIPS o32 convention.
FP_ARG_REGS = (12, 14)
#: Caller-saved FP registers available to the register allocator.
FP_TEMP_REGS = (4, 6, 8, 10, 16, 18)
#: Callee-saved FP registers available to the register allocator.
FP_SAVED_REGS = (20, 22, 24, 26, 28, 30)


def reg_name(num: int) -> str:
    """Return the canonical name of integer register *num*."""
    if not 0 <= num < NUM_INT_REGS:
        raise ValueError(f"integer register number out of range: {num}")
    return REG_NAMES[num]


def fp_reg_name(num: int) -> str:
    """Return the canonical name of floating-point register *num*."""
    if not 0 <= num < NUM_FP_REGS:
        raise ValueError(f"FP register number out of range: {num}")
    return f"$f{num}"


def is_fp_register_name(text: str) -> bool:
    """Return True if *text* spells a floating-point register (``$f0``...)."""
    t = text.lstrip("$")
    return len(t) >= 2 and t[0] == "f" and t[1:].isdigit()


def parse_register(text: str) -> int:
    """Parse an integer register name or number.

    Accepts ``$t0``, ``t0``, and ``$8``. Raises ``ValueError`` for unknown
    names (including FP register names — use :func:`parse_fp_register`).
    """
    try:
        return REG_NUMBERS[text]
    except KeyError:
        raise ValueError(f"unknown integer register: {text!r}") from None


def parse_fp_register(text: str) -> int:
    """Parse an FP register name such as ``$f12`` or ``f12``."""
    t = text.lstrip("$")
    if not (t.startswith("f") and t[1:].isdigit()):
        raise ValueError(f"unknown FP register: {text!r}")
    num = int(t[1:])
    if not 0 <= num < NUM_FP_REGS:
        raise ValueError(f"FP register number out of range: {text!r}")
    return num
