"""MIPS-like instruction set substrate.

This package stands in for the MIPS R2000/R3000 executables that QPT analyzed
in the paper: an instruction data model (:mod:`repro.isa.instructions`),
register conventions (:mod:`repro.isa.registers`), linked-program containers
(:mod:`repro.isa.program`), and a two-pass assembler
(:mod:`repro.isa.assembler`).
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Instruction, Kind, Opcode, OPCODES_BY_NAME
from repro.isa.program import (
    DATA_BASE, GP_VALUE, STACK_TOP, TEXT_BASE, WORD_SIZE, Executable, Procedure,
)
from repro.isa.registers import (
    A0, A1, A2, A3, FP, GP, RA, SP, V0, V1, ZERO,
    fp_reg_name, parse_fp_register, parse_register, reg_name,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "Instruction",
    "Kind",
    "Opcode",
    "OPCODES_BY_NAME",
    "Executable",
    "Procedure",
    "TEXT_BASE",
    "DATA_BASE",
    "GP_VALUE",
    "STACK_TOP",
    "WORD_SIZE",
    "A0", "A1", "A2", "A3", "FP", "GP", "RA", "SP", "V0", "V1", "ZERO",
    "reg_name", "fp_reg_name", "parse_register", "parse_fp_register",
]
