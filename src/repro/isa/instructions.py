"""Instruction data model for the MIPS-like target ISA.

Every instruction is a frozen :class:`Instruction` tagged with an
:class:`Opcode`. Opcodes carry a :class:`Kind` that classifies them the way
the Ball-Larus heuristics need: conditional branch vs. call vs. return vs.
load vs. store, etc.

Design notes (divergences from real MIPS, all irrelevant to prediction):

* No branch delay slots.
* ``mul``, ``div``, and ``rem`` write a destination register directly instead
  of going through ``lo``/``hi``.
* FP registers each hold a full double; there is no even/odd pairing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.registers import fp_reg_name, reg_name

__all__ = ["Kind", "Opcode", "Instruction", "OPCODES_BY_NAME"]


class Kind(enum.Enum):
    """Structural classification of an opcode."""

    ALU_R = enum.auto()       #: reg-reg-reg integer ALU
    ALU_I = enum.auto()       #: reg-reg-imm integer ALU
    SHIFT_I = enum.auto()     #: shift by immediate amount
    LUI = enum.auto()         #: load upper immediate
    LOAD = enum.auto()        #: integer load (rt <- mem[rs+imm])
    STORE = enum.auto()       #: integer store (mem[rs+imm] <- rt)
    FP_LOAD = enum.auto()     #: FP double load (ft <- mem[rs+imm])
    FP_STORE = enum.auto()    #: FP double store (mem[rs+imm] <- ft)
    BRANCH2 = enum.auto()     #: two-register conditional branch (beq/bne)
    BRANCH1 = enum.auto()     #: one-register compare-to-zero branch
    FP_BRANCH = enum.auto()   #: branch on FP condition flag (bc1t/bc1f)
    JUMP = enum.auto()        #: unconditional direct jump
    CALL = enum.auto()        #: direct call (jal)
    JUMP_REG = enum.auto()    #: indirect jump (jr) — return when target is $ra
    CALL_REG = enum.auto()    #: indirect call (jalr)
    FP_R = enum.auto()        #: FP reg-reg arithmetic
    FP_CMP = enum.auto()      #: FP compare, sets the FP condition flag
    FP_MOVE = enum.auto()     #: mtc1/mfc1/cvt — moves between files
    SYSCALL = enum.auto()
    NOP = enum.auto()


@dataclass(frozen=True)
class Opcode:
    """An opcode: its assembly mnemonic plus structural kind."""

    name: str
    kind: Kind

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _ops(kind: Kind, *names: str) -> list[Opcode]:
    return [Opcode(name, kind) for name in names]


_ALL_OPCODES: list[Opcode] = (
    _ops(Kind.ALU_R, "add", "addu", "sub", "subu", "and", "or", "xor", "nor",
         "slt", "sltu", "sllv", "srlv", "srav", "mul", "div", "rem")
    + _ops(Kind.ALU_I, "addi", "addiu", "andi", "ori", "xori", "slti", "sltiu")
    + _ops(Kind.SHIFT_I, "sll", "srl", "sra")
    + _ops(Kind.LUI, "lui")
    + _ops(Kind.LOAD, "lw", "lb", "lbu")
    + _ops(Kind.STORE, "sw", "sb")
    + _ops(Kind.FP_LOAD, "ldc1")
    + _ops(Kind.FP_STORE, "sdc1")
    + _ops(Kind.BRANCH2, "beq", "bne")
    + _ops(Kind.BRANCH1, "blez", "bgtz", "bltz", "bgez")
    + _ops(Kind.FP_BRANCH, "bc1t", "bc1f")
    + _ops(Kind.JUMP, "j")
    + _ops(Kind.CALL, "jal")
    + _ops(Kind.JUMP_REG, "jr")
    + _ops(Kind.CALL_REG, "jalr")
    + _ops(Kind.FP_R, "add.d", "sub.d", "mul.d", "div.d", "neg.d", "abs.d",
           "mov.d", "sqrt.d")
    + _ops(Kind.FP_CMP, "c.eq.d", "c.lt.d", "c.le.d")
    + _ops(Kind.FP_MOVE, "mtc1", "mfc1", "cvt.d.w", "cvt.w.d")
    + _ops(Kind.SYSCALL, "syscall")
    + _ops(Kind.NOP, "nop")
)

#: Lookup from mnemonic to opcode. The assembler and code generator use this.
OPCODES_BY_NAME: dict[str, Opcode] = {op.name: op for op in _ALL_OPCODES}

_BRANCH_KINDS = frozenset({Kind.BRANCH2, Kind.BRANCH1, Kind.FP_BRANCH})
_LOAD_KINDS = frozenset({Kind.LOAD, Kind.FP_LOAD})
_STORE_KINDS = frozenset({Kind.STORE, Kind.FP_STORE})


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Field usage depends on the opcode kind:

    * ``rd``/``rs``/``rt`` — integer register numbers (dest, src1, src2).
    * ``fd``/``fs``/``ft`` — FP register numbers.
    * ``imm`` — immediate operand, shift amount, or load/store displacement.
    * ``label`` — symbolic branch/jump/call target (resolved to ``addr``
      by the assembler; analyses use ``target_address``).

    ``address`` is assigned at link time by :class:`repro.isa.program.Executable`.
    """

    op: Opcode
    rd: int | None = None
    rs: int | None = None
    rt: int | None = None
    fd: int | None = None
    fs: int | None = None
    ft: int | None = None
    imm: int | None = None
    label: str | None = None
    address: int = field(default=-1, compare=False)
    target_address: int = field(default=-1, compare=False)
    source_line: int = field(default=-1, compare=False)

    # -- classification ----------------------------------------------------

    @property
    def is_conditional_branch(self) -> bool:
        """True for the two-way branches with fixed targets the paper studies."""
        return self.op.kind in _BRANCH_KINDS

    @property
    def is_call(self) -> bool:
        """True for direct and indirect calls."""
        return self.op.kind in (Kind.CALL, Kind.CALL_REG)

    @property
    def is_return(self) -> bool:
        """True for ``jr $ra`` — the procedure-return idiom."""
        return self.op.kind is Kind.JUMP_REG and self.rs == 31

    @property
    def is_indirect_jump(self) -> bool:
        """True for ``jr`` through a register other than ``$ra``."""
        return self.op.kind is Kind.JUMP_REG and self.rs != 31

    @property
    def is_load(self) -> bool:
        return self.op.kind in _LOAD_KINDS

    @property
    def is_store(self) -> bool:
        return self.op.kind in _STORE_KINDS

    @property
    def is_jump(self) -> bool:
        return self.op.kind is Kind.JUMP

    @property
    def ends_basic_block(self) -> bool:
        """True if control may not fall through to the next instruction
        unconditionally, i.e. this instruction terminates a basic block."""
        return self.op.kind in (
            Kind.BRANCH2, Kind.BRANCH1, Kind.FP_BRANCH, Kind.JUMP, Kind.JUMP_REG,
        )

    # -- dataflow ----------------------------------------------------------

    def int_uses(self) -> tuple[int, ...]:
        """Integer registers read by this instruction."""
        k = self.op.kind
        if k is Kind.ALU_R:
            return (self.rs, self.rt)
        if k in (Kind.ALU_I, Kind.SHIFT_I):
            return (self.rs,)
        if k in (Kind.LOAD, Kind.FP_LOAD):
            return (self.rs,)
        if k is Kind.STORE:
            return (self.rs, self.rt)
        if k is Kind.FP_STORE:
            return (self.rs,)
        if k is Kind.BRANCH2:
            return (self.rs, self.rt)
        if k is Kind.BRANCH1:
            return (self.rs,)
        if k in (Kind.JUMP_REG, Kind.CALL_REG):
            return (self.rs,)
        if self.op.name == "mtc1":
            return (self.rt,)
        if self.op.name == "syscall":
            return (2, 4, 5, 6, 7)  # $v0 selects the service; $a0-$a3 args
        return ()

    def int_defs(self) -> tuple[int, ...]:
        """Integer registers written by this instruction."""
        k = self.op.kind
        if k is Kind.ALU_R:
            return (self.rd,)
        if k in (Kind.ALU_I, Kind.SHIFT_I, Kind.LUI, Kind.LOAD):
            return (self.rt,)
        if k is Kind.CALL:
            return (31,)
        if k is Kind.CALL_REG:
            return (self.rd if self.rd is not None else 31,)
        if self.op.name == "mfc1":
            return (self.rt,)
        if self.op.name == "cvt.w.d":
            return ()
        if k is Kind.SYSCALL:
            return (2,)  # read services return in $v0
        return ()

    def fp_uses(self) -> tuple[int, ...]:
        """FP registers read by this instruction."""
        name = self.op.name
        k = self.op.kind
        if k is Kind.FP_R:
            if name in ("neg.d", "abs.d", "mov.d", "sqrt.d"):
                return (self.fs,)
            return (self.fs, self.ft)
        if k is Kind.FP_CMP:
            return (self.fs, self.ft)
        if k is Kind.FP_STORE:
            return (self.ft,)
        if name in ("cvt.d.w", "cvt.w.d", "mfc1"):
            return (self.fs,)
        return ()

    def fp_defs(self) -> tuple[int, ...]:
        """FP registers written by this instruction."""
        name = self.op.name
        k = self.op.kind
        if k in (Kind.FP_R, Kind.FP_LOAD):
            return (self.fd,) if k is Kind.FP_R else (self.ft,)
        if name in ("mtc1", "cvt.d.w", "cvt.w.d"):
            return (self.fd if name != "mtc1" else self.fs,)
        return ()

    # -- rendering ----------------------------------------------------------

    def __str__(self) -> str:
        return self.render()

    def render(self) -> str:
        """Render in assembly syntax (labels kept symbolic if present)."""
        op = self.op
        name = op.name
        k = op.kind
        tgt = self.label if self.label is not None else (
            f"0x{self.target_address:x}" if self.target_address >= 0 else "?")
        if k is Kind.ALU_R:
            return f"{name} {reg_name(self.rd)}, {reg_name(self.rs)}, {reg_name(self.rt)}"
        if k is Kind.ALU_I:
            return f"{name} {reg_name(self.rt)}, {reg_name(self.rs)}, {self.imm}"
        if k is Kind.SHIFT_I:
            return f"{name} {reg_name(self.rt)}, {reg_name(self.rs)}, {self.imm}"
        if k is Kind.LUI:
            return f"{name} {reg_name(self.rt)}, {self.imm}"
        if k in (Kind.LOAD, Kind.STORE):
            return f"{name} {reg_name(self.rt)}, {self.imm}({reg_name(self.rs)})"
        if k in (Kind.FP_LOAD, Kind.FP_STORE):
            return f"{name} {fp_reg_name(self.ft)}, {self.imm}({reg_name(self.rs)})"
        if k is Kind.BRANCH2:
            return f"{name} {reg_name(self.rs)}, {reg_name(self.rt)}, {tgt}"
        if k is Kind.BRANCH1:
            return f"{name} {reg_name(self.rs)}, {tgt}"
        if k is Kind.FP_BRANCH:
            return f"{name} {tgt}"
        if k in (Kind.JUMP, Kind.CALL):
            return f"{name} {tgt}"
        if k is Kind.JUMP_REG:
            return f"{name} {reg_name(self.rs)}"
        if k is Kind.CALL_REG:
            return f"{name} {reg_name(self.rs)}"
        if k is Kind.FP_R:
            if name in ("neg.d", "abs.d", "mov.d", "sqrt.d"):
                return f"{name} {fp_reg_name(self.fd)}, {fp_reg_name(self.fs)}"
            return f"{name} {fp_reg_name(self.fd)}, {fp_reg_name(self.fs)}, {fp_reg_name(self.ft)}"
        if k is Kind.FP_CMP:
            return f"{name} {fp_reg_name(self.fs)}, {fp_reg_name(self.ft)}"
        if name == "mtc1":
            return f"{name} {reg_name(self.rt)}, {fp_reg_name(self.fs)}"
        if name == "mfc1":
            return f"{name} {reg_name(self.rt)}, {fp_reg_name(self.fs)}"
        if name in ("cvt.d.w", "cvt.w.d"):
            return f"{name} {fp_reg_name(self.fd)}, {fp_reg_name(self.fs)}"
        return name
