"""Reaching definitions over BLC IR (a dataflow-engine client).

A *definition site* is ``(vreg, block_label, instruction_index)``;
function parameters are defined at the pseudo-site
``(vreg, ENTRY_SITE, ordinal)``.  The forward may-analysis computes,
per block, the set of sites whose value may still be live-in — the
classic gen/kill union problem, here expressed through the generic
worklist engine so one solver serves SCCP, ranges, and this.

Registered on :data:`repro.bcc.opt.IR_ANALYSES` as ``"reaching-defs"``;
the :class:`ReachingDefinitions` wrapper adds the per-(block, vreg)
query the verifier's diagnostics use to point at candidate definition
sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import (
    FORWARD, DataflowProblem, DataflowResult, Unreachable, solve,
)
from repro.bcc.ir import IRBlock, IRFunction

__all__ = ["ENTRY_SITE", "DefSite", "ReachingProblem",
           "ReachingDefinitions", "reaching_definitions"]

#: pseudo-label marking parameter definitions (at function entry)
ENTRY_SITE = "<entry>"

#: (vreg, block label, instruction index)
DefSite = tuple[int, str, int]

_State = frozenset


class ReachingProblem(DataflowProblem[frozenset]):
    """Forward may-analysis: union join, gen/kill transfer."""

    name = "reaching-defs"
    direction = FORWARD

    def __init__(self, func: IRFunction) -> None:
        self._entry_defs = frozenset(
            (vreg, ENTRY_SITE, i)
            for i, (_, vreg, _) in enumerate(func.params))

    def boundary(self, block: IRBlock) -> frozenset:
        return self._entry_defs

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block: IRBlock, state: frozenset) -> frozenset:
        sites = set(state)
        for index, inst in enumerate(block.instructions):
            defs = inst.defs()
            if not defs:
                continue
            killed = set(defs)
            sites = {s for s in sites if s[0] not in killed}
            for vreg in defs:
                sites.add((vreg, block.label, index))
        return frozenset(sites)


@dataclass
class ReachingDefinitions:
    """Query wrapper over the solved reaching-definitions result."""

    result: DataflowResult[frozenset]

    def sites_in(self, label: str) -> frozenset:
        """All definition sites that may reach the top of block *label*."""
        state = self.result.block_in.get(label)
        if state is None or isinstance(state, Unreachable):
            return frozenset()
        return state

    def definers(self, label: str, vreg: int) -> tuple[DefSite, ...]:
        """Definition sites of *vreg* that may reach block *label*."""
        return tuple(sorted(s for s in self.sites_in(label)
                            if s[0] == vreg))


def reaching_definitions(func: IRFunction) -> ReachingDefinitions:
    """Solve reaching definitions for *func* (prefer the cached
    ``am.get("reaching-defs")``)."""
    return ReachingDefinitions(solve(func.blocks, ReachingProblem(func)))


def _register() -> None:
    from repro.bcc.opt import IR_ANALYSES

    @IR_ANALYSES.register("reaching-defs",
                          description="definition sites reaching each "
                                      "block (may-analysis)")
    def _reaching_analysis(func: IRFunction, am: object) -> \
            ReachingDefinitions:
        return reaching_definitions(func)


_register()
