"""Interprocedural range context: parameter, return, and global summaries.

The intraprocedural range analysis (:mod:`repro.analysis.ranges`)
analyzes every function with TOP boundaries: parameters, call results,
and global loads are unconstrained, so loop bounds that arrive through
a call — ``len = 3 + rand_next(8)`` — look arbitrary even though the
callee provably returns ``[0, 32767]``.  This module closes that gap
with a whole-program summary fixpoint over the same interval lattice:

* **return summaries** — per function, a sound interval of every
  integer value it can return (the join over its reachable ``Ret``
  sites under the current context);
* **parameter summaries** — per function, per integer parameter, the
  join of the argument intervals over every call site in *reached*
  code (BLC has no function pointers, so the static call graph rooted
  at ``main`` is complete);
* **global summaries** — per *trackable* global (a single-word scalar
  whose address is never taken and which is only ever accessed as a
  whole word), the join of its data-segment initializer with every
  value stored to it from reached code.  This is what proves, e.g.,
  that ``malloc``'s free list stays empty in a program that never
  calls ``free``.

The fixpoint is *optimistic* in the SCCP sense: functions start
unreached (only ``main`` is a root) and globals start at their
initializers; call sites and stores in code proven unreachable — by
the call graph or by the range analysis's own edge pruning — never
contribute.  Every summary update goes through the interval widening
operator, so each summary slot changes O(1) times and the worklist
terminates; intermediate states may be temporarily unsound, but the
returned fixpoint is consistent (the standard optimistic-analysis
argument).  Like every memory fact in this repo, global summaries
assume array/pointer accesses stay within their own objects.

:func:`seed_interprocedural_ranges` publishes the result by annotating
each ``IRFunction`` (``range_entry_facts`` / ``range_return_facts`` /
``range_global_facts``), which :func:`repro.analysis.ranges.ranges` —
and therefore the SCEV trip-count analysis and the branch-evidence
layer built on it — picks up transparently.  The annotation is applied
only by :func:`repro.analysis.branches.analyze_branch_evidence`; the
optimizer pipeline never sees it, keeping ``-O1`` output
byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis import lattice
from repro.analysis.dataflow import Unreachable, solve
from repro.analysis.lattice import Interval
from repro.analysis.ranges import RangeProblem, RangeState, _step
from repro.bcc.ir import (
    INT, AddrGlobal, Call, GlobalSym, IRFunction, IRProgram, Load, Ret,
    Store,
)

__all__ = ["InterproceduralRanges", "interprocedural_ranges",
           "seed_interprocedural_ranges"]

#: fail-safe on the provably-terminating worklist (see module doc): if
#: ever exceeded, the context degrades to fully conservative instead of
#: returning a possibly-unsound partial fixpoint
_MAX_TOTAL_SWEEPS_FACTOR = 50


@dataclass
class InterproceduralRanges:
    """The computed whole-program context, keyed by function name."""

    #: per function: parameter vreg -> sound interval (int params only;
    #: absent vregs are TOP).  Unreached functions map to ``{}``.
    entries: dict[str, RangeState]
    #: per function: sound interval of its integer return value (absent
    #: means TOP — external or never-returning callees)
    returns: dict[str, Interval]
    #: per trackable global: sound interval of its stored value
    globals: dict[str, Interval]


@dataclass
class _Summary:
    """Mutable fixpoint state for one function."""

    func: IRFunction
    #: param position -> accumulated interval; None = no call site seen
    params: list[Interval] | None = None
    ret: Interval | None = None      #: None = no reachable Ret seen yet
    callers: set[str] = field(default_factory=set)
    reached: bool = False

    def entry_env(self) -> RangeState:
        if self.params is None:
            return {}
        env: RangeState = {}
        for (_, vreg, cls), iv in zip(self.func.params, self.params):
            if cls == INT and not iv.is_top:
                env[vreg] = iv
        return env


def _widened(old: Interval | None, new: Interval) -> Interval:
    """Monotone update: join then widen, so each slot changes O(1) times."""
    if old is None:
        return new
    joined = lattice.join(old, new)
    if joined == old:
        return old
    return lattice.widen(old, joined)


def _trackable_globals(program: IRProgram) -> dict[str, int]:
    """Whole-word scalar globals whose address is never exposed.

    Maps each to its initial value.  Any ``&global`` (array indexing,
    explicit address-of) or partial-word/offset access disqualifies the
    symbol: a store through a derived pointer could then alias it.
    """
    candidates = {
        g.label: (g.init if isinstance(g.init, int) else 0)
        for g in program.globals
        if g.size == 4 and (g.init is None or isinstance(g.init, int))}
    for label, init in list(candidates.items()):
        if not lattice.INT32_MIN <= init <= lattice.INT32_MAX:
            del candidates[label]
    for func in program.functions:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, AddrGlobal):
                    candidates.pop(inst.name, None)
                elif isinstance(inst, (Load, Store)):
                    base = inst.base
                    if isinstance(base, GlobalSym) and \
                            base.name in candidates and \
                            (inst.offset != 0 or inst.mem != "w"):
                        del candidates[base.name]
    return candidates


def _touching_index(program: IRProgram,
                    tracked: dict[str, int]) -> dict[str, set[str]]:
    """global label -> names of functions that load or store it."""
    index: dict[str, set[str]] = {label: set() for label in tracked}
    for func in program.functions:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, (Load, Store)) and \
                        isinstance(inst.base, GlobalSym) and \
                        inst.base.name in index:
                    index[inst.base.name].add(func.name)
    return index


def _harvest(summary: _Summary, returns: dict[str, Interval],
             globals_env: dict[str, Interval]) -> tuple[
                 Interval | None,
                 dict[str, list[list[Interval]]],
                 dict[str, Interval]]:
    """Solve *summary.func* under the current context and read it off.

    Returns the function's return-value interval (None when no ``Ret``
    is reachable), per-callee argument-interval vectors of every
    reachable call site, and per-global the join of values stored to it
    from reachable code.
    """
    func = summary.func
    result = solve(func.blocks, RangeProblem(
        entry_env=summary.entry_env(), returns=returns,
        globals_env=globals_env))
    ret: Interval | None = None
    sites: dict[str, list[list[Interval]]] = {}
    stores: dict[str, Interval] = {}
    for block in func.blocks:
        state = result.block_in.get(block.label)
        if state is None or isinstance(state, Unreachable):
            continue
        env = dict(state)
        for inst in block.instructions:
            if isinstance(inst, Call):
                args = [env.get(a, lattice.TOP) if cls == INT
                        else lattice.TOP
                        for a, cls in zip(inst.args, inst.arg_classes)]
                sites.setdefault(inst.name, []).append(args)
            elif isinstance(inst, Ret) and inst.src is not None \
                    and inst.ret_class == INT:
                iv = env.get(inst.src, lattice.TOP)
                ret = iv if ret is None else lattice.join(ret, iv)
            elif isinstance(inst, Store) and \
                    isinstance(inst.base, GlobalSym) and \
                    inst.base.name in globals_env:
                iv = env.get(inst.src, lattice.TOP)
                label = inst.base.name
                previous = stores.get(label)
                stores[label] = (iv if previous is None
                                 else lattice.join(previous, iv))
            _step(inst, env, returns, globals_env)
    return ret, sites, stores


def interprocedural_ranges(program: IRProgram) -> InterproceduralRanges:
    """Run the summary fixpoint over *program* (see the module doc)."""
    summaries = {f.name: _Summary(f) for f in program.functions}
    returns: dict[str, Interval] = {}
    tracked = _trackable_globals(program)
    touching = _touching_index(program, tracked)
    globals_env = {label: lattice.const(init)
                   for label, init in tracked.items()}

    # roots: main only (BLC's __start calls nothing else); a main-less
    # program — library unit tests — conservatively roots everything
    roots = ["main"] if "main" in summaries else sorted(summaries)
    work: deque[str] = deque()
    queued: set[str] = set()

    def enqueue(name: str) -> None:
        if name in summaries and name not in queued:
            summaries[name].reached = True
            work.append(name)
            queued.add(name)

    for root in roots:
        enqueue(root)

    budget = _MAX_TOTAL_SWEEPS_FACTOR * max(1, len(summaries))
    sweeps = 0
    while work:
        sweeps += 1
        if sweeps > budget:  # pragma: no cover - termination fail-safe
            return InterproceduralRanges(entries={}, returns={},
                                         globals={})
        name = work.popleft()
        queued.discard(name)
        summary = summaries[name]
        ret, sites, stores = _harvest(summary, returns, globals_env)

        if ret is not None:
            updated = _widened(returns.get(name), ret)
            if updated != returns.get(name):
                returns[name] = updated
                for caller in sorted(summary.callers):
                    enqueue(caller)
        for callee_name, vectors in sites.items():
            callee = summaries.get(callee_name)
            if callee is None:
                continue  # external (syscall wrapper): no summary
            callee.callers.add(name)
            if not callee.reached:
                enqueue(callee_name)
            n_params = len(callee.func.params)
            # join this sweep's sites first, so several calls seen at
            # once (`f(3); f(10)`) cost one precise join, not a widening
            joined: list[Interval] | None = None
            for args in vectors:
                args = (args + [lattice.TOP] * n_params)[:n_params]
                joined = (list(args) if joined is None
                          else [lattice.join(a, b)
                                for a, b in zip(joined, args)])
            assert joined is not None  # a sites entry implies a call
            changed = False
            if callee.params is None:
                callee.params = joined
                changed = True
            else:
                for i, iv in enumerate(joined):
                    updated = _widened(callee.params[i], iv)
                    if updated != callee.params[i]:
                        callee.params[i] = updated
                        changed = True
            if changed:
                enqueue(callee_name)
        for label, iv in stores.items():
            updated = _widened(globals_env[label], iv)
            if updated != globals_env[label]:
                globals_env[label] = updated
                for toucher in sorted(touching[label]):
                    if summaries[toucher].reached:
                        enqueue(toucher)

    return InterproceduralRanges(
        entries={name: s.entry_env() if s.reached else {}
                 for name, s in summaries.items()},
        returns=returns,
        globals=globals_env)


def seed_interprocedural_ranges(program: IRProgram) -> \
        InterproceduralRanges:
    """Compute the context and annotate every function of *program*.

    After this, :func:`repro.analysis.ranges.ranges` (and every client
    resolving ``"ranges"`` through an :class:`AnalysisManager` built on
    these function objects) solves with the whole-program boundaries.
    """
    context = interprocedural_ranges(program)
    for func in program.functions:
        func.range_entry_facts = (  # type: ignore[attr-defined]
            context.entries.get(func.name, {}))
        func.range_return_facts = (  # type: ignore[attr-defined]
            context.returns)
        func.range_global_facts = (  # type: ignore[attr-defined]
            context.globals)
    return context
