"""Static branch evidence: always/never-taken facts from SCCP + ranges.

For each conditional branch in an (optimized) IR program, SCCP and the
interval range analysis together classify the branch as *always-taken*,
*never-taken*, or *unknown* — the "statically analyzable" slice of the
non-loop branch population that local syntactic heuristics cannot see.

The classification lives at the IR level, but predictors consume machine
branches, so each fact records the **machine direction** of the emitted
conditional branch instruction.  The code generator's branch selection
is replicated exactly (see ``repro.bcc.codegen._gen_cbr``): the *k*-th
``CBr`` of a function, in block order, becomes the *k*-th conditional
branch instruction of the procedure with the same name, and the emitted
branch is inverted precisely when the IR true-label is the fall-through
block — so ``machine_taken = ir_outcome XOR inverted``.
:func:`attach_evidence` performs the (function, ordinal) -> text-address
mapping against the assembled executable and *cross-checks the branch
counts*, refusing to attach when the replication assumption is broken.

Soundness: only branches in blocks SCCP proves reachable are classified,
and both analyses degrade to "unknown" wherever wrap-around or undefined
values could intervene — every exported fact is an unconditional truth
about execution, which the harness validates against ground-truth edge
profiles (zero tolerated misclassifications).

The facts are exported on the executable (``executable.branch_evidence``)
where the registered ``Range`` evidence heuristic
(:mod:`repro.core.heuristics`) picks them up.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.analysis.scev  # noqa: F401  (registers "scev"/"ir-loops")
from repro.analysis.interproc import seed_interprocedural_ranges
from repro.analysis.ranges import evaluate_cbr_ranges
from repro.analysis.sccp import evaluate_cbr
from repro.analysis.dataflow import Unreachable, UNREACHABLE
from repro.bcc.ir import CBr, IRFunction, IRProgram
from repro.bcc.opt import IR_ANALYSES
from repro.errors import ReproError

__all__ = [
    "BranchFact", "BranchEvidence", "ExecutableEvidence",
    "analyze_branch_evidence", "attach_evidence", "evidence_of",
]


class EvidenceMappingError(ReproError):
    """IR conditional branches do not line up with the executable's."""

    phase = "analyze"


@dataclass(frozen=True)
class BranchFact:
    """Static classification of one IR conditional branch."""

    function: str
    ordinal: int            #: k-th CBr of the function, in block order
    block: str              #: label of the block ending in this CBr
    #: IR condition outcome: True = true-edge always taken, False = never,
    #: None = not statically decided
    ir_outcome: bool | None
    #: machine direction of the emitted branch instruction (None = unknown)
    taken: bool | None
    #: which analysis decided it: "sccp", "range", "scev", "unreachable",
    #: or ""
    source: str
    #: "always": every execution goes the claimed way (wrong count must be
    #: zero); "likely": the claimed way is guaranteed to be the majority
    #: direction (ties included when claiming taken, since the perfect
    #: predictor breaks ties toward taken) — only "scev" emits these
    mode: str = "always"

    @property
    def decided(self) -> bool:
        return self.taken is not None


@dataclass
class BranchEvidence:
    """Per-function branch facts for one compiled IR program."""

    by_function: dict[str, tuple[BranchFact, ...]]

    def facts(self) -> tuple[BranchFact, ...]:
        return tuple(f for facts in self.by_function.values()
                     for f in facts)

    def decided_facts(self) -> tuple[BranchFact, ...]:
        return tuple(f for f in self.facts() if f.decided)


@dataclass
class ExecutableEvidence:
    """Branch facts resolved to text addresses of one executable."""

    evidence: BranchEvidence
    by_address: dict[int, BranchFact]

    def taken_at(self, address: int) -> bool | None:
        """Machine direction claimed for the branch at *address*."""
        fact = self.by_address.get(address)
        return fact.taken if fact is not None else None

    def fact_at(self, address: int) -> BranchFact | None:
        return self.by_address.get(address)


def _scev_claim(scev_info: object, block_label: str,
                inverted: bool) -> tuple[bool, bool, str] | None:
    """The scalar-evolution claim for the exit test at *block_label*.

    Returns ``(ir_outcome, machine_taken, mode)`` or ``None``.  The
    soundness ladder (see :mod:`repro.analysis.scev`):

    * ``max_trips == 0`` — the test exits on every execution: "always";
    * ``min_trips >= 2`` — the in-loop direction outnumbers the exit at
      this test even with break-style side exits: "likely" (majority);
    * ``min_trips == 1`` — in-loop at least ties the exit; claimable
      only when the in-loop direction is the machine-taken one, because
      the perfect predictor resolves ties toward taken.
    """
    trip = scev_info.trip_for_block(block_label)  # type: ignore[attr-defined]
    if trip is None:
        return None
    if trip.max_trips == 0:
        ir_outcome = not trip.continue_on
        return ir_outcome, ir_outcome != inverted, "always"
    if trip.min_trips >= 2:
        ir_outcome = trip.continue_on
        return ir_outcome, ir_outcome != inverted, "likely"
    if trip.min_trips == 1 and trip.continue_on != inverted:
        return trip.continue_on, True, "likely"
    return None


def _function_facts(func: IRFunction) -> tuple[BranchFact, ...]:
    """Classify every CBr of *func* (memoized analyses via the manager)."""
    am = IR_ANALYSES.manager(func)
    sccp_result = am.get("sccp")
    range_result = None  # computed lazily: many functions decide via SCCP
    scev_info = None     # likewise (it also consumes sccp + ranges)
    facts: list[BranchFact] = []
    ordinal = 0
    epilogue = f"{func.name}__epilogue"
    for i, block in enumerate(func.blocks):
        if not block.instructions:
            continue
        term = block.terminator
        if not isinstance(term, CBr):
            continue
        next_label = (func.blocks[i + 1].label
                      if i + 1 < len(func.blocks) else epilogue)
        ir_outcome: bool | None = None
        source = ""
        mode = "always"
        state = sccp_result.block_out.get(block.label, UNREACHABLE)
        if isinstance(state, Unreachable):
            source = "unreachable"
        else:
            ir_outcome = evaluate_cbr(state, term)
            if ir_outcome is not None:
                source = "sccp"
            else:
                if range_result is None:
                    range_result = am.get("ranges")
                range_state = range_result.block_out.get(block.label,
                                                         UNREACHABLE)
                if not isinstance(range_state, Unreachable):
                    ir_outcome = evaluate_cbr_ranges(range_state, term,
                                                     block)
                    if ir_outcome is not None:
                        source = "range"
        taken: bool | None = None
        if term.true_label != term.false_label:
            inverted = term.true_label == next_label
            if ir_outcome is not None:
                taken = ir_outcome != inverted
            elif source == "":
                # trip-count evidence for loop exit tests (scev)
                if scev_info is None:
                    scev_info = am.get("scev")
                claim = _scev_claim(scev_info, block.label, inverted)
                if claim is not None:
                    ir_outcome, taken, mode = claim
                    source = "scev"
        facts.append(BranchFact(func.name, ordinal, block.label,
                                ir_outcome, taken, source, mode))
        ordinal += 1
    return tuple(facts)


def analyze_branch_evidence(program: IRProgram) -> BranchEvidence:
    """Classify every conditional branch of *program*.

    The whole-program range context (parameter/return summaries, see
    :mod:`repro.analysis.interproc`) is seeded first so call-derived
    loop bounds — ``len = 3 + rand_next(8)`` — constrain trip counts.
    """
    seed_interprocedural_ranges(program)
    return BranchEvidence(by_function={
        func.name: _function_facts(func) for func in program.functions})


def attach_evidence(executable: object,
                    evidence: BranchEvidence) -> ExecutableEvidence:
    """Resolve *evidence* to text addresses and export it on *executable*.

    Cross-checks that the number of conditional branch instructions in
    each procedure matches the number of IR ``CBr``\\ s of the function
    it was generated from (the codegen replication contract), raising
    :class:`EvidenceMappingError` on any mismatch.
    """
    by_address: dict[int, BranchFact] = {}
    for procedure in executable.procedures:  # type: ignore[attr-defined]
        facts = evidence.by_function.get(procedure.name)
        if facts is None:
            continue  # assembly-only routine (runtime, __start)
        addresses = [inst.address for inst in procedure.instructions
                     if inst.is_conditional_branch]
        if len(addresses) != len(facts):
            raise EvidenceMappingError(
                f"procedure {procedure.name!r} has {len(addresses)} "
                f"conditional branches but the IR function had "
                f"{len(facts)} — codegen replication contract broken")
        for address, fact in zip(addresses, facts):
            by_address[address] = fact
    resolved = ExecutableEvidence(evidence=evidence, by_address=by_address)
    executable.branch_evidence = resolved  # type: ignore[attr-defined]
    return resolved


def evidence_of(executable: object) -> ExecutableEvidence | None:
    """The evidence attached to *executable*, if any."""
    found = getattr(executable, "branch_evidence", None)
    return found if isinstance(found, ExecutableEvidence) else None
