"""Scalar-evolution analysis: induction variables and trip counts.

For every natural loop of an IR function (via :mod:`repro.cfg.irloops`)
this module recognizes *add-recurrences* ``{base, +, step}`` — integer
vregs whose only definition inside the loop adds or subtracts a
loop-invariant constant once per iteration — and, where the loop's exit
test compares such a recurrence against a loop-invariant bound, derives
the number of times the test *continues into the loop* per loop entry:

* an **exact** count when SCCP pins base and bound to constants,
* a **[min, max] bounded** count when the interval range analysis
  constrains them (evaluated at the interval corners — the count is
  monotone in base and bound for the monotone predicates),
* nothing when two's-complement wrap-around cannot be excluded.

All of it is an *unconditional machine truth*: every value the derivation
touches is checked to stay inside the signed 32-bit range, so the
closed-form python arithmetic coincides with what the simulator's
wrapping ALU computes.  That is what lets the branch evidence built on
top (:mod:`repro.analysis.branches`) promise zero misclassifications:

* ``max == 0`` — the test *always* exits: a never-taken back edge;
* ``min >= 1`` — the first test always continues (the paper's rotated
  ``while`` executes the latch once per entry even for singleton trips);
* ``min >= 2`` — the in-loop direction is a strict majority of the
  test's executions even if the loop also has break-style side exits,
  so it matches the perfect predictor's majority choice.

The analysis is a client of the PR-4 dataflow engine through the
per-procedure ``AnalysisManager`` (``am.get("sccp")`` /
``am.get("ranges")``) and is itself registered on
:data:`repro.bcc.opt.IR_ANALYSES` as ``"scev"`` (the loop structure
alone as ``"ir-loops"``).  :func:`closed_trip_count` is shared with the
BLC linter's L006 "provably zero-trip loop" rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import lattice
from repro.analysis.dataflow import DataflowResult, Unreachable, UNREACHABLE
from repro.analysis.lattice import INT32_MAX, INT32_MIN, Interval
from repro.analysis.ranges import (
    RangeProblem, RangeState, _flag_predicate,
)
from repro.analysis.sccp import ConstState, SCCPProblem
from repro.bcc.ir import (
    BinOp, CBr, Copy, Imm, IRBlock, IRFunction, LoadConst, Ret,
)
from repro.bcc.opt import IR_ANALYSES
from repro.cfg.irloops import IRLoop, IRLoopNest, compute_ir_loops

__all__ = [
    "AddRec", "LoopTrip", "SCEVInfo", "analyze_scev",
    "closed_trip_count", "interval_trip_count",
]


#: continue-predicate negations (first test fails <-> negation holds)
_NEGATE = {"lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
           "eq": "ne", "ne": "eq"}
#: mirror pred(x, y) == MIRROR[pred](y, x)
_MIRROR = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
           "eq": "eq", "ne": "ne"}
_HOLDS = {
    "lt": lambda x, y: x < y, "le": lambda x, y: x <= y,
    "gt": lambda x, y: x > y, "ge": lambda x, y: x >= y,
    "eq": lambda x, y: x == y, "ne": lambda x, y: x != y,
}


@dataclass(frozen=True)
class AddRec:
    """An induction variable: ``vreg`` evolves as ``{base, +, step}``."""

    vreg: int
    step: int
    #: label of the block holding the (unique) in-loop definition
    def_block: str
    #: instruction index of the add/sub within ``def_block``
    def_index: int


@dataclass(frozen=True)
class LoopTrip:
    """Exit-test classification of one counted (or near-counted) loop.

    ``min_trips``/``max_trips`` bound the number of times each *entry*
    of the loop evaluates the exit test with the continue outcome before
    first taking the exit outcome; ``max_trips`` is ``None`` when no
    upper bound was proven.  The counts are per loop entry, so the total
    continue count over an execution is ``trips * entries`` only for
    exact single-exit loops (see ``single_exit``).
    """

    head: str
    #: block whose terminating CBr is the analyzed exit test
    test_block: str
    #: "latch" (rotated: test at the back-edge source) or "head"
    kind: str
    iv: int
    step: int
    #: normalized continue predicate: loop continues while pred(iv, bound)
    pred: str
    base: Interval
    bound: Interval
    #: CBr outcome (True = true-edge) that continues the loop
    continue_on: bool
    min_trips: int
    max_trips: int | None
    #: the test's exit edge is the loop's only exit and no Ret leaves the
    #: body directly — every continue is observable as a test execution
    single_exit: bool

    @property
    def exact(self) -> bool:
        return self.max_trips is not None and \
            self.min_trips == self.max_trips


@dataclass
class SCEVInfo:
    """Scalar-evolution results for one IR function."""

    function: str
    nest: IRLoopNest
    #: loop head -> {vreg: AddRec} for every recognized recurrence
    add_recs: dict[str, dict[int, AddRec]] = field(default_factory=dict)
    #: exit-test block label -> classification
    trips: dict[str, LoopTrip] = field(default_factory=dict)

    def trip_for_block(self, label: str) -> LoopTrip | None:
        """The exit-test classification anchored at block *label*."""
        return self.trips.get(label)


# ---------------------------------------------------------------------------
# closed-form trip counts


def closed_trip_count(base: int, step: int, bound: int, pred: str,
                      offset: int) -> int | None:
    """Continue count of the affine test sequence, or ``None``.

    The test executes at ``k = 0, 1, ...`` seeing the value
    ``x_k = base + (k + offset) * step`` and continues while
    ``pred(x_k, bound)`` holds; the result is the index of the first
    failing test, i.e. how many tests continue.  ``None`` means the
    sequence never fails, the count is not expressible in closed form,
    or a tested value may leave the signed 32-bit range (where the
    machine's wrapping ALU diverges from this exact arithmetic).
    """
    x0 = base + offset * step
    if not INT32_MIN <= x0 <= INT32_MAX:
        return None  # already wrapped before the first test
    if not _HOLDS[pred](x0, bound):
        return 0
    if step == 0:
        return None  # x never changes: continues forever
    count: int
    if pred in ("lt", "le"):
        if step < 0:
            return None  # moving away from the bound
        delta = bound - x0
        count = -((-delta) // step) if pred == "lt" else delta // step + 1
    elif pred in ("gt", "ge"):
        if step > 0:
            return None
        delta = x0 - bound
        count = (-((-delta) // -step) if pred == "gt"
                 else delta // -step + 1)
    elif pred == "ne":
        delta = bound - x0
        if delta % step != 0 or delta // step < 0:
            return None  # steps over the bound: exits only via wrap
        count = delta // step
    else:  # eq: held at k=0, and step != 0 moves off the bound
        count = 1
    # every tested value through the first failure must be exact on the
    # machine; the sequence is monotone, so the endpoints suffice
    x_last = x0 + count * step
    if not INT32_MIN <= x_last <= INT32_MAX:
        return None
    return count


def interval_trip_count(base: Interval, step: int, bound: Interval,
                        pred: str, offset: int) -> tuple[int, int | None]:
    """Bound the continue count over interval-valued base and bound.

    Returns ``(min, max)`` with ``max = None`` when unbounded or
    unknown.  For the monotone predicates the count is monotone in both
    arguments, so the extreme corners bound it; the upper bound
    additionally requires that *no* start value in the box can push a
    tested value past the 32-bit range (a wrapped value would re-enter
    the continue region and outlive the corner estimate).
    """
    if base.is_const and bound.is_const:
        n = closed_trip_count(base.lo, step, bound.lo, pred, offset)
        return (0, None) if n is None else (n, n)
    if pred in ("eq", "ne") or step == 0:
        return 0, None  # corner reasoning needs a monotone predicate
    if pred in ("lt", "le"):
        n_min = closed_trip_count(base.hi, step, bound.lo, pred, offset)
        n_max = closed_trip_count(base.lo, step, bound.hi, pred, offset)
        overflow_safe = (step > 0
                         and base.hi + offset * step <= INT32_MAX
                         and bound.hi + step <= INT32_MAX)
    else:
        n_min = closed_trip_count(base.lo, step, bound.hi, pred, offset)
        n_max = closed_trip_count(base.hi, step, bound.lo, pred, offset)
        overflow_safe = (step < 0
                         and base.lo + offset * step >= INT32_MIN
                         and bound.lo + step >= INT32_MIN)
    if n_max == 0:
        # first test fails across the whole box; only the two extreme
        # start values need to be machine-exact
        x_lo, x_hi = (base.lo + offset * step, base.hi + offset * step)
        if not (INT32_MIN <= x_lo and x_hi <= INT32_MAX):
            n_max = None
    elif not overflow_safe:
        n_max = None
    return (0 if n_min is None else n_min, n_max)


# ---------------------------------------------------------------------------
# per-loop recognition


def _loop_def_sites(func: IRFunction, loop: IRLoop,
                    by_label: dict[str, IRBlock]) -> \
        dict[int, list[tuple[str, int, object]]]:
    """vreg -> [(block label, index, inst)] for defs inside the loop."""
    sites: dict[int, list[tuple[str, int, object]]] = {}
    for label in loop.body:
        for index, inst in enumerate(by_label[label].instructions):
            for dst in inst.defs():  # type: ignore[attr-defined]
                sites.setdefault(dst, []).append((label, index, inst))
    return sites


def _entry_states(nest: IRLoopNest, loop: IRLoop,
                  by_label: dict[str, IRBlock],
                  sccp_result: DataflowResult[ConstState],
                  range_result: DataflowResult[RangeState]) -> \
        tuple[ConstState, RangeState] | None:
    """Join the (edge-refined) states over the loop's live entry edges.

    For a loop-invariant vreg this is its value throughout the loop;
    for an induction variable it is the recurrence base.  ``None`` when
    no entry edge can execute (the loop is dead).
    """
    sccp_p, range_p = SCCPProblem(), RangeProblem()
    const_env: ConstState | None = None
    range_env: RangeState | None = None
    for pred in nest.preds[loop.head]:
        if pred in loop.body:
            continue  # back edge
        const_out = sccp_result.block_out.get(pred, UNREACHABLE)
        range_out = range_result.block_out.get(pred, UNREACHABLE)
        if isinstance(const_out, Unreachable) or \
                isinstance(range_out, Unreachable):
            continue
        const_edge = sccp_p.transfer_edge(by_label[pred], loop.head,
                                          const_out)
        range_edge = range_p.transfer_edge(by_label[pred], loop.head,
                                           range_out)
        if isinstance(const_edge, Unreachable) or \
                isinstance(range_edge, Unreachable):
            continue
        const_env = (dict(const_edge) if const_env is None
                     else sccp_p.join(const_env, const_edge))
        range_env = (dict(range_edge) if range_env is None
                     else range_p.join(range_env, range_edge))
    if const_env is None or range_env is None:
        return None
    return const_env, range_env


def _step_value(operand: object, binop_label: str, binop_index: int,
                def_sites: dict[int, list[tuple[str, int, object]]],
                const_env: ConstState) -> int | None:
    """Resolve the add/sub step operand to a per-iteration constant."""
    if isinstance(operand, Imm):
        return operand.value
    assert isinstance(operand, int)
    sites = def_sites.get(operand)
    if not sites:  # loop-invariant: its value is the entry value
        return const_env.get(operand)
    # tolerate the unoptimized `c = LoadConst; iv = iv + c` shape: every
    # in-loop def is the same LoadConst in the same block before the add
    value: int | None = None
    for label, index, inst in sites:
        if (label != binop_label or index >= binop_index
                or not isinstance(inst, LoadConst)
                or (value is not None and inst.value != value)):
            return None
        value = inst.value
    return value


def _find_add_recs(loop: IRLoop, nest: IRLoopNest,
                   def_sites: dict[int, list[tuple[str, int, object]]],
                   const_env: ConstState) -> dict[int, AddRec]:
    """Recognize ``{base, +, step}`` recurrences of one natural loop."""
    inner_blocks: set[str] = set()
    for other in nest.loops.values():
        if other.body < loop.body:
            inner_blocks |= other.body
    recs: dict[int, AddRec] = {}
    for vreg, sites in def_sites.items():
        if len(sites) != 1:
            continue
        label, index, inst = sites[0]
        binop: BinOp | None = None
        if isinstance(inst, BinOp) and inst.dst == vreg and inst.a == vreg:
            binop = inst
        elif isinstance(inst, Copy) and inst.dst == vreg:
            # unoptimized shape: `t = iv + s; iv = t` in one block
            t_sites = def_sites.get(inst.src, [])
            if (len(t_sites) == 1 and t_sites[0][0] == label
                    and t_sites[0][1] < index
                    and isinstance(t_sites[0][2], BinOp)):
                cand = t_sites[0][2]
                if cand.dst == inst.src and cand.a == vreg:
                    binop, index = cand, t_sites[0][1]
        if binop is None or binop.op not in ("add", "sub"):
            continue
        if label in inner_blocks:
            continue  # increments more than once per iteration
        if not all(nest.dominates(label, latch) for latch in loop.latches):
            continue  # conditionally skipped increment
        step = _step_value(binop.b, label, index, def_sites, const_env)
        if step is None:
            continue
        if binop.op == "sub":
            step = -step
        if not INT32_MIN <= step <= INT32_MAX:
            continue
        recs[vreg] = AddRec(vreg, step, label, index)
    return recs


def _exit_test(loop: IRLoop, by_label: dict[str, IRBlock]) -> \
        tuple[str, str, bool] | None:
    """Locate the loop's decidable exit test.

    Returns ``(test_block, kind, continue_on)``: a single latch ending in
    a CBr between the head and an exit ("latch" kind, the rotated shape),
    else a head ending in a CBr between the body and an exit ("head"
    kind, the top-tested shape).
    """
    if len(loop.latches) == 1:
        latch = loop.latches[0]
        term = by_label[latch].terminator
        if (isinstance(term, CBr) and not term.fp
                and term.true_label != term.false_label):
            targets = {term.true_label, term.false_label}
            if loop.head in targets and \
                    not (targets - {loop.head} <= loop.body):
                return latch, "latch", term.true_label == loop.head
    term = by_label[loop.head].terminator
    if (isinstance(term, CBr) and not term.fp
            and term.true_label != term.false_label):
        t_in = term.true_label in loop.body
        f_in = term.false_label in loop.body
        if t_in != f_in:
            return loop.head, "head", t_in
    return None


def _decode_continue(block: IRBlock, continue_on: bool,
                     range_out: RangeState) -> \
        tuple[str, int, object] | None:
    """Normalize the test block's CBr into a continue predicate.

    Returns ``(pred, tested_vreg_side_a, other_operand)`` such that the
    loop continues exactly while ``pred(a, b)`` holds, seeing through an
    ``slt``/``sltu``/``sub``/``xor`` flag materialized in the block
    (:func:`repro.analysis.ranges._flag_predicate`).
    """
    term = block.terminator
    assert isinstance(term, CBr)
    pred, a, b = term.op, term.a, term.b
    polarity = continue_on
    if pred in ("eq", "ne") and isinstance(b, Imm) and b.value == 0:
        seen = _flag_predicate(block, a)
        if seen is not None:
            flag_op, fa, fb = seen
            if flag_op in ("sub", "xor"):
                # flag != 0  <=>  fa != fb (exact even under wrap)
                pred, a, b = "ne", fa, fb
                polarity = continue_on == (term.op == "ne")
            else:
                ia = range_out.get(fa, lattice.TOP)
                ib = (lattice.const(fb.value) if isinstance(fb, Imm)
                      else range_out.get(fb, lattice.TOP))  # type: ignore
                if flag_op == "slt" or (ia.lo >= 0 and ib.lo >= 0):
                    # flag != 0  <=>  fa < fb (signed)
                    pred, a, b = "lt", fa, fb
                    polarity = continue_on == (term.op == "ne")
    if not polarity:
        pred = _NEGATE[pred]
    return pred, a, b


def _operand_interval(operand: object, const_env: ConstState,
                      range_env: RangeState) -> Interval:
    """Entry-state interval of a loop-invariant operand."""
    if isinstance(operand, Imm):
        return lattice.const(operand.value)
    assert isinstance(operand, int)
    value = const_env.get(operand)
    if value is not None and INT32_MIN <= value <= INT32_MAX:
        return lattice.const(value)
    return range_env.get(operand, lattice.TOP)


def _single_exit(loop: IRLoop, test_block: str,
                 by_label: dict[str, IRBlock]) -> bool:
    """True when the test's exit edge is the only way out of the loop."""
    if any(src != test_block for src, _ in loop.exit_edges):
        return False
    return not any(isinstance(by_label[label].terminator, Ret)
                   for label in loop.body)


def _analyze_loop(loop: IRLoop, nest: IRLoopNest,
                  by_label: dict[str, IRBlock],
                  func: IRFunction,
                  sccp_result: DataflowResult[ConstState],
                  range_result: DataflowResult[RangeState],
                  info: SCEVInfo) -> None:
    entry = _entry_states(nest, loop, by_label, sccp_result, range_result)
    if entry is None:
        return  # no live entry edge: the loop never runs
    const_env, range_env = entry
    def_sites = _loop_def_sites(func, loop, by_label)
    recs = _find_add_recs(loop, nest, def_sites, const_env)
    info.add_recs[loop.head] = recs

    test = _exit_test(loop, by_label)
    if test is None:
        return
    test_block, kind, continue_on = test
    if test_block in info.trips:
        return  # already classified for another loop (rare overlap)
    range_out = range_result.block_out.get(test_block, UNREACHABLE)
    if isinstance(range_out, Unreachable):
        return
    decoded = _decode_continue(by_label[test_block], continue_on, range_out)
    if decoded is None:
        return
    pred, a, b = decoded

    rec = recs.get(a) if isinstance(a, int) else None
    if rec is not None and _invariant(b, def_sites):
        iv_operand, bound_operand = a, b
    elif isinstance(b, int) and b in recs and _invariant(a, def_sites):
        pred = _MIRROR[pred]
        rec, iv_operand, bound_operand = recs[b], b, a
    else:
        return
    assert rec is not None

    # how many increments the k-th test observes beyond the base:
    # latch tests (and the _flag_predicate redefinition guard) see the
    # current iteration's increment; head tests see it only when the
    # increment lives in the head itself
    offset = 1 if kind == "latch" or rec.def_block == loop.head else 0

    base = _operand_interval(iv_operand, const_env, range_env)
    bound = _operand_interval(bound_operand, const_env, range_env)
    min_trips, max_trips = interval_trip_count(base, rec.step, bound,
                                               pred, offset)
    info.trips[test_block] = LoopTrip(
        head=loop.head, test_block=test_block, kind=kind,
        iv=rec.vreg, step=rec.step, pred=pred, base=base, bound=bound,
        continue_on=continue_on, min_trips=min_trips, max_trips=max_trips,
        single_exit=_single_exit(loop, test_block, by_label))


def _invariant(operand: object,
               def_sites: dict[int, list[tuple[str, int, object]]]) -> bool:
    if isinstance(operand, Imm):
        return True
    return isinstance(operand, int) and operand not in def_sites


# ---------------------------------------------------------------------------
# entry points


def analyze_scev(func: IRFunction, am: object | None = None) -> SCEVInfo:
    """Run scalar evolution on *func* (prefer ``am.get("scev")``)."""
    if am is None:
        am = IR_ANALYSES.manager(func)
    nest: IRLoopNest = am.get("ir-loops")  # type: ignore[attr-defined]
    info = SCEVInfo(func.name, nest)
    if not nest.loops or not nest.reducible:
        return info
    sccp_result: DataflowResult[ConstState]
    range_result: DataflowResult[RangeState]
    sccp_result = am.get("sccp")  # type: ignore[attr-defined]
    range_result = am.get("ranges")  # type: ignore[attr-defined]
    by_label = {b.label: b for b in func.blocks}
    order = {label: i for i, label in enumerate(nest.labels)}
    for head in sorted(nest.loops, key=order.__getitem__):
        _analyze_loop(nest.loops[head], nest, by_label, func,
                      sccp_result, range_result, info)
    return info


@IR_ANALYSES.register("ir-loops",
                      description="natural loops + dominators over the "
                                  "reachable IR CFG (duck-typed "
                                  "repro.cfg.irloops)")
def _ir_loops_analysis(func: IRFunction, am: object) -> IRLoopNest:
    return compute_ir_loops(func.blocks)


@IR_ANALYSES.register("scev",
                      description="scalar evolution: add-recurrences and "
                                  "per-loop trip-count bounds (client of "
                                  "sccp + ranges + ir-loops)")
def _scev_analysis(func: IRFunction, am: object) -> SCEVInfo:
    return analyze_scev(func, am)
