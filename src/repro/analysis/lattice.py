"""The 32-bit interval lattice used by the value-range analysis.

An :class:`Interval` is a non-empty range ``[lo, hi]`` of signed 32-bit
values; :data:`TOP` is the full range, so no infinities are needed.  The
empty interval (bottom) is represented as ``None`` at the API level —
:func:`meet` and :func:`refine` return ``None`` when a constraint is
unsatisfiable, which the range analysis turns into an unreachable edge.

All transfer functions are *sound with respect to wrap-around*: the target
machine wraps two's-complement arithmetic (see ``repro.sim.machine``), so
any operation whose exact result could leave the 32-bit range returns
:data:`TOP` instead of a wrapped interval.  This loses precision on
deliberately overflowing code but never claims a value the machine cannot
produce — which is what lets the branch evidence promise *zero*
misclassifications.

Division and remainder follow the machine's truncate-toward-zero
semantics; shifts mask their amount to 5 bits exactly as the hardware
does.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "INT32_MIN", "INT32_MAX", "Interval", "TOP", "const",
    "join", "meet", "widen", "transfer_binop", "compare", "refine",
]

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1


@dataclass(frozen=True)
class Interval:
    """A non-empty signed-32-bit range ``[lo, hi]`` (inclusive)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (INT32_MIN <= self.lo <= self.hi <= INT32_MAX):
            raise ValueError(f"malformed interval [{self.lo}, {self.hi}]")

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == INT32_MIN and self.hi == INT32_MAX

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        if self.is_top:
            return "[T]"
        if self.is_const:
            return f"[{self.lo}]"
        return f"[{self.lo}, {self.hi}]"


#: The full signed-32-bit range (lattice top).
TOP = Interval(INT32_MIN, INT32_MAX)


def const(value: int) -> Interval:
    """The singleton interval for a known machine word."""
    if not INT32_MIN <= value <= INT32_MAX:
        raise ValueError(f"constant {value} outside the 32-bit range")
    return Interval(value, value)


def join(a: Interval, b: Interval) -> Interval:
    """Least upper bound (interval hull)."""
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def meet(a: Interval, b: Interval) -> Interval | None:
    """Greatest lower bound; ``None`` when the ranges are disjoint."""
    lo, hi = max(a.lo, b.lo), min(a.hi, b.hi)
    return Interval(lo, hi) if lo <= hi else None


def widen(old: Interval, new: Interval) -> Interval:
    """Classic interval widening: a bound that grew jumps to its extreme.

    Guarantees termination on any ascending chain (each bound can widen at
    most once).
    """
    lo = old.lo if new.lo >= old.lo else INT32_MIN
    hi = old.hi if new.hi <= old.hi else INT32_MAX
    return Interval(lo, hi)


def _clamped(lo: int, hi: int) -> Interval:
    """Interval from exact bounds, degrading to TOP if wrap is possible."""
    if lo < INT32_MIN or hi > INT32_MAX:
        return TOP
    return Interval(lo, hi)


def _tdiv(a: int, b: int) -> int:
    """Truncate-toward-zero division (machine semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _shift_range_ok(b: Interval) -> bool:
    """True when the shift amount is statically within [0, 31] (so the
    hardware's ``& 31`` mask is the identity)."""
    return 0 <= b.lo and b.hi <= 31


def transfer_binop(op: str, a: Interval, b: Interval) -> Interval:
    """Abstract transfer for an integer BinOp: the tightest interval (from
    this family) containing every machine result of ``x op y`` for
    ``x in a, y in b``."""
    if op == "add":
        return _clamped(a.lo + b.lo, a.hi + b.hi)
    if op == "sub":
        return _clamped(a.lo - b.hi, a.hi - b.lo)
    if op == "mul":
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        return _clamped(min(corners), max(corners))
    if op == "div":
        if b.contains(0):
            return TOP  # division by zero traps; stay conservative
        corners = (_tdiv(a.lo, b.lo), _tdiv(a.lo, b.hi),
                   _tdiv(a.hi, b.lo), _tdiv(a.hi, b.hi))
        return _clamped(min(corners), max(corners))
    if op == "rem":
        if b.contains(0):
            return TOP
        m = max(abs(b.lo), abs(b.hi)) - 1  # |a rem b| <= max|b| - 1
        if a.lo >= 0:
            return Interval(0, min(a.hi, m))
        if a.hi <= 0:
            return Interval(max(a.lo, -m), 0)
        return Interval(-m, m)
    if op == "and":
        if a.lo >= 0 and b.lo >= 0:
            return Interval(0, min(a.hi, b.hi))
        if a.lo >= 0:
            return Interval(0, a.hi)  # x & y <= x for x >= 0
        if b.lo >= 0:
            return Interval(0, b.hi)
        return TOP
    if op in ("or", "xor"):
        if a.lo >= 0 and b.lo >= 0:
            bits = max(a.hi, b.hi).bit_length()
            upper = min(INT32_MAX, (1 << bits) - 1)
            return Interval(0, upper)
        return TOP
    if op == "shl":
        if _shift_range_ok(b) and a.lo >= 0:
            hi = a.hi << b.hi
            return _clamped(a.lo << b.lo, hi)
        return TOP
    if op == "shr":
        if _shift_range_ok(b):
            corners = (a.lo >> b.lo, a.lo >> b.hi,
                       a.hi >> b.lo, a.hi >> b.hi)
            return Interval(min(corners), max(corners))
        return TOP
    if op == "sru":
        if _shift_range_ok(b) and b.lo >= 1:
            # any value, shifted right logically by >= 1, is in
            # [0, 2^(32 - b.lo) - 1]
            return Interval(0, min(INT32_MAX, (1 << (32 - b.lo)) - 1))
        if _shift_range_ok(b) and a.lo >= 0:
            corners = (a.lo >> b.lo, a.lo >> b.hi,
                       a.hi >> b.lo, a.hi >> b.hi)
            return Interval(min(corners), max(corners))
        return TOP
    if op == "slt":
        if a.hi < b.lo:
            return const(1)
        if a.lo >= b.hi:
            return const(0)
        return Interval(0, 1)
    if op == "sltu":
        if a.lo >= 0 and b.lo >= 0:
            # matches signed comparison on the non-negative range
            if a.hi < b.lo:
                return const(1)
            if a.lo >= b.hi:
                return const(0)
        return Interval(0, 1)
    return TOP


def compare(op: str, a: Interval, b: Interval) -> bool | None:
    """Decide ``a op b`` when the intervals force one outcome.

    Returns ``True``/``False`` when every pair ``(x in a, y in b)``
    agrees, else ``None``.
    """
    if op == "eq":
        if a.is_const and b.is_const and a.lo == b.lo:
            return True
        if meet(a, b) is None:
            return False
        return None
    if op == "ne":
        decided = compare("eq", a, b)
        return None if decided is None else not decided
    if op == "lt":
        if a.hi < b.lo:
            return True
        if a.lo >= b.hi:
            return False
        return None
    if op == "le":
        if a.hi <= b.lo:
            return True
        if a.lo > b.hi:
            return False
        return None
    if op == "gt":
        decided = compare("le", a, b)
        return None if decided is None else not decided
    if op == "ge":
        decided = compare("lt", a, b)
        return None if decided is None else not decided
    raise ValueError(f"unknown comparison op {op!r}")


def refine(op: str, a: Interval, b: Interval,
           outcome: bool) -> tuple[Interval | None, Interval | None]:
    """Refine ``(a, b)`` assuming ``a op b`` evaluated to *outcome*.

    Returns the refined intervals; either may be ``None`` when the
    assumption is unsatisfiable (the edge cannot execute).
    """
    if not outcome:
        negation = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                    "le": "gt", "gt": "le"}[op]
        return refine(negation, a, b, True)
    if op == "eq":
        both = meet(a, b)
        return both, both
    if op == "ne":
        ra: Interval | None = a
        rb: Interval | None = b
        if b.is_const and ra is not None:
            ra = _exclude_endpoint(ra, b.lo)
        if a.is_const and rb is not None:
            rb = _exclude_endpoint(rb, a.lo)
        return ra, rb
    if op == "lt":
        ra = meet(a, Interval(INT32_MIN, b.hi - 1)) \
            if b.hi > INT32_MIN else None
        rb = meet(b, Interval(a.lo + 1, INT32_MAX)) \
            if a.lo < INT32_MAX else None
        return ra, rb
    if op == "le":
        return meet(a, Interval(INT32_MIN, b.hi)), \
            meet(b, Interval(a.lo, INT32_MAX))
    if op == "gt":
        rb, ra = refine("lt", b, a, True)
        return ra, rb
    if op == "ge":
        rb, ra = refine("le", b, a, True)
        return ra, rb
    raise ValueError(f"unknown comparison op {op!r}")


def _exclude_endpoint(iv: Interval, value: int) -> Interval | None:
    """Shrink *iv* by one when *value* sits exactly on an endpoint."""
    if iv.is_const and iv.lo == value:
        return None
    if iv.lo == value:
        return Interval(iv.lo + 1, iv.hi)
    if iv.hi == value:
        return Interval(iv.lo, iv.hi - 1)
    return iv
