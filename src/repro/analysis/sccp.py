"""Sparse conditional constant propagation over BLC IR.

The analysis state maps virtual registers to *known machine constants*;
a vreg absent from the state is "not a constant" (or not yet defined —
the analysis is deliberately pessimistic about undefined values, so a
use-before-initialize bug can never manufacture a folding opportunity).
Constant evaluation reuses the optimizer's :func:`~repro.bcc.opt.
_fold_binop`, i.e. exactly the machine's wrap-around / truncating
semantics — the fold-vs-machine differential test pins this equivalence.

What makes it *conditional* (the SCCP part): branch edges whose
comparison is decided by the incoming constants are pruned via the
engine's :data:`~repro.analysis.dataflow.UNREACHABLE` edge result, so
constants merge only over edges that can actually execute, and equality
branches bind their tested register to the compared constant along the
matching edge.

Clients:

* ``am.get("sccp")`` — the cached analysis result (registered on
  :data:`repro.bcc.opt.IR_ANALYSES`);
* :func:`evaluate_cbr` — decide one conditional branch, or ``None``;
* :func:`sccp_fold` — the ``sccp-fold`` transformation: rewrite every
  decided, reachable conditional branch into an unconditional jump.
"""

from __future__ import annotations

from typing import Union

from repro.analysis.dataflow import (
    FORWARD, DataflowProblem, DataflowResult, Unreachable, UNREACHABLE,
    solve,
)
from repro.bcc.ir import (
    BinOp, CBr, Copy, Imm, IRBlock, IRFunction, Jump, LoadConst,
)
from repro.bcc.opt import IR_ANALYSES, _CMP_EVAL, _fold_binop

__all__ = ["ConstState", "SCCPProblem", "sccp", "evaluate_cbr",
           "sccp_fold"]

#: vreg -> known constant; absence means "not (known to be) a constant"
ConstState = dict[int, int]


def _step(inst: object, env: ConstState) -> None:
    """Update *env* in place across one instruction."""
    if isinstance(inst, LoadConst):
        env[inst.dst] = inst.value
        return
    if isinstance(inst, Copy):
        if inst.src in env:
            env[inst.dst] = env[inst.src]
        else:
            env.pop(inst.dst, None)
        return
    if isinstance(inst, BinOp):
        av = env.get(inst.a)
        bv = inst.b.value if isinstance(inst.b, Imm) else env.get(inst.b)
        if av is not None and bv is not None:
            folded = _fold_binop(inst.op, av, bv)
            if folded is not None:
                env[inst.dst] = folded
                return
        env.pop(inst.dst, None)
        return
    for d in inst.defs():  # type: ignore[attr-defined]
        env.pop(d, None)


def _cbr_operands(cbr: CBr, env: ConstState) -> tuple[int | None,
                                                      int | None]:
    av = env.get(cbr.a)
    bv = cbr.b.value if isinstance(cbr.b, Imm) else env.get(cbr.b)
    return av, bv


class SCCPProblem(DataflowProblem[ConstState]):
    """Forward constant propagation with executable-edge pruning."""

    name = "sccp"
    direction = FORWARD

    def boundary(self, block: IRBlock) -> ConstState:
        return {}

    def join(self, a: ConstState, b: ConstState) -> ConstState:
        if len(b) < len(a):
            a, b = b, a
        return {v: c for v, c in a.items() if b.get(v) == c}

    def transfer(self, block: IRBlock, state: ConstState) -> ConstState:
        env = dict(state)
        for inst in block.instructions:
            _step(inst, env)
        return env

    def transfer_edge(self, src: IRBlock, dst_label: str,
                      state: ConstState) -> Union[ConstState, Unreachable]:
        term = src.terminator if src.instructions else None
        if not isinstance(term, CBr) or term.fp:
            return state
        if term.true_label == term.false_label:
            return state
        av, bv = _cbr_operands(term, state)
        branch_true = dst_label == term.true_label
        if av is not None and bv is not None:
            outcome = _CMP_EVAL[term.op](av, bv)
            if outcome != branch_true:
                return UNREACHABLE
        # equality refinement: along the edge where `a == b` holds, a
        # register compared against a known constant *is* that constant
        holds_eq = (term.op == "eq" and branch_true) or \
            (term.op == "ne" and not branch_true)
        if holds_eq:
            refined = dict(state)
            if bv is not None and av is None:
                refined[term.a] = bv
            elif av is not None and bv is None and \
                    not isinstance(term.b, Imm):
                refined[term.b] = av
            return refined
        return state


def sccp(func: IRFunction) -> DataflowResult[ConstState]:
    """Solve SCCP over *func* (prefer ``am.get("sccp")`` for caching)."""
    return solve(func.blocks, SCCPProblem())


@IR_ANALYSES.register("sccp",
                      description="sparse conditional constant propagation "
                                  "(constant env per block, unreachable-"
                                  "edge pruning)")
def _sccp_analysis(func: IRFunction, am: object) -> \
        DataflowResult[ConstState]:
    return sccp(func)


def evaluate_cbr(state: ConstState, cbr: CBr) -> bool | None:
    """Decide *cbr* under the constant *state*, or ``None`` if unknown."""
    if cbr.fp:
        return None
    av, bv = _cbr_operands(cbr, state)
    if av is None or bv is None:
        return None
    return bool(_CMP_EVAL[cbr.op](av, bv))


def sccp_fold(func: IRFunction,
              result: DataflowResult[ConstState]) -> bool:
    """Rewrite every SCCP-decided conditional branch into a jump.

    Only branches in blocks the analysis proved *reachable* are folded
    (an unreachable block's state carries no evidence); unreachable
    blocks are left for ``simplify-cfg`` to collect once folding has cut
    their incoming edges.  Returns True when anything changed.
    """
    changed = False
    for block in func.blocks:
        if not block.instructions:
            continue
        term = block.terminator
        if not isinstance(term, CBr):
            continue
        state = result.block_out.get(block.label, UNREACHABLE)
        if isinstance(state, Unreachable):
            continue
        outcome = evaluate_cbr(state, term)
        if outcome is None:
            continue
        target = term.true_label if outcome else term.false_label
        block.instructions[-1] = Jump(target)
        changed = True
    return changed
