"""Generic lattice-based dataflow engine (worklist solver).

The engine is deliberately structure-agnostic: it solves any forward or
backward dataflow problem over a list of *block-like* objects — anything
with a ``label`` attribute and a ``successor_labels()`` method, which both
:class:`repro.bcc.ir.IRBlock` and the machine-level CFG blocks satisfy.

A problem is described by subclassing :class:`DataflowProblem`:

* ``boundary(block)`` — the state entering the entry block (forward) or
  leaving each exit block (backward);
* ``join(a, b)`` — the lattice join (must be commutative/associative and
  monotone for termination);
* ``transfer(block, state)`` — the block transfer function;
* ``transfer_edge(src, dst_label, state)`` — optional per-edge refinement
  (branch-condition refinement, unreachable-edge pruning). Returning
  :data:`UNREACHABLE` removes the edge's contribution entirely — this is
  what makes the constant-propagation client *conditional* (SCCP-style);
* ``widen(old, new)`` — optional widening applied at loop heads after
  ``widen_after`` visits, for infinite-ascending-chain lattices (the
  interval client).

:data:`UNREACHABLE` is the solver-managed bottom element: client join /
transfer functions never see it.  Blocks whose input never becomes
reachable keep it in the result, which clients read as "this block cannot
execute under the analysis assumptions".

The solver iterates a worklist in reverse-postorder (postorder for
backward problems), counts iterations into the ``dataflow.<name>``
telemetry counters, and raises :class:`DataflowDivergenceError` if a
(necessarily non-monotone or non-widening) problem fails to converge
within a generous bound.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Generic, Protocol, TypeVar, Union

from repro import telemetry
from repro.errors import ReproError

__all__ = [
    "UNREACHABLE", "Unreachable", "BlockLike", "DataflowProblem",
    "DataflowResult", "DataflowDivergenceError", "FORWARD", "BACKWARD",
    "solve",
]

FORWARD = "forward"
BACKWARD = "backward"

S = TypeVar("S")


class Unreachable:
    """Solver-managed bottom: "no execution reaches this point"."""

    _instance: "Unreachable | None" = None

    def __new__(cls) -> "Unreachable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<unreachable>"


#: The singleton bottom element (identity of the solver-level join).
UNREACHABLE = Unreachable()


class BlockLike(Protocol):
    """Anything the solver can traverse: IRBlocks, CFG blocks, test stubs."""

    label: str

    def successor_labels(self) -> Sequence[str]: ...


class DataflowDivergenceError(ReproError):
    """The solver failed to converge within its iteration budget."""

    phase = "analyze"


class DataflowProblem(Generic[S]):
    """Base class describing one dataflow problem (see module docstring)."""

    #: name used for telemetry counters and diagnostics
    name: str = "dataflow"
    #: :data:`FORWARD` or :data:`BACKWARD`
    direction: str = FORWARD
    #: number of visits to a loop head before :meth:`widen` is applied
    widen_after: int = 2
    #: bounded decreasing (narrowing) sweeps run after convergence with
    #: widening disabled.  Each sweep recomputes every state from the
    #: current post-fixpoint; monotone transfer functions can only descend
    #: toward the least fixpoint, so every intermediate sweep is sound and
    #: termination is by the fixed bound.  Recovers precision that widening
    #: discarded (e.g. loop-counter upper bounds re-established by branch
    #: refinement on the back edge).
    narrow_iterations: int = 0

    def boundary(self, block: BlockLike) -> S:
        """State at the entry block (forward) / each exit block (backward)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Lattice join of two states."""
        raise NotImplementedError

    def transfer(self, block: BlockLike, state: S) -> S:
        """State after (forward) / before (backward) executing *block*."""
        raise NotImplementedError

    def transfer_edge(self, src: BlockLike, dst_label: str,
                      state: S) -> Union[S, Unreachable]:
        """Refine *state* along the edge ``src -> dst_label``.

        Default: pass the state through unchanged.  Return
        :data:`UNREACHABLE` to prune the edge.
        """
        return state

    def widen(self, old: S, new: S) -> S:
        """Widening operator (default: no widening, return *new*)."""
        return new

    def equal(self, a: S, b: S) -> bool:
        """State equality used for the fixpoint test."""
        return bool(a == b)


@dataclass
class DataflowResult(Generic[S]):
    """Solved IN/OUT states per block label (forward orientation: ``block_in``
    is the state before the block, ``block_out`` after it; for backward
    problems the roles are mirrored)."""

    problem_name: str
    direction: str
    block_in: dict[str, Union[S, Unreachable]] = field(default_factory=dict)
    block_out: dict[str, Union[S, Unreachable]] = field(default_factory=dict)
    iterations: int = 0

    def reachable(self, label: str) -> bool:
        """True unless the solver proved *label* unreachable."""
        return not isinstance(self.block_in.get(label, UNREACHABLE),
                              Unreachable)


def _postorder(blocks: Sequence[BlockLike],
               entry: str) -> list[str]:
    """Postorder over reachable labels (iterative DFS)."""
    by_label = {b.label: b for b in blocks}
    order: list[str] = []
    visited: set[str] = set()
    # stack of (label, iterator over successors)
    stack: list[tuple[str, list[str]]] = [(entry, list(
        by_label[entry].successor_labels()))]
    visited.add(entry)
    while stack:
        label, succs = stack[-1]
        while succs:
            nxt = succs.pop(0)
            if nxt not in visited and nxt in by_label:
                visited.add(nxt)
                stack.append((nxt, list(by_label[nxt].successor_labels())))
                break
        else:
            order.append(label)
            stack.pop()
    return order


def solve(blocks: Sequence[BlockLike], problem: DataflowProblem[S],
          entry: str | None = None,
          max_iterations: int | None = None) -> DataflowResult[S]:
    """Run the worklist solver for *problem* over *blocks*.

    *entry* defaults to the first block's label.  For backward problems
    the boundary applies to every block without successors.  Blocks
    unreachable from the entry (forward) keep :data:`UNREACHABLE` states.
    """
    if not blocks:
        return DataflowResult(problem.name, problem.direction)
    if entry is None:
        entry = blocks[0].label
    by_label: dict[str, BlockLike] = {b.label: b for b in blocks}
    forward = problem.direction == FORWARD

    # predecessor edges (forward) / successor edges (backward), as the
    # "where does my input come from" map
    sources: dict[str, list[str]] = {b.label: [] for b in blocks}
    if forward:
        for b in blocks:
            for s in b.successor_labels():
                if s in sources:
                    sources[s].append(b.label)
    else:
        for b in blocks:
            sources[b.label] = [s for s in b.successor_labels()
                                if s in by_label]

    postorder = _postorder(blocks, entry)
    rpo = list(reversed(postorder))
    iteration_order = rpo if forward else postorder
    position = {label: i for i, label in enumerate(iteration_order)}
    # widening points: targets of retreating edges w.r.t. iteration order
    widen_points: set[str] = set()
    for b in blocks:
        if b.label not in position:
            continue
        for s in b.successor_labels():
            if s in position:
                src, dst = (b.label, s) if forward else (s, b.label)
                if src in position and position[dst] <= position[src]:
                    widen_points.add(dst)

    result: DataflowResult[S] = DataflowResult(problem.name,
                                               problem.direction)
    state_in: dict[str, Union[S, Unreachable]] = {
        b.label: UNREACHABLE for b in blocks}
    state_out: dict[str, Union[S, Unreachable]] = {
        b.label: UNREACHABLE for b in blocks}

    roots: list[str]
    if forward:
        roots = [entry]
    else:
        roots = [label for label in iteration_order
                 if not sources[label]] or [iteration_order[0]]

    worklist: deque[str] = deque(
        label for label in iteration_order)
    queued: set[str] = set(worklist)
    visits: dict[str, int] = {}
    budget = max_iterations if max_iterations is not None else \
        max(1000, 64 * len(blocks))
    iterations = 0

    def _input_state(label: str, block: BlockLike) -> Union[S, Unreachable]:
        """Join of all (edge-refined) source contributions into *label*."""
        new_in: Union[S, Unreachable]
        if label in roots or (forward and label == entry):
            new_in = problem.boundary(block)
        else:
            new_in = UNREACHABLE
        for src_label in sources[label]:
            src_out = state_out[src_label]
            if isinstance(src_out, Unreachable):
                continue
            if forward:
                contrib = problem.transfer_edge(by_label[src_label], label,
                                                src_out)
            else:
                contrib = problem.transfer_edge(block, src_label, src_out)
            if isinstance(contrib, Unreachable):
                continue
            if isinstance(new_in, Unreachable):
                new_in = contrib
            else:
                new_in = problem.join(new_in, contrib)
        return new_in

    while worklist:
        iterations += 1
        if iterations > budget:
            raise DataflowDivergenceError(
                f"dataflow problem {problem.name!r} failed to converge "
                f"after {budget} iterations over {len(blocks)} blocks "
                f"(non-monotone transfer or missing widening?)")
        label = worklist.popleft()
        queued.discard(label)
        block = by_label[label]
        visits[label] = visits.get(label, 0) + 1

        # -- compute the input state --------------------------------------
        new_in = _input_state(label, block)
        old_in = state_in[label]
        if not isinstance(new_in, Unreachable) \
                and not isinstance(old_in, Unreachable) \
                and label in widen_points \
                and visits[label] > problem.widen_after:
            new_in = problem.widen(old_in, new_in)
        state_in[label] = new_in

        # -- transfer ------------------------------------------------------
        new_out: Union[S, Unreachable]
        if isinstance(new_in, Unreachable):
            new_out = UNREACHABLE
        else:
            new_out = problem.transfer(block, new_in)

        old_out = state_out[label]
        changed = (isinstance(old_out, Unreachable)
                   != isinstance(new_out, Unreachable))
        if not changed and not isinstance(new_out, Unreachable) \
                and not isinstance(old_out, Unreachable):
            changed = not problem.equal(old_out, new_out)
        state_out[label] = new_out
        if changed or visits[label] == 1:
            if forward:
                dependents = [s for s in block.successor_labels()
                              if s in by_label]
            else:
                dependents = [p.label for p in blocks
                              if label in p.successor_labels()]
            for dep in dependents:
                if dep not in queued:
                    worklist.append(dep)
                    queued.add(dep)

    # -- narrowing: bounded decreasing sweeps without widening ------------
    for _ in range(problem.narrow_iterations):
        sweep_changed = False
        for label in iteration_order:
            block = by_label[label]
            new_in = _input_state(label, block)
            if isinstance(new_in, Unreachable):
                new_out: Union[S, Unreachable] = UNREACHABLE
            else:
                new_out = problem.transfer(block, new_in)
            old_out = state_out[label]
            changed = (isinstance(old_out, Unreachable)
                       != isinstance(new_out, Unreachable))
            if not changed and not isinstance(new_out, Unreachable) \
                    and not isinstance(old_out, Unreachable):
                changed = not problem.equal(old_out, new_out)
            state_in[label] = new_in
            state_out[label] = new_out
            sweep_changed = sweep_changed or changed
            iterations += 1
        if not sweep_changed:
            break

    telemetry.get().counter(f"dataflow.{problem.name}.solves").inc()
    telemetry.get().counter(f"dataflow.{problem.name}.iterations").inc(
        iterations)

    if forward:
        result.block_in = state_in
        result.block_out = state_out
    else:
        # mirror so block_in is always "state before the block executes"
        result.block_in = state_out
        result.block_out = state_in
    result.iterations = iterations
    return result
