"""BLC source linter.

Flow-aware, whole-function lint over the type-annotated AST.  Rule
catalog (stable IDs, see docs/static-analysis.md):

========  =============================================================
``L001``  use of a local variable that may be uninitialized on some path
``L002``  unreachable statement (after return/break/continue or an
          if/else in which every branch transfers control away)
``L003``  constant condition (always true / always false); the idiomatic
          infinite-loop forms ``while (1)`` / ``for (;;)`` are exempt
``L004``  dead store: a local is assigned and then reassigned in the
          same straight-line run without the value ever being read
``L005``  suspicious floating-point equality (``==`` / ``!=`` on
          ``double`` operands)
``L006``  provably zero-trip ``for`` loop: literal init and bound where
          the first test already fails (the SCEV closed form,
          :func:`repro.analysis.scev.closed_trip_count`, proves the
          body never executes)
========  =============================================================

Suppression: append ``// lint: disable=L001`` (or a comma list, or
``disable=all``) to the offending line; block comments work as well.

The linter runs sema for type information but tolerates semantically
invalid programs (syntactic rules still apply); parse failures surface
as :class:`~repro.bcc.errors.CompileError` for the CLI to render.  Only
diagnostics in the user's file are reported — the runtime library is
parsed for symbol context but never linted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.parser import parse
from repro.bcc.runtime import RUNTIME_BLC
from repro.bcc.sema import analyze

__all__ = ["LintDiagnostic", "RULES", "lint_source", "lint_path"]

#: rule id -> one-line description (the lint rule catalog)
RULES: dict[str, str] = {
    "L001": "use of a possibly-uninitialized local variable",
    "L002": "unreachable statement",
    "L003": "constant condition",
    "L004": "dead store (value overwritten before any read)",
    "L005": "floating-point equality comparison",
    "L006": "provably zero-trip loop (body never executes)",
}

_SUPPRESS_RE = re.compile(
    r"(?://|/\*).*?lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class LintDiagnostic:
    """One lint finding with its source span."""

    rule: str
    message: str
    filename: str
    line: int
    col: int

    def format(self) -> str:
        return (f"{self.filename}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule ids disabled on that line."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            ids = {part.strip().upper()
                   for part in match.group(1).split(",") if part.strip()}
            out[lineno] = ids
    return out


def _const_value(expr: A.Expr | None) -> int | None:
    """Best-effort compile-time integer value of *expr* (literals only)."""
    if isinstance(expr, (A.IntLit, A.CharLit)):
        return expr.value
    if isinstance(expr, A.Unary):
        inner = _const_value(expr.operand)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "!":
            return int(not inner)
        if expr.op == "~":
            return ~inner
        return None
    if isinstance(expr, A.Binary):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: int(a / b) if b else None,
                "%": lambda a, b: a - b * int(a / b) if b else None,
                "==": lambda a, b: int(a == b),
                "!=": lambda a, b: int(a != b),
                "<": lambda a, b: int(a < b),
                "<=": lambda a, b: int(a <= b),
                ">": lambda a, b: int(a > b),
                ">=": lambda a, b: int(a >= b),
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
                "&": lambda a, b: a & b, "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
            }[expr.op](left, right)
        except (KeyError, ValueError, ZeroDivisionError, TypeError):
            return None
    return None


def _is_double(expr: A.Expr | None) -> bool:
    if isinstance(expr, A.DoubleLit):
        return True
    ctype = getattr(expr, "ctype", None)
    return ctype is not None and bool(ctype.is_double)


class _FunctionLinter:
    """Lints one user-file function definition."""

    def __init__(self, func: A.FuncDef, filename: str) -> None:
        self.func = func
        self.filename = filename
        self.diagnostics: list[LintDiagnostic] = []
        #: locals whose address is taken anywhere — excluded from the
        #: init/dead-store tracking (writes may happen through pointers)
        self.address_taken: set[str] = set()
        self._collect_address_taken(func.body)

    def emit(self, rule: str, message: str, node: A.Node) -> None:
        self.diagnostics.append(LintDiagnostic(
            rule, message, self.filename, node.line, node.col))

    # -- address-taken pre-scan -------------------------------------------

    def _collect_address_taken(self, node: object) -> None:
        if isinstance(node, A.Unary) and node.op == "&" and \
                isinstance(node.operand, A.Ident):
            self.address_taken.add(node.operand.name)
        for child in _children(node):
            self._collect_address_taken(child)

    # -- expression walk (init tracking + expression rules) ----------------

    def visit_expr(self, expr: A.Expr | None, init: set[str],
                   declared: set[str]) -> None:
        """Check reads in *expr* and update *init* with assignments."""
        if expr is None:
            return
        if isinstance(expr, A.Ident):
            self._check_read(expr, init, declared)
            return
        if isinstance(expr, A.Unary):
            if expr.op == "&" and isinstance(expr.operand, A.Ident):
                init.add(expr.operand.name)  # may be written via pointer
                return
            self.visit_expr(expr.operand, init, declared)
            return
        if isinstance(expr, A.Assign):
            if expr.op is not None:  # compound assignment reads first
                self.visit_expr(expr.target, init, declared)
            elif not isinstance(expr.target, A.Ident):
                self.visit_expr(expr.target, init, declared)
            self.visit_expr(expr.value, init, declared)
            if isinstance(expr.target, A.Ident):
                init.add(expr.target.name)
            return
        if isinstance(expr, A.IncDec):
            self.visit_expr(expr.operand, init, declared)
            return
        if isinstance(expr, A.Binary):
            self.visit_expr(expr.left, init, declared)
            if expr.op in ("&&", "||"):
                # right side conditionally evaluated: reads are checked,
                # but assignments inside it are not guaranteed
                branch = set(init)
                self.visit_expr(expr.right, branch, declared)
            else:
                self.visit_expr(expr.right, init, declared)
            if expr.op in ("==", "!=") and \
                    (_is_double(expr.left) or _is_double(expr.right)):
                self.emit("L005",
                          f"floating-point `{expr.op}` is exact; "
                          f"comparing computed doubles for equality "
                          f"rarely means what it says", expr)
            return
        if isinstance(expr, A.Cond):
            self.visit_expr(expr.cond, init, declared)
            then_env, else_env = set(init), set(init)
            self.visit_expr(expr.then, then_env, declared)
            self.visit_expr(expr.otherwise, else_env, declared)
            init |= (then_env & else_env)
            return
        for child in _children(expr):
            if isinstance(child, A.Expr):
                self.visit_expr(child, init, declared)

    def _check_read(self, ident: A.Ident, init: set[str],
                    declared: set[str]) -> None:
        name = ident.name
        symbol = getattr(ident, "symbol", None)
        kind = getattr(symbol, "kind", None)
        if kind not in (None, "local"):
            return  # params and globals are always initialized
        if name not in declared or name in self.address_taken:
            return
        if name not in init:
            self.emit("L001",
                      f"{name!r} may be used before it is initialized",
                      ident)
            init.add(name)  # one report per flow path

    # -- statement walk ----------------------------------------------------

    def visit_stmt(self, stmt: A.Stmt | None, init: set[str],
                   declared: set[str]) -> bool:
        """Lint *stmt*; returns True when it always transfers control
        away (return/break/continue on every path)."""
        if stmt is None or isinstance(stmt, A.Empty):
            return False
        if isinstance(stmt, A.Block):
            return self._visit_block(stmt, init, declared)
        if isinstance(stmt, A.VarDecl):
            declared.add(stmt.name)
            if stmt.init is not None:
                self.visit_expr(stmt.init, init, declared)
                init.add(stmt.name)
            ctype = getattr(getattr(stmt, "symbol", None), "ctype", None)
            if ctype is not None and not ctype.is_scalar:
                init.add(stmt.name)  # aggregates: storage exists
            return False
        if isinstance(stmt, A.ExprStmt):
            self.visit_expr(stmt.expr, init, declared)
            return False
        if isinstance(stmt, A.If):
            self._check_condition(stmt.cond, loop=False)
            self.visit_expr(stmt.cond, init, declared)
            then_env, else_env = set(init), set(init)
            then_ends = self.visit_stmt(stmt.then, then_env, declared)
            else_ends = self.visit_stmt(stmt.otherwise, else_env,
                                        declared)
            if stmt.otherwise is None:
                else_ends = False
            if then_ends and else_ends:
                return True
            if then_ends:
                init |= else_env
            elif else_ends:
                init |= then_env
            else:
                init |= (then_env & else_env)
            return False
        if isinstance(stmt, A.While):
            self._check_condition(stmt.cond, loop=True)
            self.visit_expr(stmt.cond, init, declared)
            body_env = set(init)
            self.visit_stmt(stmt.body, body_env, declared)
            return False  # body may run zero times
        if isinstance(stmt, A.DoWhile):
            ended = self.visit_stmt(stmt.body, init, declared)
            self._check_condition(stmt.cond, loop=True)
            if not ended:
                self.visit_expr(stmt.cond, init, declared)
            return False
        if isinstance(stmt, A.For):
            self.visit_stmt(stmt.init, init, declared)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, loop=True)
                self._check_zero_trip(stmt)
                self.visit_expr(stmt.cond, init, declared)
            body_env = set(init)
            self.visit_stmt(stmt.body, body_env, declared)
            if stmt.step is not None:
                self.visit_expr(stmt.step, body_env, declared)
            return False
        if isinstance(stmt, A.Return):
            self.visit_expr(stmt.value, init, declared)
            return True
        if isinstance(stmt, (A.Break, A.Continue)):
            return True
        return False

    def _visit_block(self, block: A.Block, init: set[str],
                     declared: set[str]) -> bool:
        ended = False
        reported_unreachable = False
        for stmt in block.statements:
            if ended and not reported_unreachable \
                    and not isinstance(stmt, A.Empty):
                self.emit("L002", "statement is unreachable", stmt)
                reported_unreachable = True
            if not ended:
                ended = self.visit_stmt(stmt, init, declared)
            else:
                # still lint the dead code with a scratch environment
                self.visit_stmt(stmt, set(init), declared)
        self._check_dead_stores(block)
        return ended

    # -- L003 --------------------------------------------------------------

    def _check_condition(self, cond: A.Expr | None, loop: bool) -> None:
        if cond is None:
            return
        value = _const_value(cond)
        if value is None:
            return
        if loop and isinstance(cond, (A.IntLit, A.CharLit)) and value:
            return  # `while (1)`: the idiomatic infinite loop
        outcome = "true" if value else "false"
        self.emit("L003", f"condition is always {outcome}", cond)

    # -- L006 --------------------------------------------------------------

    _PRED = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
             "==": "eq", "!=": "ne"}
    _MIRROR = {"lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
               "eq": "eq", "ne": "ne"}

    @staticmethod
    def _for_init(init: A.Stmt | None) -> tuple[str, int] | None:
        """``i = <const>`` / ``int i = <const>`` -> (name, base value)."""
        if isinstance(init, A.VarDecl) and init.init is not None:
            value = _const_value(init.init)
            return None if value is None else (init.name, value)
        if isinstance(init, A.ExprStmt) and \
                isinstance(init.expr, A.Assign) and \
                init.expr.op is None and \
                isinstance(init.expr.target, A.Ident):
            value = _const_value(init.expr.value)
            return (None if value is None
                    else (init.expr.target.name, value))
        return None

    def _for_test(self, cond: A.Expr,
                  name: str) -> tuple[str, int] | None:
        """``i <op> <const>`` (either side) -> (normalized pred, bound)."""
        if not isinstance(cond, A.Binary) or cond.op not in self._PRED:
            return None
        pred = self._PRED[cond.op]
        if isinstance(cond.left, A.Ident) and cond.left.name == name:
            bound = _const_value(cond.right)
            return None if bound is None else (pred, bound)
        if isinstance(cond.right, A.Ident) and cond.right.name == name:
            bound = _const_value(cond.left)
            return (None if bound is None
                    else (self._MIRROR[pred], bound))
        return None

    @staticmethod
    def _for_step(step: A.Expr | None, name: str) -> int | None:
        """The per-iteration constant increment of *name*, if decodable."""
        if isinstance(step, A.IncDec) and \
                isinstance(step.operand, A.Ident) and \
                step.operand.name == name:
            return 1 if step.op == "++" else -1
        if not (isinstance(step, A.Assign)
                and isinstance(step.target, A.Ident)
                and step.target.name == name):
            return None
        if step.op in ("+", "-"):
            value = _const_value(step.value)
            if value is None:
                return None
            return value if step.op == "+" else -value
        if step.op is None and isinstance(step.value, A.Binary) and \
                step.value.op in ("+", "-"):
            binary = step.value
            if isinstance(binary.left, A.Ident) and \
                    binary.left.name == name:
                value = _const_value(binary.right)
                if value is not None:
                    return value if binary.op == "+" else -value
            if binary.op == "+" and isinstance(binary.right, A.Ident) \
                    and binary.right.name == name:
                return _const_value(binary.left)
        return None

    def _check_zero_trip(self, stmt: A.For) -> None:
        """L006: the canonical counted-``for`` shape with a literal base
        and bound whose *first* test already fails.  Nothing runs between
        the init store and the test (the condition is a pure compare), so
        the claim holds even for address-taken or global counters."""
        # lazy import: repro.analysis.scev sits above this module
        from repro.analysis.scev import closed_trip_count

        seed = self._for_init(stmt.init)
        if seed is None or stmt.cond is None:
            return
        name, base = seed
        decoded = self._for_test(stmt.cond, name)
        if decoded is None:
            return
        pred, bound = decoded
        step = self._for_step(stmt.step, name)
        if closed_trip_count(base, step or 0, bound, pred,
                             offset=0) == 0:
            self.emit("L006",
                      f"loop is provably zero-trip: {name!r} starts at "
                      f"{base}, so the first test already fails and the "
                      f"body never executes", stmt.cond)

    # -- L004 --------------------------------------------------------------

    @staticmethod
    def _plain_store_target(stmt: A.Stmt) -> A.Ident | None:
        """The Ident a statement plainly assigns, if it is a simple
        ``x = expr;`` / ``int x = expr;`` store."""
        if isinstance(stmt, A.ExprStmt) and \
                isinstance(stmt.expr, A.Assign) and \
                stmt.expr.op is None and \
                isinstance(stmt.expr.target, A.Ident):
            return stmt.expr.target
        return None

    def _check_dead_stores(self, block: A.Block) -> None:
        #: name -> (store node, value-expression) of the pending store
        pending: dict[str, A.Node] = {}
        for stmt in block.statements:
            target = self._plain_store_target(stmt)
            value = stmt.expr.value if target is not None else None
            if target is None and isinstance(stmt, A.VarDecl) and \
                    stmt.init is not None:
                # declarations start a pending store as well
                reads = _idents_read(stmt.init)
                for name in list(pending):
                    if name in reads:
                        del pending[name]
                pending[stmt.name] = stmt
                continue
            if target is None:
                # any other statement is a barrier (control flow, calls,
                # pointer writes): drop everything
                pending.clear()
                continue
            reads = _idents_read(value)
            for name in list(pending):
                if name in reads:
                    del pending[name]
            name = target.name
            if _contains_call(value):
                # the overwritten value is dead, but the call makes the
                # statement effectful — keep it simple, reset
                pending.pop(name, None)
            elif name in pending and name not in self.address_taken:
                prior = pending[name]
                self.emit("L004",
                          f"value stored to {name!r} is overwritten "
                          f"before it is ever read", prior)
                pending[name] = stmt
            else:
                pending[name] = stmt

    # -- driver ------------------------------------------------------------

    def run(self) -> list[LintDiagnostic]:
        init = {p.name for p in self.func.params}
        declared: set[str] = set()
        self.visit_stmt(self.func.body, init, declared)
        return self.diagnostics


def _children(node: object) -> list[object]:
    """AST children of a dataclass node (lists flattened)."""
    out: list[object] = []
    if not isinstance(node, A.Node):
        return out
    for value in vars(node).values():
        if isinstance(value, A.Node):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, A.Node))
    return out


def _idents_read(expr: object) -> set[str]:
    """Names read inside *expr* (plain-assignment targets excluded)."""
    names: set[str] = set()

    def walk(node: object) -> None:
        if isinstance(node, A.Ident):
            names.add(node.name)
            return
        if isinstance(node, A.Assign) and node.op is None and \
                isinstance(node.target, A.Ident):
            walk(node.value)
            return
        for child in _children(node):
            walk(child)

    walk(expr)
    return names


def _contains_call(expr: object) -> bool:
    if isinstance(expr, A.Call):
        return True
    return any(_contains_call(c) for c in _children(expr))


def lint_source(source: str, filename: str = "<input>"
                ) -> list[LintDiagnostic]:
    """Lint BLC *source*; returns diagnostics sorted by position.

    Raises :class:`~repro.bcc.errors.CompileError` only for parse
    failures; type errors degrade the type-aware rules gracefully.
    """
    decls: list[A.Node] = []
    decls.extend(parse(RUNTIME_BLC, "<runtime>").decls)
    user = parse(source, filename)
    decls.extend(user.decls)
    program = A.Program(decls)
    try:
        analyze(program)
    except CompileError:
        pass  # lint what we can without full type annotations
    suppressed = _suppressions(source)
    diagnostics: list[LintDiagnostic] = []
    for decl in user.decls:
        if isinstance(decl, A.FuncDef) and decl.body is not None:
            diagnostics.extend(
                _FunctionLinter(decl, filename).run())
    kept = []
    for diag in sorted(diagnostics, key=lambda d: (d.line, d.col, d.rule)):
        rules = suppressed.get(diag.line, set())
        if diag.rule in rules or "ALL" in rules:
            continue
        kept.append(diag)
    return kept


def lint_path(path: str) -> list[LintDiagnostic]:
    """Lint the BLC file at *path*."""
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), path)
