"""Static-analysis subsystem: dataflow engine, IR analyses, verifier, lint.

Layers (each importable on its own):

* :mod:`repro.analysis.dataflow` — the generic worklist solver
  (forward/backward, configurable join/transfer, per-edge refinement,
  widening hook);
* :mod:`repro.analysis.lattice` — the 32-bit interval lattice;
* :mod:`repro.analysis.sccp` / :mod:`~repro.analysis.ranges` /
  :mod:`~repro.analysis.reaching` — IR analyses registered on
  :data:`repro.bcc.opt.IR_ANALYSES` (memoized + invalidated through the
  pass manager, with ``analysis.<name>.compute/reuse`` telemetry);
* :mod:`repro.analysis.verify` — the IR verifier behind
  ``--verify-each``;
* :mod:`repro.analysis.branches` — always/never-taken branch evidence
  exported to the prediction core (the ``Range`` heuristic);
* :mod:`repro.analysis.lint` — the BLC source linter
  (``python -m repro.bcc FILE --lint``).

See docs/static-analysis.md for the full methodology.
"""

from repro.analysis.branches import (
    BranchEvidence, BranchFact, ExecutableEvidence,
    analyze_branch_evidence, attach_evidence, evidence_of,
)
from repro.analysis.dataflow import (
    BACKWARD, FORWARD, UNREACHABLE, DataflowDivergenceError,
    DataflowProblem, DataflowResult, Unreachable, solve,
)
from repro.analysis.lattice import (
    INT32_MAX, INT32_MIN, TOP, Interval,
)
from repro.analysis.lint import LintDiagnostic, RULES, lint_path, \
    lint_source
from repro.analysis.ranges import RangeProblem, ranges
from repro.analysis.reaching import ReachingDefinitions, \
    reaching_definitions
from repro.analysis.sccp import SCCPProblem, sccp, sccp_fold
from repro.analysis.scev import (
    AddRec, LoopTrip, SCEVInfo, analyze_scev, closed_trip_count,
)
from repro.analysis.verify import (
    IRVerifyError, VerifyDiagnostic, VerifyReport, assert_valid,
    verify_function, verify_program,
)

__all__ = [
    "FORWARD", "BACKWARD", "UNREACHABLE", "Unreachable",
    "DataflowProblem", "DataflowResult", "DataflowDivergenceError",
    "solve",
    "Interval", "TOP", "INT32_MIN", "INT32_MAX",
    "SCCPProblem", "sccp", "sccp_fold",
    "RangeProblem", "ranges",
    "AddRec", "LoopTrip", "SCEVInfo", "analyze_scev", "closed_trip_count",
    "ReachingDefinitions", "reaching_definitions",
    "IRVerifyError", "VerifyDiagnostic", "VerifyReport",
    "verify_function", "verify_program", "assert_valid",
    "BranchFact", "BranchEvidence", "ExecutableEvidence",
    "analyze_branch_evidence", "attach_evidence", "evidence_of",
    "LintDiagnostic", "RULES", "lint_source", "lint_path",
]
