"""IR verifier: structural, type, and dataflow invariants over BLC IR.

The verifier is the contract every transformation pass must preserve.
It checks, per function:

* **CFG well-formedness** — non-empty blocks, unique labels, exactly one
  terminator and only in the last position, every branch/jump target
  resolves, plus unreachable-block *accounting* (reported, never an
  error: ``local-propagate`` legitimately strands blocks that
  ``simplify-cfg`` collects later);
* **register invariants** — every vreg has a registered class, and each
  instruction's operands/destination have the class and operation names
  the code generator assumes (``V008``/``V009``), including the backend
  contract that an integer ``CBr`` immediate must be zero (``V010``);
* **memory invariants** — static frame-slot / global accesses stay in
  bounds for their access width (``V011``/``V014``);
* **call/return arity** — with program context, call sites are checked
  against the callee's parameter list and observed return class
  (``V012``/``V013``);
* **instruction-instance uniqueness** — no ``IRInst`` object appears
  twice in a function (``V015``).  This IR has no phis, so the analog
  of LLVM's phi/predecessor consistency is object identity: passes
  that clone code (``loop-rotate`` tail duplication) must emit fresh
  instruction objects, or a later in-place label/operand rewrite would
  silently edit *both* "copies";
* **loop well-formedness** — every DFS-retreating edge in the
  reachable CFG is a proper back edge whose target dominates its
  source (``V016``).  The IR generator only emits reducible control
  flow and every registered pass (threading, merging, rotation)
  preserves reducibility, so an irreducible CFG means a pass rewired
  a latch or guard incorrectly;
* **def-before-use** — a must-defined forward dataflow (intersection
  join, solved on the generic engine) flags uses not dominated by a
  definition on every path (``W001``, a warning: BLC permits reading an
  uninitialized local, the linter's ``L001`` reports it at source
  level).

Structured output: a :class:`VerifyReport` of :class:`VerifyDiagnostic`
records; :func:`assert_valid` raises :class:`IRVerifyError` (a
:class:`~repro.errors.ReproError` with ``phase="verify"``) when any
*error*-severity diagnostic is present.  The optimizer's
``--verify-each`` mode calls this after every pass that changed a
function (see :func:`repro.bcc.opt.set_verify_each`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    FORWARD, DataflowProblem, Unreachable, solve,
)
from repro.bcc.ir import (
    BIN_OPS, CMP_OPS, FBIN_OPS, FP, INT, MEM_KINDS,
    AddrFrame, AddrGlobal, BinOp, Call, CBr, Copy, Cvt, FBinOp, FNeg,
    FrameSlot, GlobalSym, Imm, IRBlock, IRFunction, IRProgram, Jump,
    Load, LoadConst, LoadFConst, Ret, Store,
)
from repro.cfg.irloops import compute_ir_loops
from repro.errors import ReproError

__all__ = [
    "IRVerifyError", "VerifyDiagnostic", "VerifyReport",
    "verify_function", "verify_program", "assert_valid",
]

#: bytes accessed by each memory kind
_MEM_WIDTH = {"w": 4, "b": 1, "bu": 1, "d": 8}


class IRVerifyError(ReproError):
    """Raised when verification finds an invariant violation."""

    phase = "verify"

    def __init__(self, message: str,
                 diagnostics: "tuple[VerifyDiagnostic, ...]" = (),
                 **context: object) -> None:
        super().__init__(message, **context)  # type: ignore[arg-type]
        self.diagnostics = diagnostics


@dataclass(frozen=True)
class VerifyDiagnostic:
    """One verifier finding, locatable down to the instruction."""

    code: str          #: stable rule id (``Vxxx`` error / ``Wxxx`` warning)
    message: str
    function: str
    block: str | None = None
    index: int | None = None   #: instruction index within the block

    @property
    def is_error(self) -> bool:
        return self.code.startswith("V")

    def format(self) -> str:
        where = f"func {self.function}"
        if self.block is not None:
            where += f", block {self.block}"
        if self.index is not None:
            where += f", inst {self.index}"
        return f"{where}: {self.code}: {self.message}"


@dataclass
class VerifyReport:
    """All diagnostics from one verification run."""

    errors: list[VerifyDiagnostic] = field(default_factory=list)
    warnings: list[VerifyDiagnostic] = field(default_factory=list)
    #: function name -> labels of CFG-unreachable blocks (accounting only)
    unreachable: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def merge(self, other: "VerifyReport") -> None:
        self.errors.extend(other.errors)
        self.warnings.extend(other.warnings)
        self.unreachable.update(other.unreachable)

    def raise_if_errors(self, where: str = "") -> None:
        """Raise :class:`IRVerifyError` when any error is present."""
        if self.ok:
            return
        head = self.errors[0].format()
        suffix = "" if len(self.errors) == 1 else \
            f" (+{len(self.errors) - 1} more)"
        prefix = f"{where}: " if where else ""
        raise IRVerifyError(f"{prefix}IR verification failed: "
                            f"{head}{suffix}",
                            diagnostics=tuple(self.errors))


class _Check:
    """Stateful single-function verification pass."""

    def __init__(self, func: IRFunction,
                 program: IRProgram | None) -> None:
        self.func = func
        self.program = program
        self.report = VerifyReport()
        self.labels = {b.label for b in func.blocks}
        self._globals = (
            {g.label: g for g in program.globals}
            if program is not None else None)
        self._functions = (
            {f.name: f for f in program.functions}
            if program is not None else None)

    def error(self, code: str, message: str, block: str | None = None,
              index: int | None = None) -> None:
        self.report.errors.append(VerifyDiagnostic(
            code, message, self.func.name, block, index))

    def warn(self, code: str, message: str, block: str | None = None,
             index: int | None = None) -> None:
        self.report.warnings.append(VerifyDiagnostic(
            code, message, self.func.name, block, index))

    # -- structure ---------------------------------------------------------

    def check_structure(self) -> bool:
        func = self.func
        if not func.blocks:
            self.error("V001", "function has no blocks")
            return False
        ok = True
        seen: set[str] = set()
        for block in func.blocks:
            if block.label in seen:
                self.error("V002", f"duplicate block label {block.label!r}",
                           block.label)
                ok = False
            seen.add(block.label)
            if not block.instructions:
                self.error("V003", "empty block (no terminator)",
                           block.label)
                ok = False
                continue
            if not block.instructions[-1].is_terminator:
                self.error("V004",
                           f"block does not end in a terminator "
                           f"(last: {block.instructions[-1]!r})",
                           block.label)
                ok = False
            for i, inst in enumerate(block.instructions[:-1]):
                if inst.is_terminator:
                    self.error("V005",
                               f"terminator {inst!r} in the middle of "
                               f"the block", block.label, i)
                    ok = False
            term = block.instructions[-1]
            targets = ([term.label] if isinstance(term, Jump) else
                       [term.true_label, term.false_label]
                       if isinstance(term, CBr) else [])
            for target in targets:
                if target not in self.labels:
                    self.error("V006",
                               f"branch target {target!r} is not a "
                               f"block label", block.label,
                               len(block.instructions) - 1)
                    ok = False
        return ok

    # -- per-instruction invariants ---------------------------------------

    def _klass(self, vreg: int, block: str, index: int) -> str | None:
        klass = self.func.vreg_class.get(vreg)
        if klass is None:
            self.error("V007", f"v{vreg} has no registered register class",
                       block, index)
        return klass

    def _expect(self, vreg: int, expected: str, role: str,
                block: str, index: int) -> None:
        klass = self._klass(vreg, block, index)
        if klass is not None and klass != expected:
            self.error("V008",
                       f"{role} v{vreg} is {klass}, expected {expected}",
                       block, index)

    def _check_static_base(self, base: object, offset: int, width: int,
                           block: str, index: int) -> None:
        if isinstance(base, FrameSlot):
            if not 0 <= base.slot < len(self.func.frame_objects):
                self.error("V011", f"frame slot {base.slot} out of range "
                           f"(function has "
                           f"{len(self.func.frame_objects)} frame "
                           f"objects)", block, index)
                return
            size = self.func.frame_objects[base.slot].size
            if offset < 0 or offset + width > size:
                self.error("V011",
                           f"access of {width} bytes at offset {offset} "
                           f"exceeds frame object {base.slot} "
                           f"({size} bytes)", block, index)
        elif isinstance(base, GlobalSym) and self._globals is not None:
            glob = self._globals.get(base.name)
            if glob is None:
                self.error("V014", f"undefined global {base.name!r}",
                           block, index)
            elif offset < 0 or offset + width > glob.size:
                self.error("V011",
                           f"access of {width} bytes at offset {offset} "
                           f"exceeds global {base.name!r} "
                           f"({glob.size} bytes)", block, index)

    def check_instruction(self, inst: object, label: str,
                          index: int) -> None:
        e = self._expect
        if isinstance(inst, LoadConst):
            e(inst.dst, INT, "LoadConst dst", label, index)
        elif isinstance(inst, LoadFConst):
            e(inst.dst, FP, "LoadFConst dst", label, index)
        elif isinstance(inst, BinOp):
            if inst.op not in BIN_OPS:
                self.error("V009", f"unknown integer op {inst.op!r}",
                           label, index)
            e(inst.dst, INT, "BinOp dst", label, index)
            e(inst.a, INT, "BinOp operand", label, index)
            if isinstance(inst.b, int):
                e(inst.b, INT, "BinOp operand", label, index)
            elif not isinstance(inst.b, Imm):
                self.error("V008", f"BinOp b operand {inst.b!r} is "
                           f"neither a vreg nor an immediate",
                           label, index)
        elif isinstance(inst, FBinOp):
            if inst.op not in FBIN_OPS:
                self.error("V009", f"unknown FP op {inst.op!r}",
                           label, index)
            for role, v in (("FBinOp dst", inst.dst),
                            ("FBinOp operand", inst.a),
                            ("FBinOp operand", inst.b)):
                e(v, FP, role, label, index)
        elif isinstance(inst, FNeg):
            e(inst.dst, FP, "FNeg dst", label, index)
            e(inst.src, FP, "FNeg src", label, index)
        elif isinstance(inst, Cvt):
            if inst.kind == "i2d":
                e(inst.src, INT, "i2d src", label, index)
                e(inst.dst, FP, "i2d dst", label, index)
            elif inst.kind == "d2i":
                e(inst.src, FP, "d2i src", label, index)
                e(inst.dst, INT, "d2i dst", label, index)
            else:
                self.error("V009", f"unknown conversion {inst.kind!r}",
                           label, index)
        elif isinstance(inst, Load):
            if inst.mem not in MEM_KINDS:
                self.error("V009", f"unknown memory kind {inst.mem!r}",
                           label, index)
                return
            e(inst.dst, FP if inst.mem == "d" else INT, "Load dst",
              label, index)
            if isinstance(inst.base, int):
                e(inst.base, INT, "Load base", label, index)
            self._check_static_base(inst.base, inst.offset,
                                    _MEM_WIDTH[inst.mem], label, index)
        elif isinstance(inst, Store):
            if inst.mem not in MEM_KINDS:
                self.error("V009", f"unknown memory kind {inst.mem!r}",
                           label, index)
                return
            e(inst.src, FP if inst.mem == "d" else INT, "Store src",
              label, index)
            if isinstance(inst.base, int):
                e(inst.base, INT, "Store base", label, index)
            self._check_static_base(inst.base, inst.offset,
                                    _MEM_WIDTH[inst.mem], label, index)
        elif isinstance(inst, AddrFrame):
            e(inst.dst, INT, "AddrFrame dst", label, index)
            if not 0 <= inst.slot < len(self.func.frame_objects):
                self.error("V011", f"frame slot {inst.slot} out of range",
                           label, index)
            elif not 0 <= inst.offset <= \
                    self.func.frame_objects[inst.slot].size:
                self.error("V011",
                           f"address offset {inst.offset} outside frame "
                           f"object {inst.slot}", label, index)
        elif isinstance(inst, AddrGlobal):
            e(inst.dst, INT, "AddrGlobal dst", label, index)
            if self._globals is not None and \
                    inst.name not in self._globals:
                self.error("V014", f"undefined global {inst.name!r}",
                           label, index)
        elif isinstance(inst, Copy):
            a = self.func.vreg_class.get(inst.dst)
            b = self.func.vreg_class.get(inst.src)
            self._klass(inst.dst, label, index)
            self._klass(inst.src, label, index)
            if a is not None and b is not None and a != b:
                self.error("V008",
                           f"copy between register classes "
                           f"(v{inst.dst}:{a} <- v{inst.src}:{b})",
                           label, index)
        elif isinstance(inst, Call):
            self._check_call(inst, label, index)
        elif isinstance(inst, Ret):
            if inst.src is not None:
                if inst.ret_class is None:
                    self.error("V013", "Ret has a value but no return "
                               "class", label, index)
                else:
                    e(inst.src, inst.ret_class, "Ret src", label, index)
        elif isinstance(inst, CBr):
            self._check_cbr(inst, label, index)
        elif isinstance(inst, Jump):
            pass
        else:
            self.error("V009", f"unknown instruction {inst!r}",
                       label, index)

    def _check_call(self, inst: Call, label: str, index: int) -> None:
        if len(inst.args) != len(inst.arg_classes):
            self.error("V012",
                       f"call {inst.name!r}: {len(inst.args)} args but "
                       f"{len(inst.arg_classes)} argument classes",
                       label, index)
            return
        for arg, klass in zip(inst.args, inst.arg_classes):
            self._expect(arg, klass, f"call {inst.name!r} argument",
                         label, index)
        if inst.dst is not None:
            if inst.ret_class is None:
                self.error("V012", f"call {inst.name!r} captures a result "
                           f"but is declared void", label, index)
            else:
                self._expect(inst.dst, inst.ret_class,
                             f"call {inst.name!r} result", label, index)
        if self._functions is None:
            return
        callee = self._functions.get(inst.name)
        if callee is None:
            return  # assembly runtime routine: no IR-level signature
        if len(callee.params) != len(inst.args):
            self.error("V012",
                       f"call {inst.name!r} passes {len(inst.args)} "
                       f"args, callee takes {len(callee.params)}",
                       label, index)
            return
        for (pname, _, pklass), aklass in zip(callee.params,
                                              inst.arg_classes):
            if pklass != aklass:
                self.error("V012",
                           f"call {inst.name!r}: argument for "
                           f"{pname!r} is {aklass}, callee expects "
                           f"{pklass}", label, index)
        ret_classes = {r.ret_class for b in callee.blocks
                       for r in b.instructions
                       if isinstance(r, Ret) and r.src is not None}
        if inst.ret_class is not None and ret_classes and \
                inst.ret_class not in ret_classes:
            self.error("V012",
                       f"call {inst.name!r} expects a "
                       f"{inst.ret_class} result, callee returns "
                       f"{', '.join(sorted(ret_classes))}", label, index)

    def _check_cbr(self, inst: CBr, label: str, index: int) -> None:
        if inst.op not in CMP_OPS:
            self.error("V009", f"unknown comparison {inst.op!r}",
                       label, index)
        if inst.fp:
            self._expect(inst.a, FP, "FP branch operand", label, index)
            if isinstance(inst.b, int):
                self._expect(inst.b, FP, "FP branch operand", label, index)
            else:
                self.error("V008", "FP branch with an immediate operand",
                           label, index)
            return
        self._expect(inst.a, INT, "branch operand", label, index)
        if isinstance(inst.b, int):
            self._expect(inst.b, INT, "branch operand", label, index)
        elif isinstance(inst.b, Imm):
            if inst.b.value != 0:
                self.error("V010",
                           f"integer branch immediate must be 0, got "
                           f"{inst.b.value} (backend contract)",
                           label, index)
        else:
            self.error("V008", f"branch b operand {inst.b!r} is neither "
                       f"a vreg nor Imm(0)", label, index)

    # -- dataflow checks ---------------------------------------------------

    def check_reachability(self) -> set[str]:
        by_label = self.func.block_map()
        reachable: set[str] = set()
        stack = [self.func.blocks[0].label]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            block = by_label.get(label)
            if block is not None and block.instructions:
                stack.extend(s for s in block.successor_labels()
                             if s in by_label)
        dead = tuple(b.label for b in self.func.blocks
                     if b.label not in reachable)
        self.report.unreachable[self.func.name] = dead
        for label in dead:
            self.warn("W002", "unreachable block (CFG accounting)", label)
        return reachable

    def check_instance_uniqueness(self) -> None:
        seen: dict[int, tuple[str, int]] = {}
        for block in self.func.blocks:
            for i, inst in enumerate(block.instructions):
                first = seen.get(id(inst))
                if first is not None:
                    self.error("V015",
                               f"instruction object {inst!r} appears "
                               f"twice (first at block {first[0]!r}, "
                               f"inst {first[1]}) — cloning passes must "
                               f"copy instructions", block.label, i)
                else:
                    seen[id(inst)] = (block.label, i)

    def check_loop_form(self) -> None:
        nest = compute_ir_loops(self.func.blocks)
        for src, dst in nest.retreating_violations:
            self.error("V016",
                       f"retreating edge {src!r} -> {dst!r} whose "
                       f"target does not dominate its source "
                       f"(irreducible loop; a pass rewired a latch or "
                       f"guard incorrectly)", src)

    def check_def_before_use(self, reachable: set[str]) -> None:
        func = self.func
        problem = _MustDefined(frozenset(v for _, v, _ in func.params))
        result = solve(func.blocks, problem)
        for block in func.blocks:
            if block.label not in reachable:
                continue
            state = result.block_in.get(block.label)
            defined = set() if state is None or \
                isinstance(state, Unreachable) else set(state)
            for i, inst in enumerate(block.instructions):
                for v in inst.uses():
                    if v not in defined:
                        self.warn("W001",
                                  f"v{v} may be used before it is "
                                  f"defined on some path", block.label, i)
                        defined.add(v)  # report each vreg once per block
                defined.update(inst.defs())

    # -- driver ------------------------------------------------------------

    def run(self) -> VerifyReport:
        if not self.check_structure():
            return self.report
        for block in self.func.blocks:
            for i, inst in enumerate(block.instructions):
                self.check_instruction(inst, block.label, i)
        self.check_instance_uniqueness()
        reachable = self.check_reachability()
        if self.report.ok:
            self.check_loop_form()
        if self.report.ok:
            self.check_def_before_use(reachable)
        return self.report


class _MustDefined(DataflowProblem[frozenset]):
    """Vregs defined along *every* path (intersection join)."""

    name = "must-defined"
    direction = FORWARD

    def __init__(self, params: frozenset) -> None:
        self._params = params

    def boundary(self, block: IRBlock) -> frozenset:
        return self._params

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, block: IRBlock, state: frozenset) -> frozenset:
        defined = set(state)
        for inst in block.instructions:
            defined.update(inst.defs())
        return frozenset(defined)


def verify_function(func: IRFunction,
                    program: IRProgram | None = None) -> VerifyReport:
    """Verify one function; *program* enables cross-function checks."""
    return _Check(func, program).run()


def verify_program(program: IRProgram) -> VerifyReport:
    """Verify every function of *program* (with call-arity context)."""
    report = VerifyReport()
    for func in program.functions:
        report.merge(verify_function(func, program))
    return report


def assert_valid(unit: IRFunction | IRProgram, where: str = "") -> None:
    """Verify *unit* and raise :class:`IRVerifyError` on any error."""
    if isinstance(unit, IRProgram):
        report = verify_program(unit)
    else:
        report = verify_function(unit)
    report.raise_if_errors(where)
