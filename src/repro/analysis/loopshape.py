"""Loop-shape normalization passes: ``loop-rotate`` / ``loop-unrotate``.

The paper's Loop heuristic assumes the *rotated* ``while`` idiom our IR
generator emits by default: the exit test lives at the loop's back-edge
source (the latch), so the back edge is a conditional branch that fires
once per iteration.  These two registered passes convert between that
shape and the *top-tested* shape (test at the header, unconditional
latch), letting the harness measure how much of the Loop heuristic's
accuracy comes from the shape alone (``--passes`` ablation; see
docs/passes.md).  Both are off by default and leave the golden ``-O1``
pipeline byte-identical.

``loop-rotate`` tail-duplicates the top-tested header: one clone becomes
a *guard block* taking over the loop's entry edges, and one clone is
spliced into each latch in place of its jump to the header — after which
the old header is unreachable and swept.  Each original execution of the
header corresponds to exactly one clone execution, so the transform is
unconditionally sound (no vreg constraints, side effects preserved).

``loop-unrotate`` is the inverse, modeled on hwtHls's
``LoopUnrotatePass``: when the guard block and the (single) latch of a
rotated loop end in an identical instruction suffix — equal modulo an
injective renaming of the vregs the suffix defines, none of which are
live outside it — the common suffix is hoisted into a fresh header block
that both jump to, restoring the top-tested shape.  Unlike rotation this
is pattern-directed and conservative: a loop whose guard and latch
tests have diverged (e.g. after constant folding) is simply left alone.

Both passes recompute loop structure (:mod:`repro.cfg.irloops`) after
every change and are verifier-clean under ``--verify-each`` (including
the V015 instruction-uniqueness and V016 back-edge rules added with
them).
"""

from __future__ import annotations

import copy

from repro.bcc.ir import (
    BinOp, CBr, Copy, Cvt, FBinOp, FNeg, Imm, IRBlock, IRFunction, Jump,
    Load, LoadConst, LoadFConst,
)
from repro.cfg.irloops import IRLoop, IRLoopNest, compute_ir_loops

__all__ = ["loop_rotate", "loop_unrotate"]


def _fresh_label(func: IRFunction, base: str) -> str:
    taken = {b.label for b in func.blocks}
    if base not in taken:
        return base
    n = 2
    while f"{base}{n}" in taken:
        n += 1
    return f"{base}{n}"


def _retarget(inst: object, old: str, new: str) -> None:
    if isinstance(inst, Jump):
        if inst.label == old:
            inst.label = new
    elif isinstance(inst, CBr):
        if inst.true_label == old:
            inst.true_label = new
        if inst.false_label == old:
            inst.false_label = new


def _sweep_unreachable(func: IRFunction) -> None:
    """Drop blocks unreachable from the entry (simplify-cfg's sweep)."""
    by_label = {b.label: b for b in func.blocks}
    reachable = {func.blocks[0].label}
    work = [func.blocks[0].label]
    while work:
        block = by_label[work.pop()]
        for target in block.successor_labels():
            if target in by_label and target not in reachable:
                reachable.add(target)
                work.append(target)
    func.blocks = [b for b in func.blocks if b.label in reachable]


# ---------------------------------------------------------------------------
# loop-rotate


def _find_top_tested(func: IRFunction,
                     nest: IRLoopNest) -> IRLoop | None:
    """First loop in block order with a header test and jump-only latches."""
    by_label = {b.label: b for b in func.blocks}
    order = {label: i for i, label in enumerate(nest.labels)}
    for head in sorted(nest.loops, key=order.__getitem__):
        loop = nest.loops[head]
        term = by_label[head].terminator
        if not isinstance(term, CBr) or \
                term.true_label == term.false_label:
            continue
        t_in = term.true_label in loop.body
        f_in = term.false_label in loop.body
        if t_in == f_in:
            continue  # not an exit test (or a self-loop on the header)
        if all(isinstance(by_label[latch].terminator, Jump)
               for latch in loop.latches):
            return loop
    return None


def _rotate_one(func: IRFunction, loop: IRLoop) -> None:
    by_label = {b.label: b for b in func.blocks}
    head = by_label[loop.head]

    def clone() -> list[object]:
        # shallow per-instruction copies: operands (ints, Imm, FrameSlot,
        # GlobalSym) are immutable, and V015 requires distinct objects
        return [copy.copy(inst) for inst in head.instructions]

    # splice a test clone into each latch, replacing its jump to the head
    for latch_label in loop.latches:
        latch = by_label[latch_label]
        latch.instructions = latch.instructions[:-1] + clone()

    # one shared guard clone takes over every remaining entry to the head
    guard_label = _fresh_label(func, f"{loop.head}__guard")
    guard = IRBlock(guard_label, clone())
    for block in func.blocks:
        if block.label not in loop.latches and block.instructions:
            _retarget(block.terminator, loop.head, guard_label)
    head_index = next(i for i, b in enumerate(func.blocks)
                      if b.label == loop.head)
    func.blocks.insert(head_index, guard)
    # the old header now has no predecessors; the caller sweeps it


def loop_rotate(func: IRFunction) -> bool:
    """Rotate every top-tested natural loop of *func*; True if changed."""
    changed = False
    while True:
        nest = compute_ir_loops(func.blocks)
        if not nest.reducible:
            break
        loop = _find_top_tested(func, nest)
        if loop is None:
            break
        _rotate_one(func, loop)
        changed = True
    if changed:
        _sweep_unreachable(func)
    return changed


# ---------------------------------------------------------------------------
# loop-unrotate


#: instruction types a mergeable test suffix may contain (plus the CBr)
_MERGEABLE = (LoadConst, LoadFConst, BinOp, FBinOp, FNeg, Cvt, Copy, Load)


class _SuffixMatch:
    """Pairwise matcher for the guard/latch instruction suffixes.

    Tracks an injective renaming from latch-side def vregs to guard-side
    def vregs; a *free* use (not defined earlier in the suffix) must name
    the same vreg on both sides — the merged copy then reads whichever
    value is live on the entering path, which is exactly the original
    per-path behavior.
    """

    def __init__(self, func: IRFunction) -> None:
        self.func = func
        self.mapping: dict[int, int] = {}
        self._targets: set[int] = set()

    def use(self, t_vreg: int, g_vreg: int) -> bool:
        return self.mapping.get(t_vreg, t_vreg) == g_vreg

    def operand(self, t_op: object, g_op: object) -> bool:
        if isinstance(t_op, int) and isinstance(g_op, int):
            return self.use(t_op, g_op)
        return bool(t_op == g_op)  # Imm / FrameSlot / GlobalSym / str

    def define(self, t_vreg: int, g_vreg: int) -> bool:
        bound = self.mapping.get(t_vreg)
        if bound is not None:
            return bound == g_vreg
        if g_vreg in self._targets:
            return False  # keep the renaming injective
        if self.func.vreg_class.get(t_vreg) != \
                self.func.vreg_class.get(g_vreg):
            return False
        self.mapping[t_vreg] = g_vreg
        self._targets.add(g_vreg)
        return True

    def renamed_pairs(self) -> list[tuple[int, int]]:
        return [(t, g) for t, g in self.mapping.items() if t != g]


def _match_inst(m: _SuffixMatch, t: object, g: object) -> bool:
    if type(t) is not type(g):
        return False
    if isinstance(t, LoadConst) or isinstance(t, LoadFConst):
        assert isinstance(g, (LoadConst, LoadFConst))
        return t.value == g.value and m.define(t.dst, g.dst)
    if isinstance(t, BinOp):
        assert isinstance(g, BinOp)
        return (t.op == g.op and m.use(t.a, g.a)
                and m.operand(t.b, g.b) and m.define(t.dst, g.dst))
    if isinstance(t, FBinOp):
        assert isinstance(g, FBinOp)
        return (t.op == g.op and m.use(t.a, g.a) and m.use(t.b, g.b)
                and m.define(t.dst, g.dst))
    if isinstance(t, (FNeg, Copy)):
        assert isinstance(g, (FNeg, Copy))
        return m.use(t.src, g.src) and m.define(t.dst, g.dst)
    if isinstance(t, Cvt):
        assert isinstance(g, Cvt)
        return (t.kind == g.kind and m.use(t.src, g.src)
                and m.define(t.dst, g.dst))
    if isinstance(t, Load):
        assert isinstance(g, Load)
        return (t.offset == g.offset and t.mem == g.mem
                and m.operand(t.base, g.base) and m.define(t.dst, g.dst))
    if isinstance(t, CBr):
        assert isinstance(g, CBr)
        return (t.op == g.op and t.fp == g.fp
                and t.true_label == g.true_label
                and t.false_label == g.false_label
                and m.use(t.a, g.a) and m.operand(t.b, g.b))
    return False


def _used_outside(func: IRFunction, vreg: int,
                  exclude: set[int]) -> bool:
    """Is *vreg* read by any instruction not in the ``id``-keyed set?"""
    for block in func.blocks:
        for inst in block.instructions:
            if id(inst) in exclude:
                continue
            if vreg in inst.uses():  # type: ignore[attr-defined]
                return True
    return False


def _try_merge(func: IRFunction, guard: IRBlock, latch: IRBlock,
               length: int) -> _SuffixMatch | None:
    if not all(isinstance(i, _MERGEABLE)
               for i in guard.instructions[-length:-1]):
        return None
    m = _SuffixMatch(func)
    for t, g in zip(latch.instructions[-length:],
                    guard.instructions[-length:]):
        if not _match_inst(m, t, g):
            return None
    # renamed defs must be dead outside their own suffix: the merged
    # block writes only the guard-side names
    g_ids = {id(i) for i in guard.instructions[-length:]}
    t_ids = {id(i) for i in latch.instructions[-length:]}
    for t_vreg, g_vreg in m.renamed_pairs():
        if _used_outside(func, t_vreg, t_ids) or \
                _used_outside(func, g_vreg, g_ids):
            return None
    return m


def _unrotate_one(func: IRFunction, nest: IRLoopNest) -> bool:
    by_label = {b.label: b for b in func.blocks}
    order = {label: i for i, label in enumerate(nest.labels)}
    for head in sorted(nest.loops, key=order.__getitem__):
        loop = nest.loops[head]
        if len(loop.latches) != 1:
            continue
        latch = by_label[loop.latches[0]]
        term = latch.terminator
        if not isinstance(term, CBr) or \
                term.true_label == term.false_label:
            continue
        other = ({term.true_label, term.false_label} - {head})
        if head not in (term.true_label, term.false_label) or \
                other <= loop.body:
            continue
        entries = [p for p in nest.preds[head] if p not in loop.body]
        if len(entries) != 1:
            continue
        guard = by_label[entries[0]]
        g_term = guard.terminator
        if not isinstance(g_term, CBr) or \
                (g_term.true_label, g_term.false_label) != \
                (term.true_label, term.false_label):
            continue
        for length in range(min(len(guard.instructions),
                                len(latch.instructions)), 0, -1):
            match = _try_merge(func, guard, latch, length)
            if match is None:
                continue
            new_label = _fresh_label(func, f"{head}__test")
            new_head = IRBlock(new_label, guard.instructions[-length:])
            guard.instructions = guard.instructions[:-length] + \
                [Jump(new_label)]
            latch.instructions = latch.instructions[:-length] + \
                [Jump(new_label)]
            guard_index = next(i for i, b in enumerate(func.blocks)
                               if b.label == guard.label)
            func.blocks.insert(guard_index + 1, new_head)
            return True
    return False


def loop_unrotate(func: IRFunction) -> bool:
    """Merge matching guard/latch tests back into loop headers."""
    changed = False
    while True:
        nest = compute_ir_loops(func.blocks)
        if not nest.reducible or not _unrotate_one(func, nest):
            break
        changed = True
    return changed
