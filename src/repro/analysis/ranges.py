"""Interval value-range analysis over BLC IR.

Tracks, per integer virtual register, a sound 32-bit interval of the
values it can hold (see :mod:`repro.analysis.lattice`).  A vreg absent
from the state is unconstrained (:data:`~repro.analysis.lattice.TOP`);
only non-trivial facts are stored, so states stay small.

Branch edges refine the tested registers (``i < n`` taken implies
``i <= n.hi - 1`` on that edge) and are pruned entirely when the
refinement is unsatisfiable — the same conditional machinery SCCP uses,
but over a lattice with infinite ascending chains, so loop heads apply
the widening operator after :attr:`~repro.analysis.dataflow.
DataflowProblem.widen_after` visits (that is the termination argument:
each interval bound can widen at most once).

The analysis deliberately returns :data:`~repro.analysis.lattice.TOP`
whenever two's-complement wrap-around is possible, so every interval it
reports is an *unconditional* truth about machine execution — the branch
evidence built on top (see :mod:`repro.analysis.branches`) can therefore
promise zero misclassifications against ground-truth edge profiles.
"""

from __future__ import annotations

from typing import Union

from repro.analysis import lattice
from repro.analysis.dataflow import (
    FORWARD, DataflowProblem, DataflowResult, Unreachable, UNREACHABLE,
    solve,
)
from repro.analysis.lattice import Interval
from repro.bcc.ir import (
    INT, BinOp, Call, CBr, Copy, GlobalSym, Imm, IRBlock, IRFunction,
    Load, LoadConst,
)
from repro.bcc.opt import IR_ANALYSES

__all__ = ["RangeState", "RangeProblem", "ranges", "evaluate_cbr_ranges"]

#: vreg -> interval; absence means TOP (unconstrained)
RangeState = dict[int, Interval]


def _set(env: RangeState, vreg: int, iv: Interval | None) -> None:
    """Store a fact, dropping trivial (TOP) entries to keep states small."""
    if iv is None or iv.is_top:
        env.pop(vreg, None)
    else:
        env[vreg] = iv


def _step(inst: object, env: RangeState,
          returns: dict[str, Interval] | None = None,
          globals_env: dict[str, Interval] | None = None) -> None:
    """Update *env* in place across one instruction.

    *returns* optionally maps function names to sound intervals of their
    integer return values, and *globals_env* trackable global scalars to
    sound intervals of their stored values (the whole-program context
    from :mod:`repro.analysis.interproc`); without them every call
    result and global load is TOP.
    """
    if isinstance(inst, LoadConst):
        value = inst.value
        if lattice.INT32_MIN <= value <= lattice.INT32_MAX:
            env[inst.dst] = lattice.const(value)
        else:  # out-of-range literal: assembler semantics decide, stay TOP
            env.pop(inst.dst, None)
        return
    if isinstance(inst, Copy):
        _set(env, inst.dst, env.get(inst.src))
        return
    if isinstance(inst, BinOp):
        a = env.get(inst.a, lattice.TOP)
        b = (lattice.const(inst.b.value) if isinstance(inst.b, Imm)
             else env.get(inst.b, lattice.TOP))
        _set(env, inst.dst, lattice.transfer_binop(inst.op, a, b))
        return
    if returns is not None and isinstance(inst, Call) and \
            inst.dst is not None and inst.ret_class == INT:
        _set(env, inst.dst, returns.get(inst.name))
        return
    if globals_env is not None and isinstance(inst, Load) and \
            isinstance(inst.base, GlobalSym):
        _set(env, inst.dst, globals_env.get(inst.base.name))
        return
    for d in inst.defs():  # type: ignore[attr-defined]
        env.pop(d, None)


def _cbr_intervals(cbr: CBr, env: RangeState) -> tuple[Interval, Interval]:
    a = env.get(cbr.a, lattice.TOP)
    b = (lattice.const(cbr.b.value) if isinstance(cbr.b, Imm)
         else env.get(cbr.b, lattice.TOP))
    return a, b


def _flag_predicate(src: IRBlock, flag: int) -> \
        tuple[str, int, object] | None:
    """The compare that materialized *flag*, if decodable in *src*.

    The IR generator lowers every relational except ``eq``/``ne`` through
    ``slt`` (``t = slt a, b; br ne/eq t, #0`` — see
    ``repro.bcc.irgen._gen_compare_branch``), so refining only the flag
    register would learn nothing about the compared values.  This looks
    back through the block for the defining compare: returns
    ``(op, a, b)`` when *flag*'s last definition in *src* is an integer
    ``slt``/``sltu`` (order flag) or ``sub``/``xor`` (equality flag:
    zero exactly when the operands are equal, even under wrap-around)
    whose operands are not redefined between the compare and the branch
    (their end-of-block intervals are then exactly their values at the
    compare), else ``None``.
    """
    body = src.instructions[:-1]  # terminator can't define the flag
    for index in range(len(body) - 1, -1, -1):
        inst = body[index]
        if flag not in inst.defs():  # type: ignore[attr-defined]
            continue
        if not isinstance(inst, BinOp) or \
                inst.op not in ("slt", "sltu", "sub", "xor"):
            return None
        operands = {inst.a}
        if not isinstance(inst.b, Imm):
            operands.add(inst.b)
        for later in body[index + 1:]:
            if operands & set(later.defs()):  # type: ignore[attr-defined]
                return None
        return inst.op, inst.a, inst.b
    return None


def _flag_refine_op(cmp_op: str, ia: Interval, ib: Interval) -> str | None:
    """The predicate a set flag asserts about its compare operands.

    ``sub``/``xor`` flags are equality tests (exact even under wrap:
    ``a - b == 0 mod 2^32`` iff ``a == b`` for 32-bit values); ``sltu``
    compares unsigned and only matches the signed lattice predicate when
    both operands are provably non-negative.
    """
    if cmp_op in ("sub", "xor"):
        return "ne"
    if cmp_op == "slt" or (ia.lo >= 0 and ib.lo >= 0):
        return "lt"
    return None


class RangeProblem(DataflowProblem[RangeState]):
    """Forward interval analysis with branch refinement and widening.

    *entry_env* seeds the entry block with parameter intervals,
    *returns* supplies callee return-value intervals, and *globals_env*
    intervals for trackable global scalars — the optional whole-program
    context computed by :mod:`repro.analysis.interproc`.  All default
    to the conservative (TOP) intraprocedural analysis.
    """

    name = "ranges"
    direction = FORWARD
    widen_after = 2
    #: decreasing sweeps after convergence: widening blows loop-counter
    #: bounds to the extremes, narrowing re-applies the back-edge branch
    #: refinement to recover them (soundly — see the solver docstring)
    narrow_iterations = 2

    def __init__(self, entry_env: RangeState | None = None,
                 returns: dict[str, Interval] | None = None,
                 globals_env: dict[str, Interval] | None = None) -> None:
        self.entry_env = entry_env or {}
        self.returns = returns
        self.globals_env = globals_env

    def boundary(self, block: IRBlock) -> RangeState:
        return dict(self.entry_env)

    def join(self, a: RangeState, b: RangeState) -> RangeState:
        if len(b) < len(a):
            a, b = b, a
        out: RangeState = {}
        for vreg, iv in a.items():
            other = b.get(vreg)
            if other is not None:
                _set(out, vreg, lattice.join(iv, other))
        return out

    def widen(self, old: RangeState, new: RangeState) -> RangeState:
        out: RangeState = {}
        for vreg, new_iv in new.items():
            old_iv = old.get(vreg)
            if old_iv is not None:
                _set(out, vreg, lattice.widen(old_iv, new_iv))
        return out

    def transfer(self, block: IRBlock, state: RangeState) -> RangeState:
        env = dict(state)
        for inst in block.instructions:
            _step(inst, env, self.returns, self.globals_env)
        return env

    def transfer_edge(self, src: IRBlock, dst_label: str,
                      state: RangeState) -> Union[RangeState, Unreachable]:
        term = src.terminator if src.instructions else None
        if not isinstance(term, CBr) or term.fp:
            return state
        if term.true_label == term.false_label:
            return state
        a, b = _cbr_intervals(term, state)
        outcome = dst_label == term.true_label
        refined_a, refined_b = lattice.refine(term.op, a, b, outcome)
        if refined_a is None or refined_b is None:
            return UNREACHABLE
        env = dict(state)
        _set(env, term.a, refined_a)
        if not isinstance(term.b, Imm):
            _set(env, term.b, refined_b)

        # see through a flag materialized in this block: ``t = slt a, b;
        # br ne t, #0`` taken means a < b on that edge, and an equality
        # flag (``sub``/``xor``) being nonzero means a != b
        if term.op in ("eq", "ne") and isinstance(term.b, Imm) \
                and term.b.value == 0:
            predicate = _flag_predicate(src, term.a)
            if predicate is not None:
                cmp_op, cmp_a, cmp_b = predicate
                holds = outcome == (term.op == "ne")
                ia = env.get(cmp_a, lattice.TOP)
                ib = (lattice.const(cmp_b.value)
                      if isinstance(cmp_b, Imm)
                      else env.get(cmp_b, lattice.TOP))
                refine_op = _flag_refine_op(cmp_op, ia, ib)
                if refine_op is not None:
                    ra, rb = lattice.refine(refine_op, ia, ib, holds)
                    if ra is None or rb is None:
                        return UNREACHABLE
                    _set(env, cmp_a, ra)
                    if not isinstance(cmp_b, Imm):
                        _set(env, cmp_b, rb)
        return env


def ranges(func: IRFunction) -> DataflowResult[RangeState]:
    """Solve the range analysis (prefer ``am.get("ranges")`` for caching).

    When :func:`repro.analysis.interproc.seed_interprocedural_ranges`
    has annotated *func* (``range_entry_facts`` / ``range_return_facts``
    / ``range_global_facts`` attributes), the whole-program context is
    applied; standalone functions are analyzed with conservative TOP
    boundaries.
    """
    return solve(func.blocks, RangeProblem(
        entry_env=getattr(func, "range_entry_facts", None),
        returns=getattr(func, "range_return_facts", None),
        globals_env=getattr(func, "range_global_facts", None)))


@IR_ANALYSES.register("ranges",
                      description="interval value-range analysis (per-vreg "
                                  "32-bit intervals, branch refinement, "
                                  "widening)")
def _ranges_analysis(func: IRFunction, am: object) -> \
        DataflowResult[RangeState]:
    return ranges(func)


def evaluate_cbr_ranges(state: RangeState, cbr: CBr,
                        block: IRBlock | None = None) -> bool | None:
    """Decide *cbr* under interval *state*, or ``None`` if not forced.

    With *block* (the block whose terminator is *cbr*) an ``eq``/``ne``
    test of a flag materialized in that block is seen through to the
    underlying compare, deciding e.g. ``t = sub i, n; br eq t, #0`` when
    the intervals of ``i`` and ``n`` are disjoint.  *state* must be the
    block's out-state — :func:`_flag_predicate` guarantees the compare
    operands are not redefined after the compare, so their end-of-block
    intervals are their values at the compare.
    """
    if cbr.fp:
        return None
    a, b = _cbr_intervals(cbr, state)
    decided = lattice.compare(cbr.op, a, b)
    if decided is not None or block is None:
        return decided
    if cbr.op in ("eq", "ne") and isinstance(cbr.b, Imm) \
            and cbr.b.value == 0:
        predicate = _flag_predicate(block, cbr.a)
        if predicate is None:
            return None
        cmp_op, cmp_a, cmp_b = predicate
        ia = state.get(cmp_a, lattice.TOP)
        ib = (lattice.const(cmp_b.value) if isinstance(cmp_b, Imm)
              else state.get(cmp_b, lattice.TOP))
        flag_op = _flag_refine_op(cmp_op, ia, ib)
        if flag_op is None:
            return None
        flag_set = lattice.compare(flag_op, ia, ib)
        if flag_set is None:
            return None
        return flag_set == (cbr.op == "ne")
    return None
