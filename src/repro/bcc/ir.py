"""Three-address intermediate representation.

An :class:`IRFunction` is a list of :class:`IRBlock`\\ s, each ending in a
terminator (``Jump``, ``CBr``, or ``Ret``). Values are virtual registers
(plain ints) partitioned into two classes, ``INT`` (integers and pointers)
and ``FP`` (doubles); the register allocator later maps them onto the
machine's ``$t/$s`` and ``$f`` files.

Memory operands carry a *base* that is either a virtual register, a
:class:`FrameSlot` (a stack object: array, struct, or address-taken scalar),
or a :class:`GlobalSym`; the code generator folds slot/global bases into
``off($sp)`` / ``sym($gp)`` addressing, which is exactly the SP/GP
distinction the paper's Pointer heuristic keys on.

Conditional branches keep their comparison (``CBr``) so the code generator
can select the compare-to-zero branch opcodes (``bltz``/``blez``/…) and FP
compare+branch sequences that the Opcode heuristic inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "INT", "FP",
    "Imm", "FrameSlot", "GlobalSym",
    "IRInst", "LoadConst", "LoadFConst", "BinOp", "FBinOp", "FNeg", "Cvt",
    "Load", "Store", "AddrFrame", "AddrGlobal", "Copy", "Call", "Ret",
    "Jump", "CBr", "IRBlock", "IRFunction", "IRProgram", "GlobalObject",
    "BIN_OPS", "FBIN_OPS", "CMP_OPS", "MEM_KINDS",
]

INT = "int"
FP = "fp"

#: integer binary ops (shr is arithmetic, sru logical)
BIN_OPS = frozenset({"add", "sub", "mul", "div", "rem", "and", "or", "xor",
                     "shl", "shr", "sru", "slt", "sltu"})
FBIN_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv"})
CMP_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
#: memory access kinds: word, signed byte, unsigned byte, double
MEM_KINDS = frozenset({"w", "b", "bu", "d"})


@dataclass(frozen=True)
class Imm:
    """An immediate integer operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class FrameSlot:
    """Base of a stack-frame object (resolved to an $sp offset at codegen)."""

    slot: int

    def __repr__(self) -> str:
        return f"frame[{self.slot}]"


@dataclass(frozen=True)
class GlobalSym:
    """Base of a data-segment object."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


class IRInst:
    """Base class; subclasses define ``uses()``/``defs()`` for dataflow."""

    def uses(self) -> tuple[int, ...]:
        return ()

    def defs(self) -> tuple[int, ...]:
        return ()

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Jump, CBr, Ret))


def _reg_uses(*operands) -> tuple[int, ...]:
    return tuple(op for op in operands if isinstance(op, int))


@dataclass
class LoadConst(IRInst):
    dst: int
    value: int

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = {self.value}"


@dataclass
class LoadFConst(IRInst):
    dst: int
    value: float

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = {self.value!r}"


@dataclass
class BinOp(IRInst):
    """Integer ALU op; ``b`` may be an :class:`Imm` where codegen has an
    immediate form (add/and/or/xor/shl/shr/sru/slt)."""

    op: str
    dst: int
    a: int
    b: object  #: vreg or Imm

    def uses(self):
        return _reg_uses(self.a, self.b)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = {self.op} v{self.a}, {self.b}"


@dataclass
class FBinOp(IRInst):
    op: str
    dst: int
    a: int
    b: int

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = {self.op} v{self.a}, v{self.b}"


@dataclass
class FNeg(IRInst):
    dst: int
    src: int

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = fneg v{self.src}"


@dataclass
class Cvt(IRInst):
    """Conversion: kind "i2d" (int vreg -> fp vreg) or "d2i" (truncate)."""

    dst: int
    src: int
    kind: str

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = {self.kind} v{self.src}"


@dataclass
class Load(IRInst):
    dst: int
    base: object  #: vreg | FrameSlot | GlobalSym
    offset: int
    mem: str      #: "w" | "b" | "bu" | "d"

    def uses(self):
        return _reg_uses(self.base)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = load.{self.mem} {self.base}+{self.offset}"


@dataclass
class Store(IRInst):
    src: int
    base: object
    offset: int
    mem: str

    def uses(self):
        return _reg_uses(self.src, self.base)

    def __repr__(self):
        return f"store.{self.mem} v{self.src} -> {self.base}+{self.offset}"


@dataclass
class AddrFrame(IRInst):
    dst: int
    slot: int
    offset: int = 0

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = &frame[{self.slot}]+{self.offset}"


@dataclass
class AddrGlobal(IRInst):
    dst: int
    name: str
    offset: int = 0

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = &@{self.name}+{self.offset}"


@dataclass
class Copy(IRInst):
    dst: int
    src: int

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"v{self.dst} = v{self.src}"


@dataclass
class Call(IRInst):
    dst: int | None
    name: str
    args: list[int]
    #: parallel to args: INT or FP (drives $a-reg vs stack placement)
    arg_classes: list[str]
    ret_class: str | None  #: INT, FP, or None for void

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def __repr__(self):
        args = ", ".join(f"v{a}" for a in self.args)
        dst = f"v{self.dst} = " if self.dst is not None else ""
        return f"{dst}call {self.name}({args})"


@dataclass
class Ret(IRInst):
    src: int | None = None
    ret_class: str | None = None

    def uses(self):
        return (self.src,) if self.src is not None else ()

    def __repr__(self):
        return f"ret v{self.src}" if self.src is not None else "ret"


@dataclass
class Jump(IRInst):
    label: str

    def __repr__(self):
        return f"jump {self.label}"


@dataclass
class CBr(IRInst):
    """Conditional branch on a comparison.

    ``fp`` selects double comparison (both operands FP vregs). For integer
    comparisons ``b`` may be ``Imm(0)`` — the IR generator lowers all other
    relational immediates through ``slt`` so the code generator can use the
    MIPS compare-to-zero branch opcodes directly.
    """

    op: str
    a: int
    b: object  #: vreg or Imm(0)
    true_label: str
    false_label: str
    fp: bool = False

    def uses(self):
        return _reg_uses(self.a, self.b)

    def __repr__(self):
        return (f"br {self.op}{'.d' if self.fp else ''} v{self.a}, {self.b} "
                f"? {self.true_label} : {self.false_label}")


@dataclass
class IRBlock:
    label: str
    instructions: list[IRInst] = field(default_factory=list)

    @property
    def terminator(self) -> IRInst:
        return self.instructions[-1]

    def successor_labels(self) -> list[str]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.label]
        if isinstance(term, CBr):
            return [term.true_label, term.false_label]
        return []

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<IRBlock {self.label}: {len(self.instructions)} insts>"


@dataclass
class FrameObject:
    """A stack-allocated object (array, struct, or address-taken scalar)."""

    name: str
    size: int
    align: int


@dataclass
class IRFunction:
    name: str
    #: (param name, vreg, class) in declaration order
    params: list[tuple[str, int, str]] = field(default_factory=list)
    blocks: list[IRBlock] = field(default_factory=list)
    vreg_class: dict[int, str] = field(default_factory=dict)
    frame_objects: list[FrameObject] = field(default_factory=list)
    _next_vreg: int = 0

    def new_vreg(self, klass: str) -> int:
        v = self._next_vreg
        self._next_vreg = v + 1
        self.vreg_class[v] = klass
        return v

    def new_frame_object(self, name: str, size: int, align: int) -> int:
        self.frame_objects.append(FrameObject(name, size, align))
        return len(self.frame_objects) - 1

    def block_map(self) -> dict[str, IRBlock]:
        return {b.label: b for b in self.blocks}

    def has_calls(self) -> bool:
        return any(isinstance(i, Call) for b in self.blocks
                   for i in b.instructions)

    def dump(self) -> str:
        """Readable IR listing (debugging/tests)."""
        lines = [f"func {self.name}({', '.join(p[0] for p in self.params)}):"]
        for block in self.blocks:
            lines.append(f"{block.label}:")
            for inst in block.instructions:
                lines.append(f"    {inst!r}")
        return "\n".join(lines)


@dataclass
class GlobalObject:
    """A data-segment object: scalar global, array, struct, or string."""

    label: str
    size: int
    align: int
    #: None (zero-filled), bytes, int (single word), float (single double),
    #: or str (NUL-terminated string)
    init: object = None


@dataclass
class IRProgram:
    functions: list[IRFunction] = field(default_factory=list)
    globals: list[GlobalObject] = field(default_factory=list)

    def dump(self) -> str:
        return "\n\n".join(f.dump() for f in self.functions)
