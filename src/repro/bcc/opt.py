"""IR optimization passes (the ``-O`` the paper's benchmarks were built with).

Registered passes (see :data:`IR_PASSES`), applied to fixpoint by the
default ``-O1`` pipeline, in order:

* ``local-propagate`` — block-local constant propagation & folding plus
  algebraic simplification (incl. forming MIPS immediate operands and
  strength-reducing multiplies by powers of two);
* ``simplify-cfg`` — jump threading, straight-line merging, unreachable
  block removal;
* ``dce`` — global dead-code elimination (liveness-based);
* ``copy-coalesce`` — producer/copy pair merging.

The passes run on the generic :mod:`repro.passes` framework: ``liveness``
is a cached analysis on a per-function
:class:`~repro.passes.manager.AnalysisManager` (``opt.liveness.compute`` /
``opt.liveness.reuse`` counters prove sharing), every pass execution gets
a ``pass:<name>`` telemetry span, and pipelines are built from specs
(``"local-propagate,dce"`` / ``-O0`` / ``-O1``) via :func:`build_pipeline`
— the bcc CLI's ``--passes`` and ``--emit-ir-after`` flags ride on this.

All passes preserve the rotated-loop shape that IR generation established —
nothing here re-linearizes control flow, so the branch idioms the heuristics
inspect survive into the final code.  :func:`optimize_function` and
:func:`optimize_program` keep their historical signatures as thin wrappers
over the default pipeline.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.bcc.ir import (
    AddrFrame, AddrGlobal, BinOp, Call, CBr, Copy, Cvt, FBinOp, FNeg, Imm,
    IRBlock, IRFunction, IRProgram, Jump, Load, LoadConst, LoadFConst, Ret,
    Store,
)
from repro.passes import AnalysisRegistry, PassPipeline, PassRegistry

__all__ = [
    "optimize_program", "optimize_function", "compute_liveness",
    "IR_ANALYSES", "IR_PASSES", "O0_PASSES", "O1_PASSES",
    "build_pipeline", "pipeline_spec",
    "set_verify_each", "verify_each_enabled",
]

_S16_MIN, _S16_MAX = -32768, 32767

#: ops with a signed-immediate machine form (addiu / slti)
_SIGNED_IMM_OPS = frozenset({"add", "slt"})
#: ops with an unsigned-immediate machine form (andi/ori/xori)
_UNSIGNED_IMM_OPS = frozenset({"and", "or", "xor"})
#: shift-amount immediate ops
_SHIFT_OPS = frozenset({"shl", "shr", "sru"})


def _wrap32(value: int) -> int:
    value &= 0xFFFF_FFFF
    return value - (1 << 32) if value & (1 << 31) else value


def _fold_binop(op: str, a: int, b: int) -> int | None:
    """Evaluate an integer BinOp over constants with MIPS semantics."""
    if op == "add":
        return _wrap32(a + b)
    if op == "sub":
        return _wrap32(a - b)
    if op == "mul":
        return _wrap32(a * b)
    if op == "div":
        if b == 0:
            return None
        q = abs(a) // abs(b)
        return _wrap32(-q if (a < 0) != (b < 0) else q)
    if op == "rem":
        if b == 0:
            return None
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return _wrap32(a - b * q)
    if op == "and":
        return _wrap32((a & 0xFFFFFFFF) & (b & 0xFFFFFFFF))
    if op == "or":
        return _wrap32((a & 0xFFFFFFFF) | (b & 0xFFFFFFFF))
    if op == "xor":
        return _wrap32((a & 0xFFFFFFFF) ^ (b & 0xFFFFFFFF))
    if op == "shl":
        return _wrap32((a & 0xFFFFFFFF) << (b & 31))
    if op == "shr":
        return _wrap32(a >> (b & 31))
    if op == "sru":
        return _wrap32((a & 0xFFFFFFFF) >> (b & 31))
    if op == "slt":
        return 1 if a < b else 0
    if op == "sltu":
        return 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0
    return None


_CMP_EVAL = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _local_propagate(block: IRBlock) -> bool:
    """Block-local constant propagation plus folding. Returns True if
    anything changed.

    Deliberately does NOT rewrite uses through register copies: doing so
    leaves two live names for one value (the allocator does not coalesce),
    which both costs a register and — more importantly here — breaks the
    "same register from branch to successor use" property the paper's Guard
    heuristic observes in globally register-allocated code. Redundant
    copies are instead removed by :func:`_coalesce_copies` and DCE.
    """
    changed = False
    consts: dict[int, int] = {}      # vreg -> known int constant

    def kill(vreg: int) -> None:
        consts.pop(vreg, None)

    out: list = []
    for inst in block.instructions:
        if isinstance(inst, BinOp):
            av = consts.get(inst.a)
            bv = (inst.b.value if isinstance(inst.b, Imm)
                  else consts.get(inst.b))
            if av is not None and bv is not None:
                folded = _fold_binop(inst.op, av, bv)
                if folded is not None:
                    kill(inst.dst)
                    consts[inst.dst] = folded
                    out.append(LoadConst(inst.dst, folded))
                    changed = True
                    continue
            simplified = _simplify_binop(inst, av, bv)
            if simplified is not None:
                inst = simplified
                changed = True
            kill(inst.dst)
            if isinstance(inst, LoadConst):
                consts[inst.dst] = inst.value
            elif isinstance(inst, Copy) and inst.src in consts:
                consts[inst.dst] = consts[inst.src]
            out.append(inst)
            continue
        if isinstance(inst, LoadConst):
            kill(inst.dst)
            consts[inst.dst] = inst.value
            out.append(inst)
            continue
        if isinstance(inst, Copy):
            kill(inst.dst)
            if inst.src in consts:
                consts[inst.dst] = consts[inst.src]
                out.append(LoadConst(inst.dst, consts[inst.src]))
                changed = True
                continue
            if inst.src == inst.dst:
                changed = True
                continue
            out.append(inst)
            continue
        if isinstance(inst, CBr) and not inst.fp:
            if isinstance(inst.b, int) and consts.get(inst.b) == 0:
                inst.b = Imm(0)
                changed = True
            av = consts.get(inst.a)
            bv = (inst.b.value if isinstance(inst.b, Imm)
                  else consts.get(inst.b))
            if av is not None and bv is not None:
                target = (inst.true_label if _CMP_EVAL[inst.op](av, bv)
                          else inst.false_label)
                out.append(Jump(target))
                changed = True
                continue
            out.append(inst)
            continue
        for d in inst.defs():
            kill(d)
        out.append(inst)

    block.instructions = out
    return changed


def _simplify_binop(inst: BinOp, av: int | None, bv: int | None):
    """Algebraic identities and immediate-form selection. Returns a
    replacement instruction or None."""
    op = inst.op
    # x + 0, x - 0, x | 0, x ^ 0, x << 0 ...
    if bv == 0 and op in ("add", "sub", "or", "xor", "shl", "shr", "sru"):
        return Copy(inst.dst, inst.a)
    if bv == 0 and op in ("mul", "and"):
        return LoadConst(inst.dst, 0)
    if av == 0 and op == "mul":
        return LoadConst(inst.dst, 0)
    if bv == 1 and op in ("mul", "div"):
        return Copy(inst.dst, inst.a)
    if bv == 1 and op == "rem":
        return LoadConst(inst.dst, 0)
    if bv is not None and op == "mul" and bv > 1 and bv & (bv - 1) == 0:
        return BinOp("shl", inst.dst, inst.a, Imm(bv.bit_length() - 1))
    # form immediate operands where the ISA has them
    if isinstance(inst.b, int) and bv is not None:
        if op in _SIGNED_IMM_OPS and _S16_MIN <= bv <= _S16_MAX:
            return BinOp(op, inst.dst, inst.a, Imm(bv))
        if op == "sub" and _S16_MIN <= -bv <= _S16_MAX:
            return BinOp("add", inst.dst, inst.a, Imm(-bv))
        if op in _UNSIGNED_IMM_OPS and 0 <= bv <= 0xFFFF:
            return BinOp(op, inst.dst, inst.a, Imm(bv))
        if op in _SHIFT_OPS:
            return BinOp(op, inst.dst, inst.a, Imm(bv & 31))
    return None


# -- dead code elimination ---------------------------------------------------

_PURE = (LoadConst, LoadFConst, BinOp, FBinOp, FNeg, Cvt, Load, AddrFrame,
         AddrGlobal, Copy)


def compute_liveness(func: IRFunction) -> dict[str, set[int]]:
    """Live-out vreg sets per block label (backward dataflow to fixpoint)."""
    blocks = func.blocks
    use: dict[str, set[int]] = {}
    define: dict[str, set[int]] = {}
    for block in blocks:
        u: set[int] = set()
        d: set[int] = set()
        for inst in block.instructions:
            for v in inst.uses():
                if v not in d:
                    u.add(v)
            d.update(inst.defs())
        use[block.label] = u
        define[block.label] = d

    succ = {b.label: b.successor_labels() for b in blocks}
    live_in: dict[str, set[int]] = {b.label: set() for b in blocks}
    live_out: dict[str, set[int]] = {b.label: set() for b in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            label = block.label
            out: set[int] = set()
            for s in succ[label]:
                out |= live_in[s]
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return live_out


def _eliminate_dead(func: IRFunction,
                    live_out: dict[str, set[int]] | None = None) -> bool:
    if live_out is None:
        live_out = compute_liveness(func)
    changed = False
    for block in func.blocks:
        live = set(live_out[block.label])
        kept: list = []
        for inst in reversed(block.instructions):
            defs = inst.defs()
            if isinstance(inst, _PURE) and defs and \
                    all(d not in live for d in defs):
                changed = True
                continue
            live.difference_update(defs)
            live.update(inst.uses())
            kept.append(inst)
        kept.reverse()
        block.instructions = kept
    return changed


# -- copy coalescing -------------------------------------------------------------


def _coalesce_copies(func: IRFunction,
                     live_out: dict[str, set[int]] | None = None) -> bool:
    """Rewrite ``t = op ...; dst = t`` into ``dst = op ...`` when *t* has no
    other use or definition and *dst* is untouched in between.

    Besides shrinking code, this keeps a value in ONE virtual register from
    definition through all its uses — which is what makes the emitted code
    look like globally register-allocated output, the property the paper's
    Guard heuristic depends on (the branch operand register must be the same
    register the successor block reads).

    *live_out* (the shared cached liveness analysis, when running under the
    pass manager) adds a belt-and-braces cross-block guard: a copy source
    that is live out of its block is never coalesced.  The single-use /
    single-def counts already imply this, so supplying it cannot change the
    output — it only lets the pass share one liveness computation with
    ``dce`` instead of reasoning from scratch."""
    use_count: dict[int, int] = {}
    def_count: dict[int, int] = {}
    for _, vreg, _ in func.params:
        def_count[vreg] = def_count.get(vreg, 0) + 1
    for block in func.blocks:
        for inst in block.instructions:
            for v in inst.uses():
                use_count[v] = use_count.get(v, 0) + 1
            for v in inst.defs():
                def_count[v] = def_count.get(v, 0) + 1

    changed = False
    for block in func.blocks:
        last_def_index: dict[int, int] = {}
        insts = block.instructions
        kill: set[int] = set()
        block_live_out = (live_out.get(block.label, set())
                          if live_out is not None else None)
        for i, inst in enumerate(insts):
            if isinstance(inst, Copy):
                src, dst = inst.src, inst.dst
                d = last_def_index.get(src)
                ok = (
                    d is not None
                    and use_count.get(src, 0) == 1
                    and def_count.get(src, 0) == 1
                    and func.vreg_class[src] == func.vreg_class[dst]
                    and (block_live_out is None
                         or src not in block_live_out)
                )
                if ok:
                    # dst must not be used or defined between the def and
                    # the copy (its def is being hoisted to the def site)
                    for between in insts[d + 1:i]:
                        if dst in between.uses() or dst in between.defs():
                            ok = False
                            break
                if ok:
                    producer = insts[d]
                    producer.dst = dst
                    kill.add(i)
                    last_def_index[dst] = d
                    use_count[src] = 0
                    def_count[src] = 0
                    def_count[dst] = def_count.get(dst, 0)  # unchanged net
                    changed = True
                    continue
            for v in inst.defs():
                last_def_index[v] = i
        if kill:
            block.instructions = [inst for i, inst in enumerate(insts)
                                  if i not in kill]
    return changed


# -- CFG simplification ----------------------------------------------------------


def _retarget(inst, mapping: dict[str, str]) -> None:
    def final(label: str) -> str:
        seen = set()
        while label in mapping and label not in seen:
            seen.add(label)
            label = mapping[label]
        return label

    if isinstance(inst, Jump):
        inst.label = final(inst.label)
    elif isinstance(inst, CBr):
        inst.true_label = final(inst.true_label)
        inst.false_label = final(inst.false_label)


def _simplify_cfg(func: IRFunction) -> bool:
    changed = False
    entry = func.blocks[0].label

    # thread trivial blocks (single Jump) — never the entry block
    mapping: dict[str, str] = {}
    for block in func.blocks:
        if block.label != entry and len(block.instructions) == 1 \
                and isinstance(block.instructions[0], Jump) \
                and block.instructions[0].label != block.label:
            mapping[block.label] = block.instructions[0].label
    if mapping:
        for block in func.blocks:
            if block.instructions:
                _retarget(block.terminator, mapping)
        changed = True

    # CBr with identical targets -> Jump
    for block in func.blocks:
        term = block.terminator if block.instructions else None
        if isinstance(term, CBr) and term.true_label == term.false_label:
            block.instructions[-1] = Jump(term.true_label)
            changed = True

    # drop unreachable blocks
    by_label = func.block_map()
    reachable: set[str] = set()
    stack = [entry]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(by_label[label].successor_labels())
    if len(reachable) != len(func.blocks):
        func.blocks = [b for b in func.blocks if b.label in reachable]
        changed = True

    # merge straight-line pairs: A ends Jump(B), B has exactly one pred
    preds: dict[str, int] = {}
    for block in func.blocks:
        for s in block.successor_labels():
            preds[s] = preds.get(s, 0) + 1
    by_label = func.block_map()
    merged: set[str] = set()
    for block in func.blocks:
        if block.label in merged:
            continue
        while block.instructions and isinstance(block.terminator, Jump):
            target = block.terminator.label
            if target == block.label or preds.get(target, 0) != 1 \
                    or target == entry or target in merged:
                break
            target_block = by_label[target]
            block.instructions = block.instructions[:-1] + \
                target_block.instructions
            merged.add(target)
            changed = True
    if merged:
        func.blocks = [b for b in func.blocks if b.label not in merged]

    return changed


# -- pass / analysis registration --------------------------------------------

#: Analyses over one :class:`IRFunction` (shared through the pass manager).
IR_ANALYSES = AnalysisRegistry("bcc.ir")

#: Registered IR transformation passes.
IR_PASSES = PassRegistry("bcc.ir")


@IR_ANALYSES.register("liveness", counter_prefix="opt.liveness",
                      description="per-block live-out virtual register sets")
def _liveness_analysis(func: IRFunction, am) -> dict[str, set[int]]:
    return compute_liveness(func)


@IR_PASSES.register("local-propagate",
                    description="block-local constant propagation, folding, "
                                "and algebraic simplification")
def _local_propagate_pass(func: IRFunction, am) -> bool:
    changed = False
    for block in func.blocks:
        changed |= _local_propagate(block)
    return changed


@IR_PASSES.register("simplify-cfg",
                    description="jump threading, unreachable-block removal, "
                                "straight-line merging")
def _simplify_cfg_pass(func: IRFunction, am) -> bool:
    return _simplify_cfg(func)


@IR_PASSES.register("dce",
                    description="liveness-based global dead-code "
                                "elimination")
def _dce_pass(func: IRFunction, am) -> bool:
    return _eliminate_dead(func, live_out=am.get("liveness"))


@IR_PASSES.register("copy-coalesce",
                    description="producer/copy pair merging (keeps one vreg "
                                "per value for the Guard heuristic)")
def _coalesce_pass(func: IRFunction, am) -> bool:
    return _coalesce_copies(func, live_out=am.get("liveness"))


@IR_PASSES.register("sccp-fold",
                    description="rewrite conditional branches proven "
                                "constant by sparse conditional constant "
                                "propagation into jumps")
def _sccp_fold_pass(func: IRFunction, am) -> bool:
    # lazy import: repro.analysis sits above this module (it registers the
    # "sccp" analysis on IR_ANALYSES when imported), so the pass body —
    # never the module — pulls it in
    from repro.analysis.sccp import sccp_fold
    return sccp_fold(func, am.get("sccp"))


@IR_PASSES.register("loop-rotate",
                    description="tail-duplicate top-tested loop headers "
                                "into a guard block plus per-latch exit "
                                "tests (the paper's rotated-while shape); "
                                "off by default, --passes-selectable")
def _loop_rotate_pass(func: IRFunction, am) -> bool:
    # lazy import: repro.analysis layers above this module
    from repro.analysis.loopshape import loop_rotate
    return loop_rotate(func)


@IR_PASSES.register("loop-unrotate",
                    description="merge matching guard/latch test suffixes "
                                "of rotated loops back into a top-tested "
                                "header (hwtHls LoopUnrotate); off by "
                                "default, --passes-selectable")
def _loop_unrotate_pass(func: IRFunction, am) -> bool:
    from repro.analysis.loopshape import loop_unrotate
    return loop_unrotate(func)


#: The default ``-O1`` pipeline.  ``sccp-fold`` (added with the static-
#: analysis subsystem) folds cross-block constant branches between local
#: propagation and CFG simplification; the remaining order is the seed
#: optimizer's.
O1_PASSES: tuple[str, ...] = (
    "local-propagate", "sccp-fold", "simplify-cfg", "dce", "copy-coalesce",
)

#: ``-O0``: no transformation at all (the ablation baseline).
O0_PASSES: tuple[str, ...] = ()

_NAMED_PIPELINES: dict[str, tuple[str, ...]] = {
    "O0": O0_PASSES, "-O0": O0_PASSES, "0": O0_PASSES,
    "O1": O1_PASSES, "-O1": O1_PASSES, "1": O1_PASSES,
    "default": O1_PASSES, "none": O0_PASSES,
}


def pipeline_spec(spec: str | Sequence[str] | None) -> tuple[str, ...]:
    """Resolve a pipeline spec to a tuple of pass names.

    Accepts ``None`` (the default ``-O1`` pipeline), a named level
    (``"O0"``/``"O1"``), a comma-separated string, or a sequence of names.
    Unknown pass names raise :class:`~repro.passes.PipelineError`.
    """
    if spec is None:
        return O1_PASSES
    if isinstance(spec, str) and spec in _NAMED_PIPELINES:
        return _NAMED_PIPELINES[spec]
    return tuple(p.name for p in IR_PASSES.parse(spec))


def build_pipeline(spec: str | Sequence[str] | None = None, *,
                   fixed_point: bool = True,
                   max_rounds: int = 8) -> PassPipeline:
    """A :class:`PassPipeline` over the registered IR passes."""
    return PassPipeline(IR_PASSES.parse(pipeline_spec(spec)),
                        fixed_point=fixed_point, max_rounds=max_rounds,
                        category="opt")


AfterPassHook = Callable[[object, IRFunction, bool], None]

#: Process-wide default for pass-by-pass IR verification (``--verify-each``,
#: the test suite's always-on conftest fixture).  Explicit ``verify_each=``
#: arguments override it per call.
_VERIFY_EACH = False


def set_verify_each(enabled: bool) -> bool:
    """Set the process-wide verify-each default; returns the old value."""
    global _VERIFY_EACH
    old = _VERIFY_EACH
    _VERIFY_EACH = bool(enabled)
    return old


def verify_each_enabled() -> bool:
    """The current process-wide verify-each default."""
    return _VERIFY_EACH


def optimize_function(func: IRFunction, max_rounds: int = 8,
                      passes: str | Sequence[str] | None = None,
                      after_pass: AfterPassHook | None = None,
                      verify_each: bool | None = None) -> None:
    """Run the (default: ``-O1``) pipeline on *func* to fixpoint (bounded).

    Thin wrapper over :func:`build_pipeline`; ``liveness`` is computed at
    most once per round through the function's analysis manager and reused
    by every pass that did not change the function since.

    With *verify_each* (default: the :func:`set_verify_each` process flag)
    the IR verifier checks the function before the pipeline and after every
    pass execution that changed it, raising
    :class:`repro.analysis.verify.IRVerifyError` on the first violation —
    pinning miscompiles to the pass that introduced them.
    """
    if verify_each is None:
        verify_each = _VERIFY_EACH
    hook = after_pass
    if verify_each:
        # lazy import: repro.analysis layers above this module
        from repro.analysis.verify import assert_valid

        assert_valid(func, where="before optimization")

        def hook(pass_: object, f: IRFunction, changed: bool,
                 _user: AfterPassHook | None = after_pass) -> None:
            # user hook first (it may mutate, e.g. tests simulating a
            # buggy pass), then verify the resulting state
            if _user is not None:
                _user(pass_, f, changed)
            if changed:
                name = getattr(pass_, "name", pass_)
                assert_valid(f, where=f"after pass {name!r}")

    pipeline = build_pipeline(passes, fixed_point=True,
                              max_rounds=max_rounds)
    pipeline.run(func, am=IR_ANALYSES.manager(func), after_pass=hook)


def optimize_program(program: IRProgram, enabled: bool = True,
                     passes: str | Sequence[str] | None = None,
                     after_pass: AfterPassHook | None = None,
                     verify_each: bool | None = None) -> IRProgram:
    """Optimize every function (no-op when *enabled* is False, the -O0 mode
    used by ablation benchmarks).

    *passes* overrides the pipeline (a spec per :func:`pipeline_spec`);
    *after_pass* is invoked after every pass execution on every function —
    the bcc CLI's ``--emit-ir-after`` hook.  *verify_each* runs the IR
    verifier around every pass (see :func:`optimize_function`).
    """
    if not enabled:
        return program
    spec = pipeline_spec(passes)
    if not spec:
        return program
    for func in program.functions:
        optimize_function(func, passes=spec, after_pass=after_pass,
                          verify_each=verify_each)
    return program
