"""The BLC compiler: a from-scratch optimizing mini-C compiler targeting the
MIPS-like ISA.

Pipeline: :mod:`~repro.bcc.lexer` -> :mod:`~repro.bcc.parser` ->
:mod:`~repro.bcc.sema` -> :mod:`~repro.bcc.irgen` -> :mod:`~repro.bcc.opt`
-> :mod:`~repro.bcc.regalloc` -> :mod:`~repro.bcc.codegen`, driven by
:mod:`~repro.bcc.driver`. The :mod:`~repro.bcc.runtime` library (malloc,
string routines, syscall wrappers) is linked into every program.
"""

from repro.bcc.driver import (
    analyze_source, compile_and_link, compile_to_asm, compile_to_ir,
)
from repro.bcc.errors import CompileError
from repro.bcc.lexer import tokenize
from repro.bcc.parser import parse

__all__ = [
    "CompileError",
    "tokenize",
    "parse",
    "analyze_source",
    "compile_to_ir",
    "compile_to_asm",
    "compile_and_link",
]
