"""Semantic analysis for BLC.

Resolves names and types, checks every expression, inserts explicit
:class:`~repro.bcc.ast_nodes.Cast` nodes for the implicit conversions the IR
generator must perform, and records which locals have their address taken
(those are frame-allocated; the rest live in virtual registers — the
procedure-wide register allocation the Guard heuristic depends on).

Functions may be used before their definition (signatures are collected in a
first pass), matching the mutual recursion in the benchmark programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.types import (
    ArrayType, CHAR, CType, DOUBLE, FuncType, INT, PointerType, StructType,
    TypeSpec, VOID, VoidType,
)

__all__ = ["Symbol", "FunctionSymbol", "SemanticInfo", "analyze",
           "BUILTIN_SIGNATURES"]

#: Syscall wrappers implemented in assembly — never definable in BLC.
ASM_BUILTINS = frozenset({
    "print_int", "print_char", "print_str", "print_double",
    "read_int", "read_double", "exit", "sbrk", "d_sqrt",
})

#: Functions provided by the runtime (assembly wrappers and the BLC library),
#: predeclared in every program's global scope.
BUILTIN_SIGNATURES: dict[str, FuncType] = {
    # syscall wrappers (assembly)
    "print_int": FuncType(VOID, (INT,)),
    "print_char": FuncType(VOID, (INT,)),
    "print_str": FuncType(VOID, (PointerType(CHAR),)),
    "print_double": FuncType(VOID, (DOUBLE,)),
    "read_int": FuncType(INT, ()),
    "read_double": FuncType(DOUBLE, ()),
    "exit": FuncType(VOID, (INT,)),
    "sbrk": FuncType(PointerType(CHAR), (INT,)),
    "d_sqrt": FuncType(DOUBLE, (DOUBLE,)),
    # BLC runtime library
    "malloc": FuncType(PointerType(CHAR), (INT,)),
    "free": FuncType(VOID, (PointerType(CHAR),)),
    "memset": FuncType(VOID, (PointerType(CHAR), INT, INT)),
    "memcpy": FuncType(VOID, (PointerType(CHAR), PointerType(CHAR), INT)),
    "strlen": FuncType(INT, (PointerType(CHAR),)),
    "strcmp": FuncType(INT, (PointerType(CHAR), PointerType(CHAR))),
    "strcpy": FuncType(VOID, (PointerType(CHAR), PointerType(CHAR))),
    "rand_seed": FuncType(VOID, (INT,)),
    "rand_next": FuncType(INT, (INT,)),
    "i_abs": FuncType(INT, (INT,)),
    "i_max": FuncType(INT, (INT, INT)),
    "i_min": FuncType(INT, (INT, INT)),
    "d_abs": FuncType(DOUBLE, (DOUBLE,)),
}


@dataclass
class Symbol:
    """A variable: global, local, or parameter."""

    name: str
    ctype: CType
    kind: str  #: "global" | "local" | "param"
    address_taken: bool = False
    #: set by IR gen: frame offset or data-segment label
    storage: object = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Symbol {self.kind} {self.name}: {self.ctype}>"


@dataclass
class FunctionSymbol:
    """A function: its signature and (for defined functions) its AST."""

    name: str
    ftype: FuncType
    defined: bool = False
    is_builtin: bool = False


@dataclass
class SemanticInfo:
    """Everything later phases need, produced by :func:`analyze`."""

    program: A.Program
    globals: list[A.GlobalVar] = field(default_factory=list)
    functions: list[A.FuncDef] = field(default_factory=list)
    structs: dict[str, StructType] = field(default_factory=dict)
    function_symbols: dict[str, FunctionSymbol] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def define(self, sym: Symbol, node: A.Node) -> None:
        if sym.name in self.names:
            raise _err(f"redefinition of {sym.name!r}", node)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _err(message: str, node: A.Node) -> CompileError:
    return CompileError(message, line=node.line, col=node.col,
                        filename=node.filename)


def _is_lvalue(expr: A.Expr) -> bool:
    if isinstance(expr, A.Ident):
        return True
    if isinstance(expr, (A.Index, A.Member)):
        return True
    if isinstance(expr, A.Unary) and expr.op == "*":
        return True
    return False


class _Analyzer:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.info = SemanticInfo(program)
        self.global_scope = _Scope()
        for name, ftype in BUILTIN_SIGNATURES.items():
            self.info.function_symbols[name] = FunctionSymbol(
                name, ftype, defined=name in ASM_BUILTINS, is_builtin=True)
        self.current_function: A.FuncDef | None = None
        self.current_ret: CType = VOID
        self.loop_depth = 0

    # -- type resolution -----------------------------------------------------

    def resolve_type(self, spec: TypeSpec, node: A.Node,
                     allow_void: bool = False) -> CType:
        if isinstance(spec.base, tuple):
            name = spec.base[1]
            struct = self.info.structs.get(name)
            if struct is None:
                struct = StructType(name)
                self.info.structs[name] = struct
            base: CType = struct
        else:
            base = {"int": INT, "char": CHAR, "double": DOUBLE,
                    "void": VOID}[spec.base]
        ctype = base
        for _ in range(spec.pointer_depth):
            ctype = PointerType(ctype)
        for dim in reversed(spec.array_dims):
            if isinstance(ctype, VoidType):
                raise _err("array of void", node)
            ctype = ArrayType(ctype, dim)
        if isinstance(ctype, VoidType) and not allow_void:
            raise _err("variable cannot have type void", node)
        if isinstance(ctype, StructType) and not ctype.complete:
            raise _err(f"struct {ctype.name} used by value before its "
                       "definition", node)
        if isinstance(ctype, ArrayType):
            elem = ctype
            while isinstance(elem, ArrayType):
                elem = elem.element
            if isinstance(elem, StructType) and not elem.complete:
                raise _err(f"array of incomplete struct {elem.name}", node)
        return ctype

    # -- entry point -----------------------------------------------------------

    def run(self) -> SemanticInfo:
        # pass 1: struct layouts, global symbols, function signatures
        for decl in self.program.decls:
            if isinstance(decl, A.StructDef):
                self._declare_struct(decl)
            elif isinstance(decl, A.GlobalVar):
                self._declare_global(decl)
            elif isinstance(decl, A.FuncDef):
                self._declare_function(decl)
            else:  # pragma: no cover - parser produces only these
                raise _err("unexpected top-level declaration", decl)
        # pass 2: function bodies
        for decl in self.program.decls:
            if isinstance(decl, A.FuncDef):
                self._check_function(decl)
        return self.info

    def _declare_struct(self, decl: A.StructDef) -> None:
        struct = self.info.structs.get(decl.name)
        if struct is None:
            struct = StructType(decl.name)
            self.info.structs[decl.name] = struct
        if struct.complete:
            raise _err(f"struct {decl.name} redefined", decl)
        fields: list[tuple[str, CType]] = []
        for fname, fspec in decl.fields:
            ftype = self.resolve_type(fspec, decl)
            fields.append((fname, ftype))
        try:
            struct.define(fields)
        except CompileError as exc:
            raise _err(exc.message, decl) from None

    def _declare_global(self, decl: A.GlobalVar) -> None:
        ctype = self.resolve_type(decl.declared_type, decl)
        sym = Symbol(decl.name, ctype, "global")
        self.global_scope.define(sym, decl)
        decl.symbol = sym
        if decl.init is not None:
            decl.init = self._check_global_init(decl.init, ctype)
        self.info.globals.append(decl)

    def _check_global_init(self, init: A.Expr, ctype: CType) -> A.Expr:
        if ctype.is_pointer and isinstance(init, A.StringLit):
            if ctype != PointerType(CHAR):
                raise _err("string initializer requires char*", init)
            init.ctype = PointerType(CHAR)
            return init
        if ctype.is_double:
            value = self._eval_const(init)
            lit = A.DoubleLit(float(value), line=init.line, col=init.col,
                              filename=init.filename)
            lit.ctype = DOUBLE
            return lit
        if ctype.is_integer or ctype.is_pointer:
            value = self._eval_const(init)
            if not isinstance(value, int):
                raise _err("integer constant required", init)
            lit = A.IntLit(value, line=init.line, col=init.col,
                           filename=init.filename)
            lit.ctype = INT
            return lit
        raise _err("only scalar globals may have initializers", init)

    def _eval_const(self, expr: A.Expr):
        """Evaluate a constant expression for a global initializer."""
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.CharLit):
            return expr.value
        if isinstance(expr, A.DoubleLit):
            return expr.value
        if isinstance(expr, A.Unary) and expr.op == "-":
            return -self._eval_const(expr.operand)
        if isinstance(expr, A.Binary):
            left = self._eval_const(expr.left)
            right = self._eval_const(expr.right)
            ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                   "*": lambda a, b: a * b, "/": lambda a, b: a // b
                   if isinstance(a, int) and isinstance(b, int) else a / b}
            if expr.op in ops:
                return ops[expr.op](left, right)
        raise _err("initializer is not a constant expression", expr)

    def _declare_function(self, decl: A.FuncDef) -> None:
        ret = self.resolve_type(decl.return_type, decl, allow_void=True)
        if isinstance(ret, (ArrayType, StructType)):
            raise _err("functions cannot return arrays or structs by value "
                       "(return a pointer)", decl)
        param_types: list[CType] = []
        for param in decl.params:
            ptype = self.resolve_type(param.declared_type, param)
            if isinstance(ptype, (ArrayType, StructType)):
                raise _err(f"parameter {param.name!r} must be scalar "
                           "(pass arrays/structs by pointer)", param)
            param_types.append(ptype)
        ftype = FuncType(ret, tuple(param_types))
        existing = self.info.function_symbols.get(decl.name)
        if existing is not None:
            if existing.is_builtin and not existing.defined:
                # the BLC runtime library defining its own predeclared entry
                if existing.ftype != ftype:
                    raise _err(
                        f"{decl.name!r} must match its runtime signature "
                        f"{existing.ftype}", decl)
                existing.defined = True
                self.info.functions.append(decl)
                return
            if existing.is_builtin:
                raise _err(f"{decl.name!r} is a reserved runtime function",
                           decl)
            raise _err(f"redefinition of function {decl.name!r}", decl)
        if self.global_scope.lookup(decl.name) is not None:
            raise _err(f"{decl.name!r} already declared as a variable", decl)
        self.info.function_symbols[decl.name] = FunctionSymbol(
            decl.name, ftype, defined=True)
        self.info.functions.append(decl)

    # -- function bodies --------------------------------------------------------

    def _check_function(self, decl: A.FuncDef) -> None:
        fsym = self.info.function_symbols[decl.name]
        self.current_function = decl
        self.current_ret = fsym.ftype.ret
        scope = _Scope(self.global_scope)
        for param, ptype in zip(decl.params, fsym.ftype.params):
            sym = Symbol(param.name, ptype, "param")
            scope.define(sym, param)
            param.symbol = sym
        self._check_block(decl.body, scope)
        self.current_function = None

    def _check_block(self, block: A.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, A.Empty):
            pass
        elif isinstance(stmt, A.VarDecl):
            ctype = self.resolve_type(stmt.declared_type, stmt)
            sym = Symbol(stmt.name, ctype, "local")
            scope.define(sym, stmt)
            stmt.symbol = sym
            if stmt.init is not None:
                if not ctype.is_scalar:
                    raise _err("only scalar locals may have initializers",
                               stmt)
                self._check_expr(stmt.init, scope)
                stmt.init = self._convert(stmt.init, ctype)
        elif isinstance(stmt, A.If):
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, A.While):
            self._check_condition(stmt.cond, scope)
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, A.DoWhile):
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self.loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, A.Break):
            if self.loop_depth == 0:
                raise _err("break outside loop", stmt)
        elif isinstance(stmt, A.Continue):
            if self.loop_depth == 0:
                raise _err("continue outside loop", stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is None:
                if not self.current_ret.is_void:
                    raise _err("return without value in non-void function",
                               stmt)
            else:
                if self.current_ret.is_void:
                    raise _err("return with value in void function", stmt)
                self._check_expr(stmt.value, scope)
                stmt.value = self._convert(stmt.value, self.current_ret)
        else:  # pragma: no cover
            raise _err(f"unhandled statement {type(stmt).__name__}", stmt)

    def _check_condition(self, expr: A.Expr, scope: _Scope) -> None:
        self._check_expr(expr, scope)
        if not self._decayed(expr.ctype).is_scalar:
            raise _err(f"condition must be scalar, got {expr.ctype}", expr)

    # -- expressions -----------------------------------------------------------

    @staticmethod
    def _decayed(ctype: CType) -> CType:
        return ctype.decay() if isinstance(ctype, ArrayType) else ctype

    def _convert(self, expr: A.Expr, target: CType) -> A.Expr:
        """Insert an implicit conversion of *expr* to *target* if needed."""
        src = self._decayed(expr.ctype)
        if src == target:
            expr.ctype = target if isinstance(expr.ctype, ArrayType) else expr.ctype
            return self._maybe_decay(expr, target)
        if src.is_arith and target.is_arith:
            return self._cast_node(expr, target)
        if src.is_pointer and target.is_pointer:
            if src.target == VOID or target.target == VOID or src == target:
                return self._cast_node(expr, target)
            raise _err(f"cannot implicitly convert {src} to {target} "
                       "(use a cast)", expr)
        if target.is_pointer and isinstance(expr, A.IntLit) and expr.value == 0:
            return self._cast_node(expr, target)
        if target.is_integer and src.is_pointer:
            raise _err(f"cannot implicitly convert {src} to {target} "
                       "(use a cast)", expr)
        raise _err(f"cannot convert {src} to {target}", expr)

    def _maybe_decay(self, expr: A.Expr, target: CType) -> A.Expr:
        if isinstance(expr.ctype, ArrayType):
            expr.ctype = expr.ctype.decay()
        return expr

    @staticmethod
    def _cast_node(expr: A.Expr, target: CType) -> A.Expr:
        cast = A.Cast(None, expr, line=expr.line, col=expr.col,
                      filename=expr.filename)
        cast.ctype = target
        return cast

    def _check_expr(self, expr: A.Expr, scope: _Scope) -> CType:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover
            raise _err(f"unhandled expression {type(expr).__name__}", expr)
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _expr_IntLit(self, expr: A.IntLit, scope: _Scope) -> CType:
        return INT

    def _expr_DoubleLit(self, expr: A.DoubleLit, scope: _Scope) -> CType:
        return DOUBLE

    def _expr_CharLit(self, expr: A.CharLit, scope: _Scope) -> CType:
        return INT

    def _expr_StringLit(self, expr: A.StringLit, scope: _Scope) -> CType:
        return PointerType(CHAR)

    def _expr_Ident(self, expr: A.Ident, scope: _Scope) -> CType:
        sym = scope.lookup(expr.name)
        if sym is None:
            if expr.name in self.info.function_symbols:
                raise _err(f"function {expr.name!r} used as a value "
                           "(function pointers are not supported)", expr)
            raise _err(f"undeclared identifier {expr.name!r}", expr)
        expr.symbol = sym
        return sym.ctype

    def _expr_Unary(self, expr: A.Unary, scope: _Scope) -> CType:
        operand_type = self._check_expr(expr.operand, scope)
        op = expr.op
        if op == "&":
            if not _is_lvalue(expr.operand):
                raise _err("cannot take address of this expression", expr)
            self._mark_address_taken(expr.operand)
            if isinstance(operand_type, ArrayType):
                return PointerType(operand_type.element)
            return PointerType(operand_type)
        if op == "*":
            decayed = self._decayed(operand_type)
            if not decayed.is_pointer:
                raise _err(f"cannot dereference {operand_type}", expr)
            if decayed.target.is_void:
                raise _err("cannot dereference void*", expr)
            return decayed.target
        if op == "-":
            if not operand_type.is_arith:
                raise _err(f"unary - requires arithmetic type, got "
                           f"{operand_type}", expr)
            return DOUBLE if operand_type.is_double else INT
        if op == "~":
            if not operand_type.is_integer:
                raise _err(f"~ requires integer type, got {operand_type}",
                           expr)
            return INT
        if op == "!":
            if not self._decayed(operand_type).is_scalar:
                raise _err(f"! requires scalar type, got {operand_type}", expr)
            return INT
        raise _err(f"unknown unary operator {op}", expr)  # pragma: no cover

    def _mark_address_taken(self, expr: A.Expr) -> None:
        if isinstance(expr, A.Ident) and expr.symbol is not None:
            expr.symbol.address_taken = True
        elif isinstance(expr, A.Index):
            self._mark_address_taken(expr.base)
        elif isinstance(expr, A.Member) and not expr.arrow:
            self._mark_address_taken(expr.base)

    def _expr_IncDec(self, expr: A.IncDec, scope: _Scope) -> CType:
        ctype = self._check_expr(expr.operand, scope)
        if not _is_lvalue(expr.operand):
            raise _err(f"{expr.op} requires an lvalue", expr)
        if not (ctype.is_integer or ctype.is_pointer or ctype.is_double):
            raise _err(f"{expr.op} requires scalar type, got {ctype}", expr)
        return ctype

    def _expr_Binary(self, expr: A.Binary, scope: _Scope) -> CType:
        op = expr.op
        left = self._decayed(self._check_expr(expr.left, scope))
        right = self._decayed(self._check_expr(expr.right, scope))

        if op in ("&&", "||"):
            if not (left.is_scalar and right.is_scalar):
                raise _err(f"{op} requires scalar operands", expr)
            return INT

        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_pointer or right.is_pointer:
                self._check_pointer_comparison(expr, left, right)
                return INT
            if not (left.is_arith and right.is_arith):
                raise _err(f"cannot compare {left} and {right}", expr)
            common = DOUBLE if (left.is_double or right.is_double) else INT
            expr.left = self._convert(expr.left, common)
            expr.right = self._convert(expr.right, common)
            return INT

        if op in ("+", "-"):
            if left.is_pointer and right.is_integer:
                expr.right = self._convert(expr.right, INT)
                return left
            if op == "+" and left.is_integer and right.is_pointer:
                expr.left = self._convert(expr.left, INT)
                return right
            if op == "-" and left.is_pointer and right.is_pointer:
                if left != right:
                    raise _err(f"cannot subtract {right} from {left}", expr)
                return INT

        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not (left.is_integer and right.is_integer):
                raise _err(f"{op} requires integer operands, got {left} and "
                           f"{right}", expr)
            expr.left = self._convert(expr.left, INT)
            expr.right = self._convert(expr.right, INT)
            return INT

        if op in ("+", "-", "*", "/"):
            if not (left.is_arith and right.is_arith):
                raise _err(f"{op} requires arithmetic operands, got {left} "
                           f"and {right}", expr)
            common = DOUBLE if (left.is_double or right.is_double) else INT
            expr.left = self._convert(expr.left, common)
            expr.right = self._convert(expr.right, common)
            return common

        raise _err(f"unknown binary operator {op}", expr)  # pragma: no cover

    def _check_pointer_comparison(self, expr: A.Binary, left: CType,
                                  right: CType) -> None:
        def null_ok(side: A.Expr, other: CType) -> bool:
            return isinstance(side, A.IntLit) and side.value == 0

        if left.is_pointer and right.is_pointer:
            lt = left.target
            rt = right.target
            if left != right and lt != VOID and rt != VOID:
                raise _err(f"cannot compare {left} with {right}", expr)
            return
        if left.is_pointer and null_ok(expr.right, left):
            expr.right = self._convert(expr.right, left)
            return
        if right.is_pointer and null_ok(expr.left, right):
            expr.left = self._convert(expr.left, right)
            return
        raise _err("pointer compared with non-pointer", expr)

    def _expr_Assign(self, expr: A.Assign, scope: _Scope) -> CType:
        target_type = self._check_expr(expr.target, scope)
        if not _is_lvalue(expr.target):
            raise _err("assignment target is not an lvalue", expr)
        if isinstance(target_type, (ArrayType, StructType)):
            raise _err("cannot assign whole arrays or structs "
                       "(copy members or use memcpy)", expr)
        self._check_expr(expr.value, scope)
        if expr.op is not None:
            # desugar check: target OP value must be valid
            fake = A.Binary(expr.op, expr.target, expr.value, line=expr.line,
                            col=expr.col, filename=expr.filename)
            # re-check without re-walking target (types already set)
            left = self._decayed(target_type)
            right = self._decayed(expr.value.ctype)
            if expr.op in ("&", "|", "^", "<<", ">>", "%"):
                if not (left.is_integer and right.is_integer):
                    raise _err(f"{expr.op}= requires integer operands", expr)
                expr.value = self._convert(expr.value, INT)
            elif left.is_pointer:
                if expr.op not in ("+", "-") or not right.is_integer:
                    raise _err(f"invalid pointer compound assignment", expr)
                expr.value = self._convert(expr.value, INT)
            else:
                if not (left.is_arith and right.is_arith):
                    raise _err(f"{expr.op}= requires arithmetic operands",
                               expr)
                expr.value = self._convert(expr.value, left)
            return target_type
        expr.value = self._convert(expr.value, target_type)
        return target_type

    def _expr_Cond(self, expr: A.Cond, scope: _Scope) -> CType:
        self._check_expr(expr.cond, scope)
        if not self._decayed(expr.cond.ctype).is_scalar:
            raise _err("ternary condition must be scalar", expr)
        then_t = self._decayed(self._check_expr(expr.then, scope))
        else_t = self._decayed(self._check_expr(expr.otherwise, scope))
        if then_t == else_t:
            return then_t
        if then_t.is_arith and else_t.is_arith:
            common = DOUBLE if (then_t.is_double or else_t.is_double) else INT
            expr.then = self._convert(expr.then, common)
            expr.otherwise = self._convert(expr.otherwise, common)
            return common
        if then_t.is_pointer and isinstance(expr.otherwise, A.IntLit) \
                and expr.otherwise.value == 0:
            expr.otherwise = self._convert(expr.otherwise, then_t)
            return then_t
        if else_t.is_pointer and isinstance(expr.then, A.IntLit) \
                and expr.then.value == 0:
            expr.then = self._convert(expr.then, else_t)
            return else_t
        raise _err(f"incompatible ternary arms: {then_t} vs {else_t}", expr)

    def _expr_Call(self, expr: A.Call, scope: _Scope) -> CType:
        fsym = self.info.function_symbols.get(expr.name)
        if fsym is None:
            raise _err(f"call to undefined function {expr.name!r}", expr)
        expr.symbol = fsym
        ftype = fsym.ftype
        if len(expr.args) != len(ftype.params):
            raise _err(f"{expr.name} expects {len(ftype.params)} arguments, "
                       f"got {len(expr.args)}", expr)
        for i, (arg, ptype) in enumerate(zip(expr.args, ftype.params)):
            self._check_expr(arg, scope)
            expr.args[i] = self._convert(arg, ptype)
        return ftype.ret

    def _expr_Index(self, expr: A.Index, scope: _Scope) -> CType:
        base = self._decayed(self._check_expr(expr.base, scope))
        if not base.is_pointer:
            raise _err(f"cannot index {expr.base.ctype}", expr)
        self._check_expr(expr.index, scope)
        if not self._decayed(expr.index.ctype).is_integer:
            raise _err("array index must be an integer", expr)
        expr.index = self._convert(expr.index, INT)
        if base.target.is_void:
            raise _err("cannot index void*", expr)
        return base.target

    def _expr_Member(self, expr: A.Member, scope: _Scope) -> CType:
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            decayed = self._decayed(base)
            if not (decayed.is_pointer
                    and isinstance(decayed.target, StructType)):
                raise _err(f"-> requires pointer to struct, got {base}", expr)
            struct = decayed.target
        else:
            if not isinstance(base, StructType):
                raise _err(f". requires a struct, got {base}", expr)
            struct = base
        try:
            return struct.field_named(expr.name).ctype
        except CompileError as exc:
            raise _err(exc.message, expr) from None

    def _expr_Cast(self, expr: A.Cast, scope: _Scope) -> CType:
        operand = self._decayed(self._check_expr(expr.operand, scope))
        if expr.target_type is None:
            # implicit cast inserted by sema itself; ctype already set
            return expr.ctype
        target = self.resolve_type(expr.target_type, expr, allow_void=True)
        if target.is_void:
            return VOID
        if target.is_pointer and (operand.is_pointer or operand.is_integer):
            return target
        if target.is_integer and (operand.is_pointer or operand.is_arith):
            return target
        if target.is_double and operand.is_arith:
            return target
        raise _err(f"invalid cast from {operand} to {target}", expr)

    def _expr_SizeofType(self, expr: A.SizeofType, scope: _Scope) -> CType:
        ctype = self.resolve_type(expr.target_type, expr)
        expr.target_type = ctype
        return INT


def analyze(program: A.Program) -> SemanticInfo:
    """Run semantic analysis; returns the annotated program's metadata."""
    return _Analyzer(program).run()
