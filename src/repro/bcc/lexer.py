"""Lexer for BLC, the mini-C language of the benchmark suite.

Tokens carry their source position for diagnostics. Comments are ``//`` to
end of line and ``/* ... */`` (non-nesting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bcc.errors import CompileError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "int", "char", "double", "void", "struct", "if", "else", "while", "for",
    "do", "break", "continue", "return", "sizeof", "NULL",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


class TokenKind:
    """Token categories (plain strings keep match statements readable)."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int_lit"
    DOUBLE = "double_lit"
    CHAR = "char_lit"
    STRING = "string_lit"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    value: object = None  #: parsed value for literals
    line: int = 0
    col: int = 0
    filename: str = "<input>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.col})"


_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"', "'": "'",
            "r": "\r"}


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Tokenize *source*; the returned list always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> CompileError:
        return CompileError(msg, line=line, col=col, filename=filename)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance()
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance()
            if i >= n:
                raise CompileError("unterminated /* comment", line=start_line,
                                   col=start_col, filename=filename)
            advance(2)
            continue

        tok_line, tok_col = line, col

        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            if text == "NULL":
                tokens.append(Token(TokenKind.INT, text, 0, tok_line, tok_col,
                                    filename))
            else:
                tokens.append(Token(kind, text, None, tok_line, tok_col,
                                    filename))
            advance(j - i)
            continue

        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_double = False
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                text = source[i:j]
                tokens.append(Token(TokenKind.INT, text, int(text, 16),
                                    tok_line, tok_col, filename))
                advance(j - i)
                continue
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_double = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                is_double = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_double:
                tokens.append(Token(TokenKind.DOUBLE, text, float(text),
                                    tok_line, tok_col, filename))
            else:
                tokens.append(Token(TokenKind.INT, text, int(text),
                                    tok_line, tok_col, filename))
            advance(j - i)
            continue

        # char literal
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise error("bad escape in char literal")
                value = ord(_ESCAPES[source[j + 1]])
                j += 2
            elif j < n and source[j] != "'":
                value = ord(source[j])
                j += 1
            else:
                raise error("empty char literal")
            if j >= n or source[j] != "'":
                raise error("unterminated char literal")
            j += 1
            tokens.append(Token(TokenKind.CHAR, source[i:j], value,
                                tok_line, tok_col, filename))
            advance(j - i)
            continue

        # string literal
        if ch == '"':
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise error("bad escape in string literal")
                    chars.append(_ESCAPES[source[j + 1]])
                    j += 2
                elif source[j] == "\n":
                    raise error("newline in string literal")
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            j += 1
            tokens.append(Token(TokenKind.STRING, source[i:j], "".join(chars),
                                tok_line, tok_col, filename))
            advance(j - i)
            continue

        # operators
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, None, tok_line, tok_col,
                                    filename))
                advance(len(op))
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", None, line, col, filename))
    return tokens
