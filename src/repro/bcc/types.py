"""BLC's type system.

Scalar types are ``int`` (32-bit signed), ``char`` (8-bit signed),
``double`` (IEEE 754 binary64), and ``void``; derived types are pointers,
fixed-length arrays, and structs. There are no unions, bitfields, function
pointers, or whole-struct assignment (structs are manipulated through
pointers and member accesses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bcc.errors import CompileError

__all__ = [
    "CType", "IntType", "CharType", "DoubleType", "VoidType",
    "PointerType", "ArrayType", "StructType", "FuncType",
    "INT", "CHAR", "DOUBLE", "VOID",
    "TypeSpec",
]


class CType:
    """Base class for all BLC types."""

    def size(self) -> int:
        raise NotImplementedError

    def align(self) -> int:
        raise NotImplementedError

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, CharType, DoubleType, PointerType))

    @property
    def is_integer(self) -> bool:
        return isinstance(self, (IntType, CharType))

    @property
    def is_arith(self) -> bool:
        return isinstance(self, (IntType, CharType, DoubleType))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_double(self) -> bool:
        return isinstance(self, DoubleType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class IntType(CType):
    def size(self) -> int:
        return 4

    def align(self) -> int:
        return 4

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType)

    def __hash__(self) -> int:
        return hash("int")

    def __str__(self) -> str:
        return "int"


class CharType(CType):
    def size(self) -> int:
        return 1

    def align(self) -> int:
        return 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharType)

    def __hash__(self) -> int:
        return hash("char")

    def __str__(self) -> str:
        return "char"


class DoubleType(CType):
    def size(self) -> int:
        return 8

    def align(self) -> int:
        return 8

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DoubleType)

    def __hash__(self) -> int:
        return hash("double")

    def __str__(self) -> str:
        return "double"


class VoidType(CType):
    def size(self) -> int:
        raise CompileError("void has no size")

    def align(self) -> int:
        raise CompileError("void has no alignment")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


INT = IntType()
CHAR = CharType()
DOUBLE = DoubleType()
VOID = VoidType()


@dataclass(frozen=True)
class PointerType(CType):
    target: CType

    def size(self) -> int:
        return 4

    def align(self) -> int:
        return 4

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def size(self) -> int:
        return self.element.size() * self.length

    def align(self) -> int:
        return self.element.align()

    def decay(self) -> PointerType:
        """Array-to-pointer decay."""
        return PointerType(self.element)

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass
class StructField:
    name: str
    ctype: CType
    offset: int


class StructType(CType):
    """A named struct with laid-out fields (offsets computed at definition)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fields: list[StructField] = []
        self._by_name: dict[str, StructField] = {}
        self._size = 0
        self._align = 1
        self.complete = False

    def define(self, fields: list[tuple[str, CType]]) -> None:
        if self.complete:
            raise CompileError(f"struct {self.name} redefined")
        offset = 0
        for fname, ftype in fields:
            if fname in self._by_name:
                raise CompileError(
                    f"duplicate field {fname!r} in struct {self.name}")
            a = ftype.align()
            offset = (offset + a - 1) & ~(a - 1)
            sf = StructField(fname, ftype, offset)
            self.fields.append(sf)
            self._by_name[fname] = sf
            offset += ftype.size()
            self._align = max(self._align, a)
        self._size = (offset + self._align - 1) & ~(self._align - 1)
        self.complete = True

    def field_named(self, name: str) -> StructField:
        try:
            return self._by_name[name]
        except KeyError:
            raise CompileError(
                f"struct {self.name} has no field {name!r}") from None

    def size(self) -> int:
        if not self.complete:
            raise CompileError(f"struct {self.name} is incomplete")
        return self._size

    def align(self) -> int:
        if not self.complete:
            raise CompileError(f"struct {self.name} is incomplete")
        return self._align

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FuncType(CType):
    """Function signature (functions are not first-class values in BLC)."""

    ret: CType
    params: tuple[CType, ...]
    variadic: bool = False

    def size(self) -> int:
        raise CompileError("function type has no size")

    def align(self) -> int:
        raise CompileError("function type has no alignment")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({params})"


@dataclass
class TypeSpec:
    """Syntactic type from the parser, resolved to a :class:`CType` by sema.

    ``base`` is "int"/"char"/"double"/"void" or ("struct", name);
    ``pointer_depth`` counts ``*``; ``array_dims`` are the (constant)
    dimensions in source order.
    """

    base: object
    pointer_depth: int = 0
    array_dims: list[int] = field(default_factory=list)
    line: int = 0
    col: int = 0
    filename: str = "<input>"
