"""``python -m repro.bcc`` — compile (and optionally run/analyze) BLC.

Examples::

    python -m repro.bcc prog.blc --run --inputs 10,3
    python -m repro.bcc prog.blc --emit-asm
    python -m repro.bcc prog.blc --dump-ir --no-opt
    python -m repro.bcc prog.blc --dump-ir -O0
    python -m repro.bcc prog.blc --passes local-propagate,dce \
        --emit-ir-after dce
    python -m repro.bcc prog.blc --predict      # branch prediction report
"""

from __future__ import annotations

import argparse
import sys

from repro.bcc.driver import compile_and_link, compile_to_asm, compile_to_ir
from repro.bcc.errors import CompileError
from repro.bcc.opt import IR_PASSES, pipeline_spec
from repro.errors import ReproError
from repro.passes import PipelineError
from repro.telemetry.logging_setup import (
    add_logging_args, configure_from_args,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bcc",
        description="BLC compiler (MIPS-like target) with branch-prediction "
                    "analysis.")
    parser.add_argument("source", help="BLC source file")
    parser.add_argument("--run", action="store_true",
                        help="execute after compiling")
    parser.add_argument("--inputs", default="",
                        help="comma-separated values for read_int/"
                             "read_double")
    parser.add_argument("--emit-asm", action="store_true",
                        help="print the generated assembly")
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the (optimized) IR")
    parser.add_argument("--no-opt", action="store_true",
                        help="disable the optimizer (alias for -O0)")
    parser.add_argument("-O0", dest="opt_level", action="store_const",
                        const="O0", default=None,
                        help="empty optimizer pipeline")
    parser.add_argument("-O1", dest="opt_level", action="store_const",
                        const="O1",
                        help="the default fixed-point pipeline "
                             "(local-propagate, simplify-cfg, dce, "
                             "copy-coalesce)")
    parser.add_argument("--passes", default=None, metavar="SPEC",
                        help="explicit optimizer pipeline: comma-separated "
                             "registered pass names (known: "
                             + ", ".join(IR_PASSES.names()) + ")")
    parser.add_argument("--emit-ir-after", default=None, metavar="PASS",
                        help="dump the IR after every execution of PASS "
                             "that changed a function")
    parser.add_argument("--no-rotate-loops", action="store_true",
                        help="use naive top-tested loop codegen")
    parser.add_argument("--lint", action="store_true",
                        help="run the BLC source linter and exit (exit "
                             "status 1 when diagnostics were reported)")
    parser.add_argument("--verify-each", action="store_true",
                        help="run the IR verifier after IR generation and "
                             "after every optimizer pass that changed a "
                             "function")
    parser.add_argument("--predict", action="store_true",
                        help="run, then report each predictor's miss rate")
    parser.add_argument("--max-instructions", type=int, default=200_000_000)
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock watchdog deadline for --run")
    parser.add_argument("--verbose-crash", action="store_true",
                        help="print the full crash report on a fault")
    add_logging_args(parser)
    args = parser.parse_args(argv)
    log = configure_from_args(args).getChild("bcc")

    try:
        with open(args.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.lint:
        from repro.analysis.lint import lint_source
        try:
            diagnostics = lint_source(source, args.source)
        except CompileError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for diagnostic in diagnostics:
            print(diagnostic.format())
        return 1 if diagnostics else 0

    optimize = not (args.no_opt
                    or (args.opt_level == "O0" and args.passes is None))
    rotate = not args.no_rotate_loops
    inputs = [float(v) if "." in v else int(v)
              for v in args.inputs.split(",") if v]

    # resolve the optimizer pipeline spec (--passes wins over -O levels)
    try:
        passes = pipeline_spec(args.passes if args.passes is not None
                               else args.opt_level)
        after_pass = None
        if args.emit_ir_after is not None:
            IR_PASSES.get(args.emit_ir_after)  # validate the name
            if args.emit_ir_after not in passes:
                print(f"error: --emit-ir-after pass "
                      f"{args.emit_ir_after!r} is not in the pipeline "
                      f"({', '.join(passes) or 'empty'})", file=sys.stderr)
                return 2

            def after_pass(pass_, func, changed,
                           _target=args.emit_ir_after):
                if pass_.name == _target and changed:
                    print(f"; -- IR after {pass_.name} "
                          f"(func {func.name}) --")
                    print(func.dump())
    except PipelineError as exc:
        print(exc.oneline(), file=sys.stderr)
        return 2

    try:
        verify_each = args.verify_each or None
        if args.dump_ir:
            ir = compile_to_ir(source, args.source, optimize=optimize,
                               rotate_loops=rotate, passes=passes,
                               after_pass=after_pass,
                               verify_each=verify_each)
            print(ir.dump())
            return 0
        if args.emit_asm:
            print(compile_to_asm(source, args.source, optimize=optimize,
                                 rotate_loops=rotate, passes=passes,
                                 after_pass=after_pass,
                                 verify_each=verify_each))
            return 0
        executable = compile_and_link(source, args.source,
                                      optimize=optimize, rotate_loops=rotate,
                                      passes=passes, after_pass=after_pass,
                                      verify_each=verify_each)
    except CompileError as exc:
        # keep the historical compiler-diagnostic format (file:line:col)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(exc.oneline(), file=sys.stderr)
        return 1

    log.info("compiled %s: %d procedures, %.1f KB", args.source,
             len(executable.procedures), executable.code_size_kb)

    if not (args.run or args.predict):
        return 0

    from repro.sim import EdgeProfile, Machine
    profile = EdgeProfile()
    machine = Machine(executable, inputs=inputs, observers=[profile],
                      max_instructions=args.max_instructions,
                      wall_clock_deadline=args.deadline)
    try:
        status = machine.run()
    except ReproError as exc:
        # one structured line, never a traceback; the crash report is
        # available under --verbose-crash for debugging
        print(exc.oneline(), file=sys.stderr)
        if args.verbose_crash and exc.crash_report is not None:
            print(exc.crash_report.format(), file=sys.stderr)
        return 1
    sys.stdout.write(status.output)
    log.info("[%d instructions, %d branches, exit %d]",
             status.instr_count, status.dynamic_branches, status.exit_code)

    if args.predict:
        from repro.core import (
            BTFNTPredictor, HeuristicPredictor, LoopRandomPredictor,
            PerfectPredictor, RandomPredictor, TakenPredictor,
            classify_branches, evaluate_predictor,
        )
        analysis = classify_branches(executable)
        print(f"\nbranches: {len(analysis.branches)} static "
              f"({len(analysis.loop_branches())} loop, "
              f"{len(analysis.non_loop_branches())} non-loop); "
              f"miss rates (C/D):")
        predictors = [
            ("always-taken", TakenPredictor(analysis)),
            ("random", RandomPredictor(analysis)),
            ("btfnt", BTFNTPredictor(analysis)),
            ("loop+random", LoopRandomPredictor(analysis)),
            ("ball-larus", HeuristicPredictor(analysis)),
            ("perfect", PerfectPredictor(analysis, profile)),
        ]
        for name, predictor in predictors:
            result = evaluate_predictor(predictor, profile)
            print(f"  {name:14s} {result.cd()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
