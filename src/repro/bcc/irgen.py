"""AST -> IR lowering.

Loop shape matters to this reproduction: ``while`` and ``for`` loops are
*rotated* — an ``if`` guarding a ``do..while`` with the loop test replicated
in the guard — because that is how the paper's MIPS compilers emitted them
("this strategy avoids generating an extra unconditional branch") and it is
what gives the non-loop Loop heuristic its coverage. The guard branch's
*taken* edge skips the loop; the bottom-test branch's *taken* edge is the
loop back edge.

Branch polarity likewise follows MIPS convention: ``if (c) S`` becomes a
branch on ``!c`` around ``S``, so the taken edge bypasses the then-clause.
(The polarity decision itself is made at code generation from block layout;
IR just records both successor labels.)
"""

from __future__ import annotations

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.ir import (
    FP, INT, AddrFrame, AddrGlobal, BinOp, Call, CBr, Copy, Cvt, FBinOp, FNeg,
    FrameSlot, GlobalObject, GlobalSym, Imm, IRBlock, IRFunction, IRProgram,
    Jump, Load, LoadConst, LoadFConst, Ret, Store,
)
from repro.bcc.sema import SemanticInfo, Symbol
from repro.bcc.types import (
    ArrayType, CHAR, CType, DOUBLE, INT as C_INT, PointerType, StructType,
)

__all__ = ["generate_ir"]


def _err(message: str, node: A.Node) -> CompileError:
    return CompileError(message, line=node.line, col=node.col,
                        filename=node.filename)


def _mem_kind(ctype: CType) -> str:
    """Memory access kind for loading/storing a scalar of type *ctype*."""
    if ctype.is_double:
        return "d"
    if ctype == CHAR:
        return "b"
    return "w"


def _vclass(ctype: CType) -> str:
    return FP if ctype.is_double else INT


def _elem_size(ctype: CType) -> int:
    """Size of the pointee for pointer arithmetic on *ctype*."""
    if isinstance(ctype, ArrayType):
        return ctype.element.size()
    if isinstance(ctype, PointerType):
        return ctype.target.size()
    raise AssertionError(f"not an indexable type: {ctype}")


class _ModuleGen:
    """Program-level state: globals, string pool."""

    def __init__(self, info: SemanticInfo, rotate_loops: bool = True) -> None:
        self.info = info
        self.rotate_loops = rotate_loops
        self.program = IRProgram()
        self._strings: dict[str, str] = {}
        self._global_labels: dict[str, str] = {}

    def intern_string(self, text: str) -> str:
        label = self._strings.get(text)
        if label is None:
            label = f"S_{len(self._strings)}"
            self._strings[text] = label
        return label

    def run(self) -> IRProgram:
        # globals first: establish labels and layout requests
        for decl in self.info.globals:
            sym = decl.symbol
            label = f"G_{sym.name}"
            self._global_labels[sym.name] = label
            sym.storage = ("global", label)
            init: object = None
            if decl.init is not None:
                if isinstance(decl.init, A.IntLit):
                    init = decl.init.value
                elif isinstance(decl.init, A.DoubleLit):
                    init = decl.init.value
                elif isinstance(decl.init, A.StringLit):
                    init = ("ptr_to", self.intern_string(decl.init.value))
                else:  # pragma: no cover - sema guarantees constants
                    raise _err("non-constant global initializer", decl)
            self.program.globals.append(GlobalObject(
                label, sym.ctype.size(), sym.ctype.align(), init))
        # functions
        for func in self.info.functions:
            gen = _FuncGen(self, func)
            self.program.functions.append(gen.run())
        # string pool objects (after scalars so big data does not push
        # scalars out of the $gp window; final ordering is codegen's job)
        for text, label in self._strings.items():
            self.program.globals.append(GlobalObject(
                label, len(text) + 1, 1, text))
        return self.program


class _LoopContext:
    """break/continue targets for the innermost loop."""

    def __init__(self, break_label: str, continue_label: str) -> None:
        self.break_label = break_label
        self.continue_label = continue_label


class _FuncGen:
    def __init__(self, module: _ModuleGen, decl: A.FuncDef) -> None:
        self.module = module
        self.decl = decl
        fsym = module.info.function_symbols[decl.name]
        self.ftype = fsym.ftype
        self.func = IRFunction(decl.name)
        self._label_count = 0
        self.cur = self._begin(self.new_label("entry"))
        self.loops: list[_LoopContext] = []

    # -- block/label plumbing ---------------------------------------------------

    def new_label(self, hint: str) -> str:
        self._label_count += 1
        return f"L_{self.decl.name}_{self._label_count}_{hint}"

    def _begin(self, label: str) -> IRBlock:
        block = IRBlock(label)
        self.func.blocks.append(block)
        self.cur = block
        return block

    def begin(self, label: str) -> IRBlock:
        """Start a new block, falling through from the current one."""
        if not self._terminated():
            self.emit(Jump(label))
        return self._begin(label)

    def _terminated(self) -> bool:
        return bool(self.cur.instructions) and self.cur.terminator.is_terminator

    def emit(self, inst) -> None:
        if self._terminated():
            # dead code (e.g. after return); park it in an unreachable block
            self._begin(self.new_label("dead"))
        self.cur.instructions.append(inst)

    def vreg(self, klass: str) -> int:
        return self.func.new_vreg(klass)

    # -- entry ----------------------------------------------------------------

    def run(self) -> IRFunction:
        for param, ptype in zip(self.decl.params, self.ftype.params):
            sym: Symbol = param.symbol
            klass = _vclass(ptype)
            incoming = self.vreg(klass)
            self.func.params.append((param.name, incoming, klass))
            if sym.address_taken:
                slot = self.func.new_frame_object(
                    sym.name, ptype.size(), ptype.align())
                sym.storage = ("frame", slot)
                self.emit(Store(incoming, FrameSlot(slot), 0,
                                _mem_kind(ptype)))
            else:
                sym.storage = ("vreg", incoming)
        self.gen_block(self.decl.body)
        if not self._terminated():
            if self.decl.name == "main" and not self.ftype.ret.is_void:
                zero = self.vreg(INT)
                self.emit(LoadConst(zero, 0))
                self.emit(Ret(zero, INT))
            else:
                self.emit(Ret(None, None))
        return self.func

    # -- statements ----------------------------------------------------------

    def gen_block(self, block: A.Block) -> None:
        for stmt in block.statements:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, A.Empty):
            pass
        elif isinstance(stmt, A.ExprStmt):
            self.gen_expr_for_effect(stmt.expr)
        elif isinstance(stmt, A.VarDecl):
            self.gen_vardecl(stmt)
        elif isinstance(stmt, A.If):
            self.gen_if(stmt)
        elif isinstance(stmt, A.While):
            self.gen_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self.gen_do_while(stmt)
        elif isinstance(stmt, A.For):
            self.gen_for(stmt)
        elif isinstance(stmt, A.Break):
            self.emit(Jump(self.loops[-1].break_label))
        elif isinstance(stmt, A.Continue):
            self.emit(Jump(self.loops[-1].continue_label))
        elif isinstance(stmt, A.Return):
            if stmt.value is None:
                self.emit(Ret(None, None))
            else:
                value = self.gen_expr(stmt.value)
                self.emit(Ret(value, _vclass(stmt.value.ctype)))
        else:  # pragma: no cover
            raise _err(f"unhandled statement {type(stmt).__name__}", stmt)

    def gen_vardecl(self, stmt: A.VarDecl) -> None:
        sym: Symbol = stmt.symbol
        ctype = sym.ctype
        if sym.storage is None:
            if ctype.is_scalar and not sym.address_taken:
                sym.storage = ("vreg", self.vreg(_vclass(ctype)))
            else:
                slot = self.func.new_frame_object(
                    sym.name, ctype.size(), max(ctype.align(), 4))
                sym.storage = ("frame", slot)
        if stmt.init is not None:
            value = self.gen_expr(stmt.init)
            kind, where = sym.storage
            if kind == "vreg":
                self.emit(Copy(where, value))
            else:
                self.emit(Store(value, FrameSlot(where), 0, _mem_kind(ctype)))

    def gen_if(self, stmt: A.If) -> None:
        then_label = self.new_label("then")
        end_label = self.new_label("endif")
        else_label = self.new_label("else") if stmt.otherwise else end_label
        self.gen_cond(stmt.cond, then_label, else_label)
        self.begin(then_label)
        self.gen_stmt(stmt.then)
        if stmt.otherwise is not None:
            if not self._terminated():
                self.emit(Jump(end_label))
            self._begin(else_label)
            self.gen_stmt(stmt.otherwise)
        self.begin(end_label)

    def gen_while(self, stmt: A.While) -> None:
        if not self.module.rotate_loops:
            self._gen_while_top_tested(stmt)
            return
        body_label = self.new_label("loop")
        test_label = self.new_label("looptest")
        exit_label = self.new_label("loopexit")
        # rotated form: guard test (replicated), body, bottom test
        self.gen_cond(stmt.cond, body_label, exit_label)
        self.begin(body_label)
        self.loops.append(_LoopContext(exit_label, test_label))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        self.begin(test_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self._begin(exit_label)

    def _gen_while_top_tested(self, stmt: A.While) -> None:
        """Naive (non-rotated) form: test at the head, unconditional jump
        back — the ablation comparator for the rotated-loop codegen."""
        head_label = self.new_label("whead")
        body_label = self.new_label("wbody")
        exit_label = self.new_label("wexit")
        self.begin(head_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self._begin(body_label)
        self.loops.append(_LoopContext(exit_label, head_label))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        if not self._terminated():
            self.emit(Jump(head_label))
        self._begin(exit_label)

    def gen_do_while(self, stmt: A.DoWhile) -> None:
        body_label = self.new_label("doloop")
        test_label = self.new_label("dotest")
        exit_label = self.new_label("doexit")
        self.begin(body_label)
        self.loops.append(_LoopContext(exit_label, test_label))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        self.begin(test_label)
        self.gen_cond(stmt.cond, body_label, exit_label)
        self._begin(exit_label)

    def gen_for(self, stmt: A.For) -> None:
        if not self.module.rotate_loops:
            self._gen_for_top_tested(stmt)
            return
        body_label = self.new_label("forloop")
        step_label = self.new_label("forstep")
        exit_label = self.new_label("forexit")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
        self.begin(body_label)
        self.loops.append(_LoopContext(exit_label, step_label))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        self.begin(step_label)
        if stmt.step is not None:
            self.gen_expr_for_effect(stmt.step)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
        else:
            self.emit(Jump(body_label))
        self._begin(exit_label)

    def _gen_for_top_tested(self, stmt: A.For) -> None:
        head_label = self.new_label("fhead")
        body_label = self.new_label("fbody")
        step_label = self.new_label("fstep")
        exit_label = self.new_label("fexit")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        self.begin(head_label)
        if stmt.cond is not None:
            self.gen_cond(stmt.cond, body_label, exit_label)
            self._begin(body_label)
        else:
            self.begin(body_label)
        self.loops.append(_LoopContext(exit_label, step_label))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        self.begin(step_label)
        if stmt.step is not None:
            self.gen_expr_for_effect(stmt.step)
        self.emit(Jump(head_label))
        self._begin(exit_label)

    # -- conditions ------------------------------------------------------------

    def gen_cond(self, expr: A.Expr, true_label: str, false_label: str) -> None:
        """Emit control flow that reaches *true_label* iff *expr* is truthy."""
        if isinstance(expr, A.Binary) and expr.op == "&&":
            mid = self.new_label("and")
            self.gen_cond(expr.left, mid, false_label)
            self._begin(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, A.Binary) and expr.op == "||":
            mid = self.new_label("or")
            self.gen_cond(expr.left, true_label, mid)
            self._begin(mid)
            self.gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, A.Unary) and expr.op == "!":
            self.gen_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, A.Binary) and expr.op in ("==", "!=", "<", ">",
                                                      "<=", ">="):
            self._gen_compare_branch(expr, true_label, false_label)
            return
        if isinstance(expr, A.IntLit):
            self.emit(Jump(true_label if expr.value else false_label))
            return
        value = self.gen_expr(expr)
        if expr.ctype.is_double:
            zero = self.vreg(FP)
            self.emit(LoadFConst(zero, 0.0))
            self.emit(CBr("ne", value, zero, true_label, false_label, fp=True))
        else:
            self.emit(CBr("ne", value, Imm(0), true_label, false_label))

    _CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt",
            ">=": "ge"}

    def _gen_compare_branch(self, expr: A.Binary, true_label: str,
                            false_label: str) -> None:
        op = self._CMP[expr.op]
        left_t = expr.left.ctype
        if left_t.is_double:
            a = self.gen_expr(expr.left)
            b = self.gen_expr(expr.right)
            self.emit(CBr(op, a, b, true_label, false_label, fp=True))
            return
        a = self.gen_expr(expr.left)
        right = expr.right
        if isinstance(right, A.IntLit) and right.value == 0:
            self.emit(CBr(op, a, Imm(0), true_label, false_label))
            return
        # also recognise 0 behind an implicit conversion (e.g. char -> int)
        if isinstance(right, A.Cast) and isinstance(right.operand, A.IntLit) \
                and right.operand.value == 0 and not right.ctype.is_double:
            self.emit(CBr(op, a, Imm(0), true_label, false_label))
            return
        b = self.gen_expr(right)
        if op in ("eq", "ne"):
            self.emit(CBr(op, a, b, true_label, false_label))
            return
        # lower relationals through slt so codegen's branches are
        # compare-to-zero or eq/ne forms only
        t = self.vreg(INT)
        if op == "lt":
            self.emit(BinOp("slt", t, a, b))
            self.emit(CBr("ne", t, Imm(0), true_label, false_label))
        elif op == "ge":
            self.emit(BinOp("slt", t, a, b))
            self.emit(CBr("eq", t, Imm(0), true_label, false_label))
        elif op == "gt":
            self.emit(BinOp("slt", t, b, a))
            self.emit(CBr("ne", t, Imm(0), true_label, false_label))
        else:  # le
            self.emit(BinOp("slt", t, b, a))
            self.emit(CBr("eq", t, Imm(0), true_label, false_label))

    # -- expressions -----------------------------------------------------------

    def gen_expr_for_effect(self, expr: A.Expr) -> None:
        """Evaluate for side effects, discarding the value."""
        if isinstance(expr, A.Call) and expr.ctype.is_void:
            self._gen_call(expr, want_value=False)
            return
        if isinstance(expr, (A.Assign, A.IncDec, A.Call)):
            self.gen_expr(expr)
            return
        if isinstance(expr, A.Cast) and expr.ctype.is_void:
            self.gen_expr_for_effect(expr.operand)
            return
        # pure expression in statement position: still evaluate (may trap)
        self.gen_expr(expr)

    def gen_expr(self, expr: A.Expr) -> int:
        method = getattr(self, f"_gen_{type(expr).__name__}")
        return method(expr)

    def _gen_IntLit(self, expr: A.IntLit) -> int:
        v = self.vreg(INT)
        self.emit(LoadConst(v, expr.value))
        return v

    def _gen_CharLit(self, expr: A.CharLit) -> int:
        v = self.vreg(INT)
        self.emit(LoadConst(v, expr.value))
        return v

    def _gen_DoubleLit(self, expr: A.DoubleLit) -> int:
        v = self.vreg(FP)
        self.emit(LoadFConst(v, expr.value))
        return v

    def _gen_StringLit(self, expr: A.StringLit) -> int:
        label = self.module.intern_string(expr.value)
        v = self.vreg(INT)
        self.emit(AddrGlobal(v, label))
        return v

    def _gen_Ident(self, expr: A.Ident) -> int:
        sym: Symbol = expr.symbol
        self._ensure_storage(sym)
        kind, where = sym.storage
        ctype = sym.ctype
        if isinstance(ctype, ArrayType):
            # decay to pointer to first element
            v = self.vreg(INT)
            if kind == "frame":
                self.emit(AddrFrame(v, where))
            else:
                self.emit(AddrGlobal(v, where))
            return v
        if kind == "vreg":
            return where
        base = FrameSlot(where) if kind == "frame" else GlobalSym(where)
        v = self.vreg(_vclass(ctype))
        self.emit(Load(v, base, 0, _mem_kind(ctype)))
        return v

    def _ensure_storage(self, sym: Symbol) -> None:
        """Locals declared later in the block may be referenced by position
        in degenerate cases; allocate storage lazily and deterministically."""
        if sym.storage is None:
            if sym.ctype.is_scalar and not sym.address_taken:
                sym.storage = ("vreg", self.vreg(_vclass(sym.ctype)))
            else:
                slot = self.func.new_frame_object(
                    sym.name, sym.ctype.size(), max(sym.ctype.align(), 4))
                sym.storage = ("frame", slot)

    # -- lvalue addressing -------------------------------------------------------

    def gen_addr(self, expr: A.Expr) -> tuple[object, int]:
        """Address of an lvalue as (base, constant offset); base is a vreg,
        FrameSlot, or GlobalSym."""
        if isinstance(expr, A.Ident):
            sym: Symbol = expr.symbol
            self._ensure_storage(sym)
            kind, where = sym.storage
            if kind == "vreg":
                raise AssertionError(
                    f"address of register-resident {sym.name}")
            return (FrameSlot(where) if kind == "frame" else GlobalSym(where),
                    0)
        if isinstance(expr, A.Unary) and expr.op == "*":
            return self.gen_expr(expr.operand), 0
        if isinstance(expr, A.Index):
            return self._gen_index_addr(expr)
        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self.gen_expr(expr.base)
                struct: StructType = expr.base.ctype
                if isinstance(struct, PointerType):
                    struct = struct.target
                offset = struct.field_named(expr.name).offset
                return base, offset
            base, offset = self.gen_addr(expr.base)
            struct = expr.base.ctype
            return base, offset + struct.field_named(expr.name).offset
        raise _err("expression is not an lvalue", expr)

    def _gen_index_addr(self, expr: A.Index) -> tuple[object, int]:
        base_t = expr.base.ctype
        size = _elem_size(base_t)
        if isinstance(base_t, ArrayType):
            base, offset = self.gen_addr(expr.base)
        else:
            base, offset = self.gen_expr(expr.base), 0
        index = expr.index
        if isinstance(index, A.IntLit):
            return base, offset + index.value * size
        if isinstance(index, A.Cast) and isinstance(index.operand, A.IntLit):
            return base, offset + index.operand.value * size
        idx = self.gen_expr(index)
        scaled = self._scale(idx, size)
        addr = self.vreg(INT)
        base_reg = self._materialize_base(base)
        self.emit(BinOp("add", addr, base_reg, scaled))
        return addr, offset

    def _materialize_base(self, base: object) -> int:
        if isinstance(base, int):
            return base
        v = self.vreg(INT)
        if isinstance(base, FrameSlot):
            self.emit(AddrFrame(v, base.slot))
        else:
            self.emit(AddrGlobal(v, base.name))
        return v

    def _scale(self, idx: int, size: int) -> int:
        if size == 1:
            return idx
        out = self.vreg(INT)
        if size & (size - 1) == 0:
            self.emit(BinOp("shl", out, idx, Imm(size.bit_length() - 1)))
        else:
            c = self.vreg(INT)
            self.emit(LoadConst(c, size))
            self.emit(BinOp("mul", out, idx, c))
        return out

    def _load_from(self, base: object, offset: int, ctype: CType) -> int:
        if isinstance(ctype, ArrayType):
            # address-of semantics (array member decays)
            v = self.vreg(INT)
            base_reg = self._materialize_base(base)
            if offset:
                self.emit(BinOp("add", v, base_reg, Imm(offset)))
            else:
                self.emit(Copy(v, base_reg))
            return v
        v = self.vreg(_vclass(ctype))
        self.emit(Load(v, base, offset, _mem_kind(ctype)))
        return v

    # -- operators ------------------------------------------------------------

    def _gen_Unary(self, expr: A.Unary) -> int:
        op = expr.op
        if op == "&":
            base, offset = self.gen_addr(expr.operand)
            v = self.vreg(INT)
            base_reg = self._materialize_base(base)
            if offset:
                self.emit(BinOp("add", v, base_reg, Imm(offset)))
                return v
            if isinstance(base, int):
                return base_reg
            return base_reg
        if op == "*":
            base = self.gen_expr(expr.operand)
            return self._load_from(base, 0, expr.ctype)
        if op == "-":
            operand = self.gen_expr(expr.operand)
            if expr.ctype.is_double:
                v = self.vreg(FP)
                self.emit(FNeg(v, operand))
                return v
            zero = self.vreg(INT)
            self.emit(LoadConst(zero, 0))
            v = self.vreg(INT)
            self.emit(BinOp("sub", v, zero, operand))
            return v
        if op == "~":
            operand = self.gen_expr(expr.operand)
            v = self.vreg(INT)
            self.emit(BinOp("xor", v, operand, Imm(-1)))
            return v
        if op == "!":
            return self._materialize_bool(expr)
        raise _err(f"unhandled unary {op}", expr)  # pragma: no cover

    def _materialize_bool(self, expr: A.Expr) -> int:
        """Evaluate a boolean-producing expression into a 0/1 vreg."""
        result = self.vreg(INT)
        true_label = self.new_label("btrue")
        false_label = self.new_label("bfalse")
        join = self.new_label("bjoin")
        self.gen_cond(expr, true_label, false_label)
        self._begin(true_label)
        self.emit(LoadConst(result, 1))
        self.emit(Jump(join))
        self._begin(false_label)
        self.emit(LoadConst(result, 0))
        self.emit(Jump(join))
        self._begin(join)
        return result

    _ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}
    _FARITH = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _gen_Binary(self, expr: A.Binary) -> int:
        op = expr.op
        if op in ("&&", "||") or op in ("==", "!=", "<", ">", "<=", ">="):
            return self._materialize_bool(expr)
        left_t = expr.left.ctype
        right_t = expr.right.ctype
        # pointer arithmetic
        lp = left_t.is_pointer or isinstance(left_t, ArrayType)
        rp = right_t.is_pointer or isinstance(right_t, ArrayType)
        if op in ("+", "-") and (lp or rp):
            return self._gen_pointer_arith(expr, lp, rp)
        if expr.ctype.is_double:
            a = self.gen_expr(expr.left)
            b = self.gen_expr(expr.right)
            v = self.vreg(FP)
            self.emit(FBinOp(self._FARITH[op], v, a, b))
            return v
        a = self.gen_expr(expr.left)
        b = self.gen_expr(expr.right)
        v = self.vreg(INT)
        self.emit(BinOp(self._ARITH[op], v, a, b))
        return v

    def _gen_pointer_arith(self, expr: A.Binary, lp: bool, rp: bool) -> int:
        op = expr.op
        if lp and rp:  # pointer difference
            a = self.gen_expr(expr.left)
            b = self.gen_expr(expr.right)
            diff = self.vreg(INT)
            self.emit(BinOp("sub", diff, a, b))
            size = _elem_size(expr.left.ctype)
            if size == 1:
                return diff
            c = self.vreg(INT)
            self.emit(LoadConst(c, size))
            out = self.vreg(INT)
            self.emit(BinOp("div", out, diff, c))
            return out
        if rp:  # int + pointer
            expr = A.Binary("+", expr.right, expr.left, line=expr.line,
                            col=expr.col, filename=expr.filename)
            expr.ctype = expr.left.ctype
            lp, rp = True, False
        ptr = self.gen_expr(expr.left)
        size = _elem_size(expr.left.ctype)
        idx_expr = expr.right
        if isinstance(idx_expr, A.IntLit):
            out = self.vreg(INT)
            delta = idx_expr.value * size
            self.emit(BinOp("add" if op == "+" else "sub", out, ptr,
                            Imm(delta)))
            return out
        idx = self.gen_expr(idx_expr)
        scaled = self._scale(idx, size)
        out = self.vreg(INT)
        self.emit(BinOp("add" if op == "+" else "sub", out, ptr, scaled))
        return out

    def _gen_Assign(self, expr: A.Assign) -> int:
        target = expr.target
        ctype = expr.ctype
        # register-resident scalar
        if isinstance(target, A.Ident) and target.symbol.storage is None:
            self._ensure_storage(target.symbol)
        if isinstance(target, A.Ident) and target.symbol.storage[0] == "vreg":
            dst = target.symbol.storage[1]
            if expr.op is None:
                value = self.gen_expr(expr.value)
                self.emit(Copy(dst, value))
                return dst
            value = self.gen_expr(expr.value)
            self._apply_compound(expr, dst, dst, value)
            return dst
        base, offset = self.gen_addr(target)
        mem = _mem_kind(ctype)
        if expr.op is None:
            value = self.gen_expr(expr.value)
            self.emit(Store(value, base, offset, mem))
            return value
        old = self.vreg(_vclass(ctype))
        self.emit(Load(old, base, offset, mem))
        value = self.gen_expr(expr.value)
        result = self.vreg(_vclass(ctype))
        self._apply_compound(expr, result, old, value)
        self.emit(Store(result, base, offset, mem))
        return result

    def _apply_compound(self, expr: A.Assign, dst: int, old: int,
                        value: int) -> None:
        """dst = old OP value, honouring pointer scaling and doubles."""
        op = expr.op
        target_t = expr.target.ctype
        if target_t.is_double:
            self.emit(FBinOp(self._FARITH[op], dst, old, value))
            return
        if target_t.is_pointer:
            size = _elem_size(target_t)
            scaled = self._scale(value, size)
            self.emit(BinOp("add" if op == "+" else "sub", dst, old, scaled))
            return
        self.emit(BinOp(self._ARITH[op], dst, old, value))

    def _gen_IncDec(self, expr: A.IncDec) -> int:
        target = expr.operand
        ctype = expr.ctype
        delta = _elem_size(ctype) if ctype.is_pointer else 1
        binop = "add" if expr.op == "++" else "sub"
        if isinstance(target, A.Ident) and target.symbol.storage is None:
            self._ensure_storage(target.symbol)
        if isinstance(target, A.Ident) and target.symbol.storage[0] == "vreg":
            reg = target.symbol.storage[1]
            if ctype.is_double:
                one = self.vreg(FP)
                self.emit(LoadFConst(one, 1.0))
                if expr.is_prefix:
                    self.emit(FBinOp("fadd" if expr.op == "++" else "fsub",
                                     reg, reg, one))
                    return reg
                old = self.vreg(FP)
                self.emit(Copy(old, reg))
                self.emit(FBinOp("fadd" if expr.op == "++" else "fsub",
                                 reg, reg, one))
                return old
            if expr.is_prefix:
                self.emit(BinOp(binop, reg, reg, Imm(delta)))
                return reg
            old = self.vreg(INT)
            self.emit(Copy(old, reg))
            self.emit(BinOp(binop, reg, reg, Imm(delta)))
            return old
        base, offset = self.gen_addr(target)
        mem = _mem_kind(ctype)
        old = self.vreg(_vclass(ctype))
        self.emit(Load(old, base, offset, mem))
        new = self.vreg(_vclass(ctype))
        if ctype.is_double:
            one = self.vreg(FP)
            self.emit(LoadFConst(one, 1.0))
            self.emit(FBinOp("fadd" if expr.op == "++" else "fsub",
                             new, old, one))
        else:
            self.emit(BinOp(binop, new, old, Imm(delta)))
        self.emit(Store(new, base, offset, mem))
        return new if expr.is_prefix else old

    def _gen_Cond(self, expr: A.Cond) -> int:
        result = self.vreg(_vclass(expr.ctype))
        then_label = self.new_label("cthen")
        else_label = self.new_label("celse")
        join = self.new_label("cjoin")
        self.gen_cond(expr.cond, then_label, else_label)
        self._begin(then_label)
        then_val = self.gen_expr(expr.then)
        self.emit(Copy(result, then_val))
        self.emit(Jump(join))
        self._begin(else_label)
        else_val = self.gen_expr(expr.otherwise)
        self.emit(Copy(result, else_val))
        self.emit(Jump(join))
        self._begin(join)
        return result

    def _gen_Call(self, expr: A.Call) -> int:
        return self._gen_call(expr, want_value=True)

    def _gen_call(self, expr: A.Call, want_value: bool) -> int | None:
        args = [self.gen_expr(a) for a in expr.args]
        classes = [_vclass(a.ctype) for a in expr.args]
        ret = expr.symbol.ftype.ret
        if ret.is_void:
            self.emit(Call(None, expr.name, args, classes, None))
            return None
        dst = self.vreg(_vclass(ret))
        self.emit(Call(dst, expr.name, args, classes, _vclass(ret)))
        return dst

    def _gen_Index(self, expr: A.Index) -> int:
        base, offset = self._gen_index_addr(expr)
        return self._load_from(base, offset, expr.ctype)

    def _gen_Member(self, expr: A.Member) -> int:
        base, offset = self.gen_addr(expr)
        return self._load_from(base, offset, expr.ctype)

    def _gen_Cast(self, expr: A.Cast) -> int:
        src_t = expr.operand.ctype
        dst_t = expr.ctype
        if dst_t.is_void:
            self.gen_expr_for_effect(expr.operand)
            return self.vreg(INT)  # dummy, never used
        value = self.gen_expr(expr.operand)
        src_fp = src_t.is_double
        dst_fp = dst_t.is_double
        if src_fp and not dst_fp:
            v = self.vreg(INT)
            self.emit(Cvt(v, value, "d2i"))
            if dst_t == CHAR:
                return self._truncate_char(v)
            return v
        if dst_fp and not src_fp:
            v = self.vreg(FP)
            self.emit(Cvt(v, value, "i2d"))
            return v
        if dst_t == CHAR and src_t != CHAR and src_t.is_integer:
            return self._truncate_char(value)
        return value

    def _truncate_char(self, value: int) -> int:
        t = self.vreg(INT)
        self.emit(BinOp("shl", t, value, Imm(24)))
        out = self.vreg(INT)
        self.emit(BinOp("shr", out, t, Imm(24)))
        return out

    def _gen_SizeofType(self, expr: A.SizeofType) -> int:
        v = self.vreg(INT)
        self.emit(LoadConst(v, expr.target_type.size()))
        return v


def generate_ir(info: SemanticInfo, rotate_loops: bool = True) -> IRProgram:
    """Lower an analyzed program to IR.

    *rotate_loops* selects the while/for shape: True (default) gives the
    paper's rotated form (guard + bottom test); False gives the naive
    top-tested form with an unconditional back jump — the ablation
    comparator for the Loop heuristic's coverage.
    """
    return _ModuleGen(info, rotate_loops=rotate_loops).run()
