"""IR -> MIPS-like assembly.

Conventions the Ball-Larus heuristics observe in the emitted code:

* locals and spills are addressed off ``$sp``; globals in the first 64 KiB of
  the data segment are addressed off ``$gp`` (``sym($gp)``), larger objects
  via ``la`` — reproducing the SP/GP distinction the Pointer heuristic uses;
* comparisons against zero use the one-register branch opcodes
  (``bltz``/``blez``/``bgtz``/``bgez``) and FP comparisons the
  ``c.*.d``/``bc1t``/``bc1f`` idiom — the Opcode heuristic's domain;
* branch polarity is chosen from block layout: the fall-through successor is
  the next block, so an ``if`` guards its then-clause with a branch whose
  *taken* edge skips it, while a rotated loop's bottom test is a branch whose
  *taken* edge is the back edge.
"""

from __future__ import annotations

from repro.bcc.errors import CompileError
from repro.bcc.ir import (
    FP, INT, AddrFrame, AddrGlobal, BinOp, Call, CBr, Copy, Cvt, FBinOp, FNeg,
    FrameSlot, GlobalSym, Imm, IRFunction, IRProgram, Jump, Load, LoadConst,
    LoadFConst, Ret, Store,
)
from repro.bcc.regalloc import Allocation, allocate_registers
from repro.isa.registers import reg_name

__all__ = ["generate_assembly", "arg_placements"]

_GP_WINDOW = 65536  #: bytes of data addressable as sym($gp)
_GP_BIAS = 32768    #: GP_VALUE - DATA_BASE

_INT_SCRATCH = ("$t8", "$t9", "$at")
_FP_SCRATCH = ("$f0", "$f2")

_MEM_LOAD = {"w": "lw", "b": "lb", "bu": "lbu", "d": "ldc1"}
_MEM_STORE = {"w": "sw", "b": "sb", "bu": "sb", "d": "sdc1"}

_BINOP_REG = {
    "add": "addu", "sub": "subu", "mul": "mul", "div": "div", "rem": "rem",
    "and": "and", "or": "or", "xor": "xor", "nor": "nor",
    "shl": "sllv", "shr": "srav", "sru": "srlv",
    "slt": "slt", "sltu": "sltu",
}
_BINOP_IMM = {
    "add": ("addiu", "signed"), "and": ("andi", "unsigned"),
    "or": ("ori", "unsigned"), "xor": ("xori", "unsigned"),
    "slt": ("slti", "signed"),
    "shl": ("sll", "shift"), "shr": ("sra", "shift"), "sru": ("srl", "shift"),
}
_FBINOP = {"fadd": "add.d", "fsub": "sub.d", "fmul": "mul.d", "fdiv": "div.d"}

#: compare-to-zero branches
_ZERO_BRANCH = {"lt": "bltz", "le": "blez", "gt": "bgtz", "ge": "bgez"}
_INVERT = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt",
           "gt": "le"}
#: FP comparisons: op -> (compare mnemonic, swap operands, branch mnemonic)
_FP_BRANCH = {
    "eq": ("c.eq.d", False, "bc1t"), "ne": ("c.eq.d", False, "bc1f"),
    "lt": ("c.lt.d", False, "bc1t"), "le": ("c.le.d", False, "bc1t"),
    "gt": ("c.lt.d", True, "bc1t"), "ge": ("c.le.d", True, "bc1t"),
}


def arg_placements(classes: list[str]) -> tuple[list[tuple[str, int]], int]:
    """Calling convention: integer/pointer args 0-3 in ``$a0``-``$a3``;
    doubles and later integer args on the stack at the bottom of the caller
    frame. Returns ([("reg", argreg#) | ("stack", offset)], area_bytes)."""
    placements: list[tuple[str, int]] = []
    offset = 0
    for index, klass in enumerate(classes):
        if klass == INT and index < 4:
            placements.append(("reg", 4 + index))
        elif klass == FP:
            offset = (offset + 7) & ~7
            placements.append(("stack", offset))
            offset += 8
        else:
            placements.append(("stack", offset))
            offset += 4
    return placements, (offset + 7) & ~7


class _DataLayout:
    """Assigns data-segment offsets: small scalars first (inside the $gp
    window), then FP literals and strings, then aggregates by size."""

    def __init__(self, program: IRProgram,
                 fp_literals: dict[float, str]) -> None:
        self.offset_of: dict[str, int] = {}
        self.items: list[tuple[str, int, int, object]] = []  # label,size,align,init
        small, big = [], []
        for g in program.globals:
            (small if g.size <= 8 and not isinstance(g.init, str) else big
             ).append(g)
        offset = 0

        def place(label: str, size: int, align: int, init: object) -> None:
            nonlocal offset
            offset = (offset + align - 1) & ~(align - 1)
            self.offset_of[label] = offset
            self.items.append((label, size, align, init))
            offset += size

        for g in small:
            place(g.label, g.size, g.align, g.init)
        for value, label in fp_literals.items():
            place(label, 8, 8, float(value))
        big.sort(key=lambda g: g.size)
        for g in big:
            place(g.label, g.size, g.align, g.init)
        self.total = offset

    def gp_disp(self, label: str, extra: int = 0) -> int | None:
        """The 16-bit $gp displacement for *label*+*extra*, or None if out of
        the window."""
        disp = self.offset_of[label] + extra - _GP_BIAS
        return disp if -32768 <= disp <= 32767 else None

    def emit(self, out: list[str]) -> None:
        out.append(".data")
        for label, size, align, init in self.items:
            if align > 1:
                out.append(f".align {align.bit_length() - 1}")
            if isinstance(init, str):
                escaped = (init.replace("\\", "\\\\").replace('"', '\\"')
                           .replace("\n", "\\n").replace("\t", "\\t")
                           .replace("\r", "\\r").replace("\0", "\\0"))
                out.append(f'{label}: .asciiz "{escaped}"')
            elif isinstance(init, float):
                out.append(f"{label}: .double {init!r}")
            elif isinstance(init, int):
                out.append(f"{label}: .word {init}")
            elif isinstance(init, tuple) and init[0] == "ptr_to":
                out.append(f"{label}: .word {init[1]}")
            elif init is None:
                out.append(f"{label}: .space {size}")
            else:  # pragma: no cover
                raise CompileError(f"bad global initializer for {label}")


class _FuncCodegen:
    def __init__(self, func: IRFunction, layout: _DataLayout,
                 out: list[str]) -> None:
        self.func = func
        self.layout = layout
        self.out = out
        self.alloc: Allocation = allocate_registers(func)
        self._int_scratch_next = 0
        self._fp_scratch_next = 0
        self._compute_frame()

    # -- frame --------------------------------------------------------------

    def _compute_frame(self) -> None:
        func = self.func
        out_area = 0
        self.has_calls = False
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Call):
                    self.has_calls = True
                    _, area = arg_placements(inst.arg_classes)
                    out_area = max(out_area, area)
        offset = out_area
        self.frame_obj_offset: list[int] = []
        for obj in func.frame_objects:
            align = max(obj.align, 4)
            offset = (offset + align - 1) & ~(align - 1)
            self.frame_obj_offset.append(offset)
            offset += obj.size
        offset = (offset + 3) & ~3
        self.int_spill_base = offset
        offset += 4 * self.alloc.int_spills
        offset = (offset + 7) & ~7
        self.fp_spill_base = offset
        offset += 8 * self.alloc.fp_spills
        self.fp_save_base = offset
        offset += 8 * len(self.alloc.used_fp_callee)
        self.int_save_base = offset
        offset += 4 * len(self.alloc.used_int_callee)
        self.ra_offset = offset
        if self.has_calls:
            offset += 4
        self.frame_size = (offset + 7) & ~7
        if self.frame_size > 32000:
            raise CompileError(
                f"{func.name}: stack frame too large ({self.frame_size} bytes)")

    # -- emission helpers -----------------------------------------------------

    def emit(self, text: str) -> None:
        self.out.append(f"    {text}")

    def label(self, name: str) -> None:
        self.out.append(f"{name}:")

    def _reset_scratch(self) -> None:
        self._int_scratch_next = 0
        self._fp_scratch_next = 0

    def _next_int_scratch(self) -> str:
        reg = _INT_SCRATCH[self._int_scratch_next % len(_INT_SCRATCH)]
        self._int_scratch_next += 1
        return reg

    def _next_fp_scratch(self) -> str:
        reg = _FP_SCRATCH[self._fp_scratch_next % len(_FP_SCRATCH)]
        self._fp_scratch_next += 1
        return reg

    def _int_spill_addr(self, slot: int) -> str:
        return f"{self.int_spill_base + 4 * slot}($sp)"

    def _fp_spill_addr(self, slot: int) -> str:
        return f"{self.fp_spill_base + 8 * slot}($sp)"

    def iread(self, vreg: int) -> str:
        """Register holding integer vreg's value (reloading a spill)."""
        kind, where = self.alloc.location[vreg]
        if kind == "reg":
            return reg_name(where)
        scratch = self._next_int_scratch()
        self.emit(f"lw {scratch}, {self._int_spill_addr(where)}")
        return scratch

    def iwrite(self, vreg: int):
        """(register to write, flush callback) for an integer vreg."""
        kind, where = self.alloc.location[vreg]
        if kind == "reg":
            return reg_name(where), lambda: None
        scratch = self._next_int_scratch()
        return scratch, lambda: self.emit(
            f"sw {scratch}, {self._int_spill_addr(where)}")

    def fread(self, vreg: int) -> str:
        kind, where = self.alloc.location[vreg]
        if kind == "reg":
            return f"$f{where}"
        scratch = self._next_fp_scratch()
        self.emit(f"ldc1 {scratch}, {self._fp_spill_addr(where)}")
        return scratch

    def fwrite(self, vreg: int):
        kind, where = self.alloc.location[vreg]
        if kind == "reg":
            return f"$f{where}", lambda: None
        scratch = self._next_fp_scratch()
        return scratch, lambda: self.emit(
            f"sdc1 {scratch}, {self._fp_spill_addr(where)}")

    def mem_operand(self, base: object, offset: int) -> str:
        """Fold an IR memory base into an addressing-mode string."""
        if isinstance(base, FrameSlot):
            total = self.frame_obj_offset[base.slot] + offset
            return f"{total}($sp)"
        if isinstance(base, GlobalSym):
            disp = self.layout.gp_disp(base.name, offset)
            if disp is not None:
                suffix = f"+{offset}" if offset > 0 else (
                    f"{offset}" if offset < 0 else "")
                return f"{base.name}{suffix}($gp)"
            scratch = self._next_int_scratch()
            self.emit(f"la {scratch}, {base.name}")
            if not -32768 <= offset <= 32767:
                extra = self._next_int_scratch()
                self.emit(f"li {extra}, {offset}")
                self.emit(f"addu {scratch}, {scratch}, {extra}")
                offset = 0
            return f"{offset}({scratch})"
        reg = self.iread(base)
        if not -32768 <= offset <= 32767:
            scratch = self._next_int_scratch()
            self.emit(f"li {scratch}, {offset}")
            self.emit(f"addu {scratch}, {reg}, {scratch}")
            return f"0({scratch})"
        return f"{offset}({reg})"

    # -- function ---------------------------------------------------------------

    def run(self) -> None:
        func = self.func
        self.out.append("")
        self.out.append(f".ent {func.name}")
        self.label(func.name)
        self._prologue()
        blocks = func.blocks
        epilogue = f"{func.name}__epilogue"
        for i, block in enumerate(blocks):
            next_label = blocks[i + 1].label if i + 1 < len(blocks) else epilogue
            self.label(block.label)
            for inst in block.instructions:
                self._reset_scratch()
                self._gen(inst, next_label)
        self.label(epilogue)
        self._epilogue()
        self.out.append(f".end {func.name}")

    def _prologue(self) -> None:
        if self.frame_size:
            self.emit(f"addiu $sp, $sp, -{self.frame_size}")
        if self.has_calls:
            self.emit(f"sw $ra, {self.ra_offset}($sp)")
        for i, sreg in enumerate(self.alloc.used_int_callee):
            self.emit(f"sw {reg_name(sreg)}, {self.int_save_base + 4 * i}($sp)")
        for i, freg in enumerate(self.alloc.used_fp_callee):
            self.emit(f"sdc1 $f{freg}, {self.fp_save_base + 8 * i}($sp)")
        placements, _ = arg_placements([p[2] for p in self.func.params])
        for (name, vreg, klass), placement in zip(self.func.params, placements):
            self._reset_scratch()
            kind, where = self.alloc.location[vreg]
            if placement[0] == "reg":
                areg = reg_name(placement[1])
                if kind == "reg":
                    self.emit(f"move {reg_name(where)}, {areg}")
                else:
                    self.emit(f"sw {areg}, {self._int_spill_addr(where)}")
            else:
                incoming = self.frame_size + placement[1]
                if klass == FP:
                    if kind == "reg":
                        self.emit(f"ldc1 $f{where}, {incoming}($sp)")
                    else:
                        scratch = self._next_fp_scratch()
                        self.emit(f"ldc1 {scratch}, {incoming}($sp)")
                        self.emit(
                            f"sdc1 {scratch}, {self._fp_spill_addr(where)}")
                else:
                    if kind == "reg":
                        self.emit(f"lw {reg_name(where)}, {incoming}($sp)")
                    else:
                        scratch = self._next_int_scratch()
                        self.emit(f"lw {scratch}, {incoming}($sp)")
                        self.emit(
                            f"sw {scratch}, {self._int_spill_addr(where)}")

    def _epilogue(self) -> None:
        for i, freg in enumerate(self.alloc.used_fp_callee):
            self.emit(f"ldc1 $f{freg}, {self.fp_save_base + 8 * i}($sp)")
        for i, sreg in enumerate(self.alloc.used_int_callee):
            self.emit(f"lw {reg_name(sreg)}, {self.int_save_base + 4 * i}($sp)")
        if self.has_calls:
            self.emit(f"lw $ra, {self.ra_offset}($sp)")
        if self.frame_size:
            self.emit(f"addiu $sp, $sp, {self.frame_size}")
        self.emit("jr $ra")

    # -- instructions ---------------------------------------------------------

    def _gen(self, inst, next_label: str) -> None:
        if isinstance(inst, LoadConst):
            rd, flush = self.iwrite(inst.dst)
            self.emit(f"li {rd}, {inst.value}")
            flush()
        elif isinstance(inst, LoadFConst):
            label = self.fp_label(inst.value)
            fd, flush = self.fwrite(inst.dst)
            self.emit(f"ldc1 {fd}, {self.mem_operand(GlobalSym(label), 0)}")
            flush()
        elif isinstance(inst, BinOp):
            self._gen_binop(inst)
        elif isinstance(inst, FBinOp):
            fa = self.fread(inst.a)
            fb = self.fread(inst.b)
            fd, flush = self.fwrite(inst.dst)
            self.emit(f"{_FBINOP[inst.op]} {fd}, {fa}, {fb}")
            flush()
        elif isinstance(inst, FNeg):
            fs = self.fread(inst.src)
            fd, flush = self.fwrite(inst.dst)
            self.emit(f"neg.d {fd}, {fs}")
            flush()
        elif isinstance(inst, Cvt):
            self._gen_cvt(inst)
        elif isinstance(inst, Copy):
            if self.func.vreg_class[inst.dst] == FP:
                fs = self.fread(inst.src)
                fd, flush = self.fwrite(inst.dst)
                if fd != fs:
                    self.emit(f"mov.d {fd}, {fs}")
                flush()
            else:
                rs = self.iread(inst.src)
                rd, flush = self.iwrite(inst.dst)
                if rd != rs:
                    self.emit(f"move {rd}, {rs}")
                flush()
        elif isinstance(inst, Load):
            operand = self.mem_operand(inst.base, inst.offset)
            if inst.mem == "d":
                fd, flush = self.fwrite(inst.dst)
                self.emit(f"ldc1 {fd}, {operand}")
            else:
                fd, flush = self.iwrite(inst.dst)
                self.emit(f"{_MEM_LOAD[inst.mem]} {fd}, {operand}")
            flush()
        elif isinstance(inst, Store):
            if inst.mem == "d":
                fs = self.fread(inst.src)
                operand = self.mem_operand(inst.base, inst.offset)
                self.emit(f"sdc1 {fs}, {operand}")
            else:
                rs = self.iread(inst.src)
                operand = self.mem_operand(inst.base, inst.offset)
                self.emit(f"{_MEM_STORE[inst.mem]} {rs}, {operand}")
        elif isinstance(inst, AddrFrame):
            rd, flush = self.iwrite(inst.dst)
            total = self.frame_obj_offset[inst.slot] + inst.offset
            self.emit(f"addiu {rd}, $sp, {total}")
            flush()
        elif isinstance(inst, AddrGlobal):
            rd, flush = self.iwrite(inst.dst)
            disp = self.layout.gp_disp(inst.name, inst.offset)
            if disp is not None:
                self.emit(f"addiu {rd}, $gp, {disp}")
            else:
                self.emit(f"la {rd}, {inst.name}")
                if inst.offset:
                    self.emit(f"addiu {rd}, {rd}, {inst.offset}")
            flush()
        elif isinstance(inst, Call):
            self._gen_call(inst)
        elif isinstance(inst, Ret):
            if inst.src is not None:
                if inst.ret_class == FP:
                    fs = self.fread(inst.src)
                    if fs != "$f0":
                        self.emit(f"mov.d $f0, {fs}")
                else:
                    rs = self.iread(inst.src)
                    if rs != "$v0":
                        self.emit(f"move $v0, {rs}")
            if next_label != f"{self.func.name}__epilogue":
                self.emit(f"j {self.func.name}__epilogue")
        elif isinstance(inst, Jump):
            if inst.label != next_label:
                self.emit(f"j {inst.label}")
        elif isinstance(inst, CBr):
            self._gen_cbr(inst, next_label)
        else:  # pragma: no cover
            raise CompileError(f"cannot generate code for {inst!r}")

    def fp_label(self, value: float) -> str:
        # module-level literal pool, pre-populated by generate_assembly
        return self._fp_pool[value]

    def _gen_binop(self, inst: BinOp) -> None:
        ra = self.iread(inst.a)
        if isinstance(inst.b, Imm):
            value = inst.b.value
            entry = _BINOP_IMM.get(inst.op)
            ok = False
            if entry is not None:
                mnem, mode = entry
                if mode == "signed":
                    ok = -32768 <= value <= 32767
                elif mode == "unsigned":
                    ok = 0 <= value <= 0xFFFF
                else:  # shift
                    ok = 0 <= value <= 31
            if ok:
                rd, flush = self.iwrite(inst.dst)
                self.emit(f"{mnem} {rd}, {ra}, {value}")
                flush()
                return
            scratch = self._next_int_scratch()
            self.emit(f"li {scratch}, {value}")
            rb = scratch
        else:
            rb = self.iread(inst.b)
        rd, flush = self.iwrite(inst.dst)
        self.emit(f"{_BINOP_REG[inst.op]} {rd}, {ra}, {rb}")
        flush()

    def _gen_cvt(self, inst: Cvt) -> None:
        if inst.kind == "i2d":
            rs = self.iread(inst.src)
            fd, flush = self.fwrite(inst.dst)
            self.emit(f"mtc1 {rs}, {fd}")
            self.emit(f"cvt.d.w {fd}, {fd}")
            flush()
        else:  # d2i
            fs = self.fread(inst.src)
            scratch = self._next_fp_scratch()
            rd, flush = self.iwrite(inst.dst)
            self.emit(f"cvt.w.d {scratch}, {fs}")
            self.emit(f"mfc1 {rd}, {scratch}")
            flush()

    def _gen_call(self, inst: Call) -> None:
        placements, _ = arg_placements(inst.arg_classes)
        for arg, klass, placement in zip(inst.args, inst.arg_classes,
                                         placements):
            self._reset_scratch()
            if placement[0] == "stack":
                if klass == FP:
                    fs = self.fread(arg)
                    self.emit(f"sdc1 {fs}, {placement[1]}($sp)")
                else:
                    rs = self.iread(arg)
                    self.emit(f"sw {rs}, {placement[1]}($sp)")
        for arg, placement in zip(inst.args, placements):
            self._reset_scratch()
            if placement[0] == "reg":
                rs = self.iread(arg)
                self.emit(f"move {reg_name(placement[1])}, {rs}")
        self.emit(f"jal {inst.name}")
        self._reset_scratch()
        if inst.dst is not None:
            if inst.ret_class == FP:
                fd, flush = self.fwrite(inst.dst)
                if fd != "$f0":
                    self.emit(f"mov.d {fd}, $f0")
                else:
                    # spilled: $f0 scratch happens to be the return register
                    pass
                flush()
            else:
                rd, flush = self.iwrite(inst.dst)
                if rd != "$v0":
                    self.emit(f"move {rd}, $v0")
                flush()

    def _gen_cbr(self, inst: CBr, next_label: str) -> None:
        if inst.true_label == next_label:
            self._emit_branch(inst, invert=True, target=inst.false_label)
        elif inst.false_label == next_label:
            self._emit_branch(inst, invert=False, target=inst.true_label)
        else:
            self._emit_branch(inst, invert=False, target=inst.true_label)
            self.emit(f"j {inst.false_label}")

    def _emit_branch(self, inst: CBr, invert: bool, target: str) -> None:
        op = _INVERT[inst.op] if invert else inst.op
        if inst.fp:
            cmp_mnem, swap, branch = _FP_BRANCH[inst.op]
            if invert:
                branch = "bc1f" if branch == "bc1t" else "bc1t"
            fa = self.fread(inst.a)
            fb = self.fread(inst.b)
            if swap:
                fa, fb = fb, fa
            self.emit(f"{cmp_mnem} {fa}, {fb}")
            self.emit(f"{branch} {target}")
            return
        ra = self.iread(inst.a)
        if isinstance(inst.b, Imm):
            if inst.b.value != 0:  # pragma: no cover - IR gen guarantees 0
                raise CompileError("CBr immediate must be zero")
            if op == "eq":
                self.emit(f"beq {ra}, $zero, {target}")
            elif op == "ne":
                self.emit(f"bne {ra}, $zero, {target}")
            else:
                self.emit(f"{_ZERO_BRANCH[op]} {ra}, {target}")
            return
        rb = self.iread(inst.b)
        if op == "eq":
            self.emit(f"beq {ra}, {rb}, {target}")
        elif op == "ne":
            self.emit(f"bne {ra}, {rb}, {target}")
        else:  # pragma: no cover - IR gen lowers relationals through slt
            raise CompileError(f"unlowered relational branch {op}")


def generate_assembly(program: IRProgram, entry_function: str = "main") -> str:
    """Generate the complete assembly module for *program*.

    Includes the ``__start`` stub (calls *entry_function*, then exits with
    its return value) and the data segment. Runtime procedures are appended
    by the driver, not here.
    """
    # collect FP literals program-wide so the data layout can place them
    fp_pool: dict[float, str] = {}
    for func in program.functions:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, LoadFConst) and inst.value not in fp_pool:
                    fp_pool[inst.value] = f"D_{len(fp_pool)}"

    layout = _DataLayout(program, fp_pool)
    out: list[str] = [".text"]
    out.append(".ent __start")
    out.append("__start:")
    out.append(f"    jal {entry_function}")
    out.append("    move $a0, $v0")
    out.append("    li $v0, 17")
    out.append("    syscall")
    out.append(".end __start")
    for func in program.functions:
        gen = _FuncCodegen(func, layout, out)
        gen._fp_pool = fp_pool
        gen.run()
    out.append("")
    layout.emit(out)
    return "\n".join(out)
