"""Abstract syntax tree for BLC.

Nodes are plain dataclasses; the semantic analyzer annotates expressions with
their resolved :mod:`repro.bcc.types` type in the ``ctype`` field and binds
identifiers to symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLit", "DoubleLit", "CharLit", "StringLit",
    "Ident", "Unary", "Binary", "Assign", "Cond", "Call", "Index", "Member",
    "Cast", "SizeofType", "IncDec",
    "ExprStmt", "Block", "If", "While", "DoWhile", "For", "Break", "Continue",
    "Return", "VarDecl", "Empty",
    "Param", "FuncDef", "GlobalVar", "StructDef", "Program",
]


@dataclass
class Node:
    """Base: every node knows its source position."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)
    filename: str = field(default="<input>", kw_only=True)


@dataclass
class Expr(Node):
    """Base for expressions; ``ctype`` is filled in by sema."""

    ctype: object = field(default=None, kw_only=True, repr=False)


# -- literals -----------------------------------------------------------------


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class DoubleLit(Expr):
    value: float = 0.0


@dataclass
class CharLit(Expr):
    value: int = 0


@dataclass
class StringLit(Expr):
    value: str = ""


# -- expressions -----------------------------------------------------------------


@dataclass
class Ident(Expr):
    name: str = ""
    symbol: object = field(default=None, kw_only=True, repr=False)


@dataclass
class Unary(Expr):
    """Operators: ``-`` ``!`` ``~`` ``&`` ``*`` (deref)."""

    op: str = ""
    operand: Expr = None


@dataclass
class IncDec(Expr):
    """``++``/``--``, prefix or postfix."""

    op: str = ""          #: "++" or "--"
    operand: Expr = None
    is_prefix: bool = True


@dataclass
class Binary(Expr):
    """Arithmetic/relational/logical binary operators (incl. && and ||)."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    """``=`` and compound assignments (``+=`` etc., op holds "+"/None)."""

    target: Expr = None
    value: Expr = None
    op: str | None = None  #: None for plain "=", else the compound operator


@dataclass
class Cond(Expr):
    """Ternary ``c ? a : b``."""

    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)
    symbol: object = field(default=None, kw_only=True, repr=False)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    """``s.f`` (arrow=False) or ``p->f`` (arrow=True)."""

    base: Expr = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: object = None  #: parsed type specifier, resolved by sema
    operand: Expr = None


@dataclass
class SizeofType(Expr):
    target_type: object = None


# -- statements -----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Empty(Stmt):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Stmt | None = None      #: ExprStmt or VarDecl
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class VarDecl(Stmt):
    """A local variable declaration (one declarator)."""

    name: str = ""
    declared_type: object = None
    init: Expr | None = None
    symbol: object = field(default=None, kw_only=True, repr=False)


# -- top level -----------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    declared_type: object = None
    symbol: object = field(default=None, kw_only=True, repr=False)


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: object = None
    params: list[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class GlobalVar(Node):
    name: str = ""
    declared_type: object = None
    init: Expr | None = None
    symbol: object = field(default=None, kw_only=True, repr=False)


@dataclass
class StructDef(Node):
    name: str = ""
    #: list of (field_name, declared_type)
    fields: list[tuple[str, object]] = field(default_factory=list)


@dataclass
class Program(Node):
    decls: list[Node] = field(default_factory=list)
