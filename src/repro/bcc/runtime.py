"""The BLC runtime: syscall wrappers (assembly) and the library (BLC).

The paper's measurements include DEC Ultrix library procedures, analyzed
like any application code. We mirror that: ``malloc``/``free``/string
routines are written in BLC and compiled together with the program, so their
branches are classified, predicted, and counted too. Only the thin syscall
wrappers (and ``d_sqrt``, which needs the ``sqrt.d`` instruction) are
hand-written assembly.

Wrapper calling convention matches the compiler's: integer args in
``$a0``-``$a3``; double args on the caller's stack at offset 0; integer
results in ``$v0``, double results in ``$f0``.
"""

from __future__ import annotations

__all__ = ["RUNTIME_ASM", "RUNTIME_BLC"]

RUNTIME_ASM = """
.text
.ent print_int
print_int:
    li $v0, 1
    syscall
    jr $ra
.end print_int

.ent print_char
print_char:
    li $v0, 11
    syscall
    jr $ra
.end print_char

.ent print_str
print_str:
    li $v0, 4
    syscall
    jr $ra
.end print_str

.ent print_double
print_double:
    ldc1 $f12, 0($sp)
    li $v0, 3
    syscall
    jr $ra
.end print_double

.ent read_int
read_int:
    li $v0, 5
    syscall
    jr $ra
.end read_int

.ent read_double
read_double:
    li $v0, 7
    syscall
    jr $ra
.end read_double

.ent exit
exit:
    li $v0, 17
    syscall
    jr $ra
.end exit

.ent sbrk
sbrk:
    li $v0, 9
    syscall
    jr $ra
.end sbrk

.ent d_sqrt
d_sqrt:
    ldc1 $f0, 0($sp)
    sqrt.d $f0, $f0
    jr $ra
.end d_sqrt
"""

RUNTIME_BLC = r"""
// BLC runtime library. Compiled and linked with every program, so its
// branches are part of the analyzed executable (like Ultrix libc in the
// paper). Names here are reserved; user programs cannot redefine them.

struct _RtHeader {
    int size;                  // payload bytes, always a multiple of 8
    struct _RtHeader *next;    // next free block when on the free list
};

struct _RtHeader *_rt_free_list = NULL;
int _rt_rand_state = 123456789;

char *malloc(int n) {
    struct _RtHeader *p;
    struct _RtHeader *prev;
    struct _RtHeader *rest;
    char *mem;
    int need;
    if (n <= 0) {
        n = 1;
    }
    need = (n + 7) & ~7;
    // first-fit search of the free list, splitting large blocks
    prev = NULL;
    p = _rt_free_list;
    while (p != NULL) {
        if (p->size >= need) {
            if (p->size >= need + 24) {
                rest = (struct _RtHeader *)((char *)(p + 1) + need);
                rest->size = p->size - need - sizeof(struct _RtHeader);
                rest->next = p->next;
                p->size = need;
                if (prev == NULL) {
                    _rt_free_list = rest;
                } else {
                    prev->next = rest;
                }
            } else {
                if (prev == NULL) {
                    _rt_free_list = p->next;
                } else {
                    prev->next = p->next;
                }
            }
            return (char *)(p + 1);
        }
        prev = p;
        p = p->next;
    }
    mem = sbrk(need + sizeof(struct _RtHeader));
    p = (struct _RtHeader *)mem;
    p->size = need;
    p->next = NULL;
    return (char *)(p + 1);
}

void free(char *mem) {
    struct _RtHeader *h;
    if (mem == NULL) {
        return;
    }
    h = (struct _RtHeader *)mem - 1;
    h->next = _rt_free_list;
    _rt_free_list = h;
}

void memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = (char)value;
    }
}

void memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = src[i];
    }
}

int strlen(char *s) {
    int n;
    n = 0;
    while (s[n] != '\0') {
        n++;
    }
    return n;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] != '\0' && a[i] == b[i]) {
        i++;
    }
    return (int)a[i] - (int)b[i];
}

void strcpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i] != '\0') {
        dst[i] = src[i];
        i++;
    }
    dst[i] = '\0';
}

void rand_seed(int seed) {
    if (seed == 0) {
        seed = 1;
    }
    _rt_rand_state = seed;
}

int rand_next(int bound) {
    int value;
    _rt_rand_state = _rt_rand_state * 1103515245 + 12345;
    value = (_rt_rand_state >> 16) & 32767;
    if (bound <= 0) {
        return 0;
    }
    return value % bound;
}

int i_abs(int x) {
    if (x < 0) {
        return -x;
    }
    return x;
}

int i_max(int a, int b) {
    if (a > b) {
        return a;
    }
    return b;
}

int i_min(int a, int b) {
    if (a < b) {
        return a;
    }
    return b;
}

double d_abs(double x) {
    if (x < 0.0) {
        return -x;
    }
    return x;
}
"""
