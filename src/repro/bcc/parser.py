"""Recursive-descent parser for BLC.

Produces the AST of :mod:`repro.bcc.ast_nodes`. Types appear in the AST as
syntactic :class:`~repro.bcc.types.TypeSpec` values; the semantic analyzer
resolves them (struct names may be used before their definition only behind a
pointer).
"""

from __future__ import annotations

from repro.bcc import ast_nodes as A
from repro.bcc.errors import CompileError
from repro.bcc.lexer import Token, TokenKind, tokenize
from repro.bcc.types import TypeSpec

__all__ = ["parse", "parse_tokens"]

_TYPE_KEYWORDS = frozenset({"int", "char", "double", "void", "struct"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                         "<<=", ">>="})

#: binary operator precedence levels, low to high
_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def error(self, message: str, tok: Token | None = None) -> CompileError:
        tok = tok or self.tok
        return CompileError(message, line=tok.line, col=tok.col,
                            filename=tok.filename)

    def at_op(self, *ops: str) -> bool:
        return self.tok.kind == TokenKind.OP and self.tok.text in ops

    def at_keyword(self, *kws: str) -> bool:
        return self.tok.kind == TokenKind.KEYWORD and self.tok.text in kws

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        if not self.at_op(op):
            raise self.error(f"expected {op!r}, found {self.tok.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind != TokenKind.IDENT:
            raise self.error(f"expected identifier, found {self.tok.text!r}")
        return self.advance()

    def _pos_kwargs(self, tok: Token) -> dict:
        return {"line": tok.line, "col": tok.col, "filename": tok.filename}

    # -- types --------------------------------------------------------------

    def at_type_start(self) -> bool:
        return self.at_keyword(*_TYPE_KEYWORDS)

    def parse_base_type(self) -> TypeSpec:
        tok = self.tok
        if self.at_keyword("struct"):
            self.advance()
            name = self.expect_ident().text
            base: object = ("struct", name)
        elif self.at_keyword("int", "char", "double", "void"):
            base = self.advance().text
        else:
            raise self.error(f"expected type, found {tok.text!r}")
        return TypeSpec(base, line=tok.line, col=tok.col, filename=tok.filename)

    def parse_pointers(self, spec: TypeSpec) -> TypeSpec:
        while self.at_op("*"):
            self.advance()
            spec.pointer_depth += 1
        return spec

    def parse_array_dims(self, spec: TypeSpec) -> TypeSpec:
        while self.at_op("["):
            self.advance()
            if self.tok.kind != TokenKind.INT:
                raise self.error("array dimension must be an integer literal")
            dim = self.advance().value
            if dim <= 0:
                raise self.error("array dimension must be positive")
            spec.array_dims.append(dim)
            self.expect_op("]")
        return spec

    def parse_full_type(self) -> TypeSpec:
        """A complete type usable in casts and sizeof: base + pointers."""
        return self.parse_pointers(self.parse_base_type())

    # -- top level ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        decls: list[A.Node] = []
        while self.tok.kind != TokenKind.EOF:
            decls.extend(self.parse_top_decl())
        return A.Program(decls)

    def parse_top_decl(self) -> list[A.Node]:
        if (self.at_keyword("struct") and self.peek().kind == TokenKind.IDENT
                and self.peek(2).kind == TokenKind.OP
                and self.peek(2).text == "{"):
            return [self.parse_struct_def()]
        base = self.parse_base_type()
        spec = self.parse_pointers(
            TypeSpec(base.base, base.pointer_depth, [], base.line, base.col,
                     base.filename))
        name_tok = self.expect_ident()
        if self.at_op("("):
            return [self.parse_func_def(spec, name_tok)]
        return self.parse_global_tail(base, spec, name_tok)

    def parse_struct_def(self) -> A.StructDef:
        start = self.advance()  # 'struct'
        name = self.expect_ident().text
        self.expect_op("{")
        fields: list[tuple[str, TypeSpec]] = []
        while not self.at_op("}"):
            fbase = self.parse_base_type()
            while True:
                fspec = self.parse_pointers(
                    TypeSpec(fbase.base, 0, [], fbase.line, fbase.col,
                             fbase.filename))
                fname = self.expect_ident().text
                self.parse_array_dims(fspec)
                fields.append((fname, fspec))
                if self.at_op(","):
                    self.advance()
                    continue
                break
            self.expect_op(";")
        self.expect_op("}")
        self.expect_op(";")
        return A.StructDef(name, fields, **self._pos_kwargs(start))

    def parse_func_def(self, spec: TypeSpec, name_tok: Token) -> A.FuncDef:
        self.expect_op("(")
        params: list[A.Param] = []
        if not self.at_op(")"):
            if self.at_keyword("void") and self.peek().kind == TokenKind.OP \
                    and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    ptok = self.tok
                    pspec = self.parse_full_type()
                    pname = self.expect_ident().text
                    # array params decay to pointers
                    if self.at_op("["):
                        self.advance()
                        if self.tok.kind == TokenKind.INT:
                            self.advance()
                        self.expect_op("]")
                        pspec.pointer_depth += 1
                    params.append(A.Param(pname, pspec,
                                          **self._pos_kwargs(ptok)))
                    if self.at_op(","):
                        self.advance()
                        continue
                    break
        self.expect_op(")")
        body = self.parse_block()
        return A.FuncDef(name_tok.text, spec, params, body,
                         **self._pos_kwargs(name_tok))

    def parse_global_tail(self, base: TypeSpec, first_spec: TypeSpec,
                          first_name: Token) -> list[A.Node]:
        decls: list[A.Node] = []
        spec, name_tok = first_spec, first_name
        while True:
            self.parse_array_dims(spec)
            init = None
            if self.at_op("="):
                self.advance()
                init = self.parse_assignment()
            decls.append(A.GlobalVar(name_tok.text, spec, init,
                                     **self._pos_kwargs(name_tok)))
            if self.at_op(","):
                self.advance()
                spec = self.parse_pointers(
                    TypeSpec(base.base, 0, [], base.line, base.col,
                             base.filename))
                name_tok = self.expect_ident()
                continue
            break
        self.expect_op(";")
        return decls

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> A.Block:
        start = self.expect_op("{")
        statements: list[A.Stmt] = []
        while not self.at_op("}"):
            statements.extend(self.parse_statement())
        self.expect_op("}")
        return A.Block(statements, **self._pos_kwargs(start))

    def parse_statement(self) -> list[A.Stmt]:
        """Parse one statement. Returns a list because a declaration with
        multiple declarators desugars into several VarDecl statements."""
        tok = self.tok
        if self.at_op("{"):
            return [self.parse_block()]
        if self.at_op(";"):
            self.advance()
            return [A.Empty(**self._pos_kwargs(tok))]
        if self.at_keyword("if"):
            return [self.parse_if()]
        if self.at_keyword("while"):
            return [self.parse_while()]
        if self.at_keyword("do"):
            return [self.parse_do_while()]
        if self.at_keyword("for"):
            return [self.parse_for()]
        if self.at_keyword("break"):
            self.advance()
            self.expect_op(";")
            return [A.Break(**self._pos_kwargs(tok))]
        if self.at_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return [A.Continue(**self._pos_kwargs(tok))]
        if self.at_keyword("return"):
            self.advance()
            value = None if self.at_op(";") else self.parse_expr()
            self.expect_op(";")
            return [A.Return(value, **self._pos_kwargs(tok))]
        if self.at_type_start():
            decls = self.parse_local_decls()
            self.expect_op(";")
            return decls
        expr = self.parse_expr()
        self.expect_op(";")
        return [A.ExprStmt(expr, **self._pos_kwargs(tok))]

    def parse_local_decls(self) -> list[A.Stmt]:
        base = self.parse_base_type()
        decls: list[A.Stmt] = []
        while True:
            spec = self.parse_pointers(
                TypeSpec(base.base, 0, [], base.line, base.col, base.filename))
            name_tok = self.expect_ident()
            self.parse_array_dims(spec)
            init = None
            if self.at_op("="):
                self.advance()
                init = self.parse_assignment()
            decls.append(A.VarDecl(name_tok.text, spec, init,
                                   **self._pos_kwargs(name_tok)))
            if self.at_op(","):
                self.advance()
                continue
            break
        return decls

    def parse_if(self) -> A.If:
        tok = self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self._single_statement()
        otherwise = None
        if self.at_keyword("else"):
            self.advance()
            otherwise = self._single_statement()
        return A.If(cond, then, otherwise, **self._pos_kwargs(tok))

    def _single_statement(self) -> A.Stmt:
        stmts = self.parse_statement()
        if len(stmts) == 1:
            return stmts[0]
        return A.Block(stmts, **self._pos_kwargs(self.tok))

    def parse_while(self) -> A.While:
        tok = self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        body = self._single_statement()
        return A.While(cond, body, **self._pos_kwargs(tok))

    def parse_do_while(self) -> A.DoWhile:
        tok = self.advance()
        body = self._single_statement()
        if not self.at_keyword("while"):
            raise self.error("expected 'while' after do-body")
        self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        self.expect_op(";")
        return A.DoWhile(body, cond, **self._pos_kwargs(tok))

    def parse_for(self) -> A.For:
        tok = self.advance()
        self.expect_op("(")
        init: A.Stmt | None = None
        if not self.at_op(";"):
            if self.at_type_start():
                decls = self.parse_local_decls()
                init = decls[0] if len(decls) == 1 else A.Block(
                    decls, **self._pos_kwargs(tok))
            else:
                init = A.ExprStmt(self.parse_expr(), **self._pos_kwargs(tok))
        self.expect_op(";")
        cond = None if self.at_op(";") else self.parse_expr()
        self.expect_op(";")
        step = None if self.at_op(")") else self.parse_expr()
        self.expect_op(")")
        body = self._single_statement()
        return A.For(init, cond, step, body, **self._pos_kwargs(tok))

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> A.Expr:
        left = self.parse_conditional()
        if self.tok.kind == TokenKind.OP and self.tok.text in _ASSIGN_OPS:
            op_tok = self.advance()
            value = self.parse_assignment()
            compound = None if op_tok.text == "=" else op_tok.text[:-1]
            return A.Assign(left, value, compound, **self._pos_kwargs(op_tok))
        return left

    def parse_conditional(self) -> A.Expr:
        cond = self.parse_binary(0)
        if self.at_op("?"):
            tok = self.advance()
            then = self.parse_expr()
            self.expect_op(":")
            otherwise = self.parse_conditional()
            return A.Cond(cond, then, otherwise, **self._pos_kwargs(tok))
        return cond

    def parse_binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.tok.kind == TokenKind.OP and self.tok.text in ops:
            op_tok = self.advance()
            right = self.parse_binary(level + 1)
            left = A.Binary(op_tok.text, left, right,
                            **self._pos_kwargs(op_tok))
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.tok
        if self.at_op("-", "!", "~", "&", "*"):
            self.advance()
            operand = self.parse_unary()
            return A.Unary(tok.text, operand, **self._pos_kwargs(tok))
        if self.at_op("+"):
            self.advance()
            return self.parse_unary()
        if self.at_op("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return A.IncDec(tok.text, operand, True, **self._pos_kwargs(tok))
        if self.at_keyword("sizeof"):
            self.advance()
            self.expect_op("(")
            spec = self.parse_full_type()
            self.parse_array_dims(spec)
            self.expect_op(")")
            return A.SizeofType(spec, **self._pos_kwargs(tok))
        if self.at_op("(") and self.peek().kind == TokenKind.KEYWORD \
                and self.peek().text in _TYPE_KEYWORDS:
            self.advance()
            spec = self.parse_full_type()
            self.expect_op(")")
            operand = self.parse_unary()
            return A.Cast(spec, operand, **self._pos_kwargs(tok))
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.tok
            if self.at_op("["):
                self.advance()
                index = self.parse_expr()
                self.expect_op("]")
                expr = A.Index(expr, index, **self._pos_kwargs(tok))
            elif self.at_op("."):
                self.advance()
                name = self.expect_ident().text
                expr = A.Member(expr, name, False, **self._pos_kwargs(tok))
            elif self.at_op("->"):
                self.advance()
                name = self.expect_ident().text
                expr = A.Member(expr, name, True, **self._pos_kwargs(tok))
            elif self.at_op("++", "--"):
                self.advance()
                expr = A.IncDec(tok.text, expr, False, **self._pos_kwargs(tok))
            elif self.at_op("(") and isinstance(expr, A.Ident):
                self.advance()
                args: list[A.Expr] = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if self.at_op(","):
                            self.advance()
                            continue
                        break
                self.expect_op(")")
                expr = A.Call(expr.name, args, **self._pos_kwargs(tok))
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.tok
        if tok.kind == TokenKind.INT:
            self.advance()
            return A.IntLit(tok.value, **self._pos_kwargs(tok))
        if tok.kind == TokenKind.DOUBLE:
            self.advance()
            return A.DoubleLit(tok.value, **self._pos_kwargs(tok))
        if tok.kind == TokenKind.CHAR:
            self.advance()
            return A.CharLit(tok.value, **self._pos_kwargs(tok))
        if tok.kind == TokenKind.STRING:
            self.advance()
            return A.StringLit(tok.value, **self._pos_kwargs(tok))
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return A.Ident(tok.text, **self._pos_kwargs(tok))
        if self.at_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_tokens(tokens: list[Token]) -> A.Program:
    """Parse a token stream into a :class:`~repro.bcc.ast_nodes.Program`."""
    parser = _Parser(tokens)
    return parser.parse_program()


def parse(source: str, filename: str = "<input>") -> A.Program:
    """Tokenize and parse *source*."""
    from repro import telemetry
    tm = telemetry.get()
    with tm.span("bcc.lex", category="compile", file=filename):
        tokens = tokenize(source, filename)
    tm.counter("bcc.tokens").inc(len(tokens))
    return parse_tokens(tokens)
