"""Procedure-wide linear-scan register allocation.

The paper notes that the Guard heuristic's coverage depends on global (i.e.
procedure-wide) register allocation — without it, every branch operand would
be reloaded from the stack in the successor block and the "register used
before defined" pattern would vanish. This allocator keeps scalar values in
registers across basic blocks: classic Poletto-Sarkar linear scan over
whole-function live intervals, with call-crossing intervals steered to
callee-saved registers and a furthest-end spill heuristic.

Register pools (integer / FP-double):

* caller-saved: ``$t0``-``$t7`` / ``$f4 $f6 $f8 $f10 $f16 $f18``
* callee-saved: ``$s0``-``$s7`` / ``$f20 $f22 $f24 $f26 $f28 $f30``
* reserved scratch (spill reloads, address arithmetic): ``$at $t8 $t9`` /
  ``$f0 $f2``
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.bcc.ir import FP, INT, Call, IRFunction
from repro.bcc.opt import compute_liveness

__all__ = ["Allocation", "allocate_registers",
           "INT_CALLER", "INT_CALLEE", "FP_CALLER", "FP_CALLEE"]

INT_CALLER = (8, 9, 10, 11, 12, 13, 14, 15)          # $t0-$t7
INT_CALLEE = (16, 17, 18, 19, 20, 21, 22, 23)        # $s0-$s7
FP_CALLER = (4, 6, 8, 10, 16, 18)
FP_CALLEE = (20, 22, 24, 26, 28, 30)


@dataclass
class Interval:
    vreg: int
    klass: str
    start: int
    end: int
    crosses_call: bool = False
    #: assigned physical register, or None if spilled
    reg: int | None = None
    spill_slot: int | None = None


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    #: vreg -> ("reg", phys) or ("spill", slot_index)
    location: dict[int, tuple[str, int]] = field(default_factory=dict)
    #: callee-saved integer registers the function must save/restore
    used_int_callee: list[int] = field(default_factory=list)
    #: callee-saved FP registers the function must save/restore
    used_fp_callee: list[int] = field(default_factory=list)
    #: number of spill slots per class
    int_spills: int = 0
    fp_spills: int = 0

    def reg_of(self, vreg: int) -> int | None:
        kind, where = self.location[vreg]
        return where if kind == "reg" else None

    def spill_of(self, vreg: int) -> int | None:
        kind, where = self.location[vreg]
        return where if kind == "spill" else None


def _build_intervals(func: IRFunction) -> tuple[list[Interval], list[int]]:
    """Compute whole-function live intervals over layout order, plus the
    sorted list of call positions."""
    live_out = compute_liveness(func)

    position = 0
    block_range: dict[str, tuple[int, int]] = {}
    inst_pos: list[tuple[int, object]] = []
    call_positions: list[int] = []
    for block in func.blocks:
        start = position
        for inst in block.instructions:
            inst_pos.append((position, inst))
            if isinstance(inst, Call):
                call_positions.append(position)
            position += 1
        block_range[block.label] = (start, position - 1)

    starts: dict[int, int] = {}
    ends: dict[int, int] = {}

    def extend(vreg: int, pos: int) -> None:
        if vreg not in starts:
            starts[vreg] = pos
            ends[vreg] = pos
        else:
            starts[vreg] = min(starts[vreg], pos)
            ends[vreg] = max(ends[vreg], pos)

    # parameters are defined in the prologue, before the first instruction
    # (position -1); starting them at 0 would let a call at position 0 be
    # missed by the crosses-call test and hand a live-across-call parameter
    # a caller-saved register
    for _, vreg, _klass in func.params:
        extend(vreg, -1)

    for pos, inst in inst_pos:
        for v in inst.defs():
            extend(v, pos)
        for v in inst.uses():
            extend(v, pos)

    # widen across block boundaries using liveness
    live_in: dict[str, set[int]] = {}
    by_label = {b.label: b for b in func.blocks}
    for block in func.blocks:
        # live-in = use ∪ (live-out - def); recompute cheaply from live_out
        out = live_out[block.label]
        defined: set[int] = set()
        upward: set[int] = set()
        for inst in block.instructions:
            for v in inst.uses():
                if v not in defined:
                    upward.add(v)
            defined.update(inst.defs())
        live_in[block.label] = upward | (out - defined)
    for block in func.blocks:
        lo, hi = block_range[block.label]
        for v in live_in[block.label]:
            extend(v, lo)
        for v in live_out[block.label]:
            extend(v, hi)

    intervals = []
    for vreg, start in starts.items():
        end = ends[vreg]
        idx = bisect_right(call_positions, start)
        crosses = idx < len(call_positions) and call_positions[idx] < end
        intervals.append(Interval(vreg, func.vreg_class[vreg], start, end,
                                  crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.vreg))
    return intervals, call_positions


class _ScanState:
    """Linear-scan state for one register class."""

    def __init__(self, caller: tuple[int, ...], callee: tuple[int, ...]) -> None:
        self.free_caller = list(caller)
        self.free_callee = list(callee)
        self.active: list[Interval] = []  # sorted by end
        self.used_callee: set[int] = set()
        self.callee_set = frozenset(callee)
        self.spill_count = 0

    def expire(self, pos: int) -> None:
        while self.active and self.active[0].end < pos:
            iv = self.active.pop(0)
            if iv.reg is None:
                continue
            if iv.reg in self.callee_set:
                self.free_callee.append(iv.reg)
            else:
                self.free_caller.append(iv.reg)

    def _insert_active(self, iv: Interval) -> None:
        lo = 0
        while lo < len(self.active) and self.active[lo].end <= iv.end:
            lo += 1
        self.active.insert(lo, iv)

    def allocate(self, iv: Interval) -> None:
        self.expire(iv.start)
        if iv.crosses_call:
            pools = (self.free_callee,)
        else:
            pools = (self.free_caller, self.free_callee)
        for pool in pools:
            if pool:
                iv.reg = pool.pop(0)
                if iv.reg in self.callee_set:
                    self.used_callee.add(iv.reg)
                self._insert_active(iv)
                return
        # no register: spill the compatible interval with the furthest end
        victim = None
        for candidate in reversed(self.active):
            if candidate.reg is None:
                continue
            if iv.crosses_call and candidate.reg not in self.callee_set:
                continue
            victim = candidate
            break
        if victim is not None and victim.end > iv.end:
            iv.reg = victim.reg
            victim.reg = None
            victim.spill_slot = self.spill_count
            self.spill_count += 1
            self.active.remove(victim)
            self._insert_active(iv)
        else:
            iv.spill_slot = self.spill_count
            self.spill_count += 1


def allocate_registers(func: IRFunction) -> Allocation:
    """Allocate every vreg of *func* to a machine register or spill slot.

    Telemetry: one ``bcc.regalloc`` span per function (child of the
    driver's ``bcc.codegen`` span) plus interval/spill counters — with
    disabled telemetry both are shared no-ops.
    """
    from repro import telemetry
    with telemetry.get().span("bcc.regalloc", category="compile",
                              function=func.name):
        return _allocate_registers(func)


def _allocate_registers(func: IRFunction) -> Allocation:
    intervals, _calls = _build_intervals(func)
    int_state = _ScanState(INT_CALLER, INT_CALLEE)
    fp_state = _ScanState(FP_CALLER, FP_CALLEE)
    for iv in intervals:
        state = int_state if iv.klass == INT else fp_state
        state.allocate(iv)

    alloc = Allocation()
    for iv in intervals:
        if iv.reg is not None:
            alloc.location[iv.vreg] = ("reg", iv.reg)
        else:
            alloc.location[iv.vreg] = ("spill", iv.spill_slot)
    # vregs never touched (possible after aggressive DCE) -> harmless scratch
    for vreg, klass in func.vreg_class.items():
        if vreg not in alloc.location:
            alloc.location[vreg] = ("spill", 0)
            state = int_state if klass == INT else fp_state
            state.spill_count = max(state.spill_count, 1)
    alloc.used_int_callee = sorted(int_state.used_callee)
    alloc.used_fp_callee = sorted(fp_state.used_callee)
    alloc.int_spills = int_state.spill_count
    alloc.fp_spills = fp_state.spill_count
    from repro import telemetry
    tm = telemetry.get()
    if tm.enabled:
        tm.counter("bcc.regalloc.functions").inc()
        tm.counter("bcc.regalloc.intervals").inc(len(intervals))
        tm.counter("bcc.regalloc.spills").inc(
            int_state.spill_count + fp_state.spill_count)
        tm.histogram("bcc.regalloc.intervals_per_function").observe(
            len(intervals))
    return alloc
