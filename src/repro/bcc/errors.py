"""Compiler diagnostics.

:class:`CompileError` is part of the unified :class:`~repro.errors.ReproError`
taxonomy (phase ``compile``), so harness code can classify compiler failures
structurally alongside assembler and simulator faults.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["CompileError"]


class CompileError(ReproError):
    """Any front-end or back-end error, with source position when known."""

    phase = "compile"

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None, filename: str | None = None) -> None:
        self.line = line
        self.col = col
        self.filename = filename
        location = ""
        if filename:
            location += f"{filename}:"
        if line is not None:
            location += f"{line}:"
            if col is not None:
                location += f"{col}:"
        super().__init__(f"{location} {message}" if location else message)
        # keep .message as the bare message (without location), as callers
        # that re-wrap diagnostics (e.g. sema) rely on it
        self.message = message
