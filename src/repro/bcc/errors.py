"""Compiler diagnostics."""

from __future__ import annotations

__all__ = ["CompileError"]


class CompileError(Exception):
    """Any front-end or back-end error, with source position when known."""

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None, filename: str | None = None) -> None:
        self.line = line
        self.col = col
        self.filename = filename
        location = ""
        if filename:
            location += f"{filename}:"
        if line is not None:
            location += f"{line}:"
            if col is not None:
                location += f"{col}:"
        super().__init__(f"{location} {message}" if location else message)
        self.message = message
