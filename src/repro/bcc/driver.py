"""Compiler driver: BLC source -> linked Executable.

The pipeline is parse -> sema -> IR gen -> optimize -> codegen -> assemble.
The BLC runtime library is parsed and compiled together with the user
program (one translation unit, like static linking), and the assembly
syscall wrappers are appended before assembling, so the final executable is
self-contained — every procedure the program can execute is in it and gets
analyzed, exactly as QPT saw whole MIPS executables.
"""

from __future__ import annotations

from repro.bcc import ast_nodes as A
from repro.bcc.codegen import generate_assembly
from repro.bcc.errors import CompileError
from repro.bcc.irgen import generate_ir
from repro.bcc.opt import optimize_program
from repro.bcc.parser import parse
from repro.bcc.runtime import RUNTIME_ASM, RUNTIME_BLC
from repro.bcc.sema import SemanticInfo, analyze
from repro.isa.assembler import assemble
from repro.isa.program import Executable

__all__ = ["compile_to_asm", "compile_and_link", "compile_to_ir",
           "analyze_source"]


def _merged_program(source: str, filename: str,
                    include_runtime: bool) -> A.Program:
    decls: list[A.Node] = []
    if include_runtime:
        decls.extend(parse(RUNTIME_BLC, "<runtime>").decls)
    decls.extend(parse(source, filename).decls)
    return A.Program(decls)


def analyze_source(source: str, filename: str = "<input>",
                   include_runtime: bool = True) -> SemanticInfo:
    """Parse and type-check; returns the annotated program metadata."""
    return analyze(_merged_program(source, filename, include_runtime))


def compile_to_ir(source: str, filename: str = "<input>",
                  optimize: bool = True, include_runtime: bool = True,
                  rotate_loops: bool = True):
    """Compile to (optimized) IR. Mainly for tests and debugging."""
    info = analyze_source(source, filename, include_runtime)
    program = generate_ir(info, rotate_loops=rotate_loops)
    return optimize_program(program, enabled=optimize)


def compile_to_asm(source: str, filename: str = "<input>",
                   optimize: bool = True, include_runtime: bool = True,
                   rotate_loops: bool = True) -> str:
    """Compile BLC source to a complete assembly module (text)."""
    info = analyze_source(source, filename, include_runtime)
    if "main" not in info.function_symbols \
            or not info.function_symbols["main"].defined:
        raise CompileError("program has no main function", filename=filename)
    program = generate_ir(info, rotate_loops=rotate_loops)
    program = optimize_program(program, enabled=optimize)
    asm = generate_assembly(program)
    if include_runtime:
        asm = asm + "\n" + RUNTIME_ASM
    return asm


def compile_and_link(source: str, filename: str = "<input>",
                     optimize: bool = True, include_runtime: bool = True,
                     rotate_loops: bool = True) -> Executable:
    """Compile BLC source all the way to a runnable :class:`Executable`."""
    return assemble(compile_to_asm(source, filename, optimize,
                                   include_runtime, rotate_loops))
